//! Threaded TCP transport for the Banyan BFT engines.
//!
//! The same [`banyan_types::engine::Engine`] state machines that run under
//! the discrete-event simulator run here over real sockets — length-
//! prefixed frames on `std::net::TcpStream`, one writer thread per peer,
//! one reader thread per inbound connection, and a timer heap in the
//! engine loop. No async runtime: the engines are synchronous state
//! machines and a handful of threads per replica is exactly what a
//! reproduction needs (`DESIGN.md` §2).
//!
//! Synthetic payloads stay synthetic on the wire (16 bytes + declared
//! size); the TCP path demonstrates protocol correctness over real
//! networking, while bandwidth-sensitive measurements live in
//! `banyan-simnet`, whose egress model charges the declared size. Use
//! inline payloads here when real bytes must flow.
//!
//! Payloads come from each engine's [`banyan_types::app::ProposalSource`]
//! (installed through the builder; `payload_size` below is the
//! `FixedSizeSource` shim), and finalized blocks can be delivered to a
//! [`banyan_types::app::App`] via [`runner::run_replica_with_app`].
//!
//! # Examples
//!
//! ```no_run
//! use banyan_core::builder::ClusterBuilder;
//! use banyan_transport::run_local_cluster;
//!
//! let engines = ClusterBuilder::new(4, 1, 1)
//!     .expect("valid parameters")
//!     .payload_size(1024)
//!     .build_banyan();
//! let reports = run_local_cluster(engines, std::time::Duration::from_secs(5));
//! assert_eq!(reports.len(), 4);
//! ```

pub mod framing;
pub mod pipeline;
pub mod runner;

pub use framing::{read_frame, write_hello, write_msg, Frame, MAX_FRAME};
pub use pipeline::{
    run_local_cluster_pipelined, run_replica_pipelined, PipelineConfig, PipelineRunReport,
    PipelineStats, PipelineStatsSnapshot, VerifyStage,
};
pub use runner::{run_local_cluster, run_replica, run_replica_with_app, TcpRunReport};

/// Serializes the loopback cluster tests: each spins up 4 replicas ×
/// several threads, and on small (single-core CI) machines letting them
/// overlap starves whole replicas of CPU for seconds at a time, flaking
/// liveness assertions. Poisoning is ignored — one failed test must not
/// cascade.
#[cfg(test)]
pub(crate) fn loopback_serial_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
