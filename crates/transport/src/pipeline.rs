//! The staged multi-core replica pipeline: decode → verify → engine →
//! dispatch.
//!
//! [`run_replica_full`](crate::runner::run_replica_full) decodes,
//! verifies and executes every frame on the one consensus thread. This
//! module splits that work into stages connected by bounded MPMC
//! channels (`crossbeam::channel`), so a replica scales across cores:
//!
//! ```text
//!  sockets ──► readers (decode frames, one per peer)
//!                 │  route by sender id: worker = from % W
//!                 ▼
//!          verify workers (× W, PipelineConfig::verify_workers)
//!            · Forward frames → pool ingest (send-only, lock-free path;
//!              they NEVER reach the consensus thread)
//!            · proposal blocks → recompute block hash, WorkloadBatch
//!              sanity, optional signature verifier, lease observation
//!                 │  ordered engine events only
//!                 ▼
//!          consensus thread (EngineDriver: timers, votes, commits)
//!                 │  outbound actions
//!                 ▼
//!          per-peer writer threads (dispatch)
//! ```
//!
//! Routing a peer's frames to the worker `from % verify_workers` keeps
//! per-peer FIFO order (a peer's proposal is never overtaken by its own
//! later vote) while different peers verify in parallel. The pool side
//! uses the lock-split [`ConcurrentPool`]: workers feed ingest through a
//! bounded channel and record leases in the coordinator, so the consensus
//! thread's drains contend with neither.
//!
//! Shutdown is staged and loss-free: readers stop, the verify channels
//! disconnect, workers drain what was queued and exit, and the consensus
//! thread absorbs the tail — [`PipelineStats`] counts every decoded frame
//! into exactly one of `ingested` / `verified` / `rejected`, so a test
//! can assert nothing fell on the floor at close.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};

use banyan_mempool::{ConcurrentPool, SharedConcurrentPool, WorkloadBatch};
use banyan_runtime::driver::{AppSink, EngineDriver};
use banyan_types::app::{App, NullApp};
use banyan_types::block::Block;
use banyan_types::engine::{CommitEntry, Engine, Outbound};
use banyan_types::ids::ReplicaId;
use banyan_types::message::{DisseminationMsg, Message};
use banyan_types::payload::Payload;
use banyan_types::time::Time;

use crate::framing::{read_frame, write_hello, write_msg, Frame};
use crate::runner::TcpRunReport;

/// Event-channel capacity into the consensus thread.
const EVENT_QUEUE: usize = 4096;
/// Frame-channel capacity into each verify worker.
const VERIFY_QUEUE: usize = 2048;
/// Outbound-queue capacity per peer writer.
const PEER_QUEUE: usize = 1024;

/// An application-supplied block check run by the verify stage (e.g. a
/// Schnorr signature verification). Returning `false` rejects the frame.
pub type VerifyFn = Arc<dyn Fn(&Block) -> bool + Send + Sync>;

/// Sizing and behavior of the staged pipeline.
#[derive(Clone)]
pub struct PipelineConfig {
    /// Verify workers between the readers and the consensus thread.
    /// 0 behaves like 1 (the stage always exists; the *unstaged* baseline
    /// is [`run_replica_full`](crate::runner::run_replica_full)).
    pub verify_workers: usize,
    /// Bound of the pool-ingest channel (pass to
    /// [`ConcurrentPool::new`] when building the replica's pool).
    pub ingest_cap: usize,
    /// Payload-chunk size for block-hash recomputation; must match the
    /// cluster's `ProtocolConfig::payload_chunk`.
    pub payload_chunk: usize,
    /// Optional extra block check (signatures). `None` = structural
    /// checks only.
    pub verifier: Option<VerifyFn>,
    /// Optional signature-verify plane: when set, the workers check every
    /// vote signature and aggregate certificate a frame carries *before*
    /// it reaches the consensus thread, rejecting forgeries off-thread.
    /// Share the same `Arc` with the engine
    /// (`Engine::set_verify_backend`) so its stats unify and the cert
    /// cache deduplicates work across both planes. `None` = the engine
    /// does all signature checking on the consensus thread.
    pub verify_backend: Option<Arc<dyn banyan_crypto::VerifyBackend>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            verify_workers: 2,
            ingest_cap: banyan_mempool::DEFAULT_INGEST_CAP,
            payload_chunk: 64 << 10,
            verifier: None,
            verify_backend: None,
        }
    }
}

impl std::fmt::Debug for PipelineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineConfig")
            .field("verify_workers", &self.verify_workers)
            .field("ingest_cap", &self.ingest_cap)
            .field("payload_chunk", &self.payload_chunk)
            .field("verifier", &self.verifier.as_ref().map(|_| "fn"))
            .field(
                "verify_backend",
                &self.verify_backend.as_ref().map(|_| "backend"),
            )
            .finish()
    }
}

impl PipelineConfig {
    /// Builder-style: sets the verify-worker count.
    #[must_use]
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.verify_workers = workers;
        self
    }

    /// Builder-style: sets the pool-ingest channel bound.
    #[must_use]
    pub fn with_ingest_cap(mut self, cap: usize) -> Self {
        self.ingest_cap = cap;
        self
    }

    /// Builder-style: sets the payload-chunk size for hash recomputation.
    #[must_use]
    pub fn with_payload_chunk(mut self, chunk: usize) -> Self {
        self.payload_chunk = chunk;
        self
    }

    /// Builder-style: installs an extra block verifier.
    #[must_use]
    pub fn with_verifier(mut self, verifier: VerifyFn) -> Self {
        self.verifier = Some(verifier);
        self
    }

    /// Builder-style: installs a signature-verify plane. Pass the same
    /// `Arc` to the engine's `set_verify_backend` so stats and the cert
    /// cache are shared.
    #[must_use]
    pub fn with_verify_backend(mut self, backend: Arc<dyn banyan_crypto::VerifyBackend>) -> Self {
        self.verify_backend = Some(backend);
        self
    }
}

/// Frame accounting across the pipeline stages. Every frame decoded by a
/// reader lands in exactly one of `ingested`, `verified` or `rejected` —
/// the conservation law the shutdown test asserts.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Frames decoded by readers and handed to the verify stage.
    pub decoded: AtomicU64,
    /// Dissemination frames absorbed into pool ingest (never reach the
    /// consensus thread).
    pub ingested: AtomicU64,
    /// Frames verified and forwarded to the consensus thread.
    pub verified: AtomicU64,
    /// Frames rejected by verification (corrupt batch, failed verifier).
    pub rejected: AtomicU64,
    /// Individual requests fed to pool ingest (diagnostic).
    pub requests_ingested: AtomicU64,
}

/// A plain-value copy of [`PipelineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStatsSnapshot {
    /// Frames decoded by readers.
    pub decoded: u64,
    /// Frames absorbed into pool ingest.
    pub ingested: u64,
    /// Frames forwarded to the consensus thread.
    pub verified: u64,
    /// Frames rejected by verification.
    pub rejected: u64,
    /// Individual requests fed to pool ingest.
    pub requests_ingested: u64,
}

impl PipelineStats {
    /// Snapshots the counters.
    pub fn snapshot(&self) -> PipelineStatsSnapshot {
        PipelineStatsSnapshot {
            decoded: self.decoded.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests_ingested: self.requests_ingested.load(Ordering::Relaxed),
        }
    }
}

/// What the verify stage decided about one frame.
// `Engine` carries the whole message inline: outcomes are consumed
// immediately, never stored, so the size skew costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Forward to the consensus thread.
    Engine(ReplicaId, Message),
    /// Absorbed into pool ingest (dissemination traffic).
    Ingested,
    /// Dropped: failed a structural or signature check.
    Rejected,
}

/// The verify-stage work for one decoded frame — shared by the worker
/// threads and by single-thread baselines (the throughput bench runs it
/// inline to measure the unstaged path).
///
/// * `Forward` frames feed `pool` ingest and stop here.
/// * Proposal-carrying messages pay the real CPU cost: the block hash is
///   recomputed over the payload (the commitment walk), a
///   [`WorkloadBatch`]-magic payload must decode cleanly, the optional
///   `verifier` must accept, and the lease is recorded (when `pool`
///   speculates) under the hash just computed — the consensus thread
///   never re-hashes.
/// * Everything else (votes, timeouts, sync) passes through.
pub fn verify_frame(
    from: ReplicaId,
    msg: Message,
    pool: Option<&ConcurrentPool>,
    config: &PipelineConfig,
    stats: &PipelineStats,
) -> VerifyOutcome {
    match msg {
        Message::Dissemination(
            DisseminationMsg::Forward { requests } | DisseminationMsg::Announce { requests },
        ) => {
            if let Some(pool) = pool {
                let ingest = pool.ingest();
                for req in requests {
                    ingest.forward(req);
                    stats.requests_ingested.fetch_add(1, Ordering::Relaxed);
                }
            }
            stats.ingested.fetch_add(1, Ordering::Relaxed);
            VerifyOutcome::Ingested
        }
        msg => {
            if let Some(block) = msg.proposal_block() {
                // Structural sanity: a payload that claims to be a
                // workload batch must decode as one.
                let batch = WorkloadBatch::decode(&block.payload);
                if batch.is_none() && payload_claims_batch(block) {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return VerifyOutcome::Rejected;
                }
                // The CPU stage: recompute the block id over the payload
                // commitment (SHA-256 over every chunk).
                let hash = block.hash(config.payload_chunk);
                if let Some(verifier) = &config.verifier {
                    if !verifier(block) {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return VerifyOutcome::Rejected;
                    }
                }
                if let (Some(pool), Some(batch)) = (pool, batch) {
                    // Record the lease under the hash just computed; the
                    // consensus thread skips its own observation pass.
                    pool.observe_decoded(hash, block.round, block.parent, batch.requests);
                }
            }
            // Signature plane: check every vote signature and aggregate
            // certificate the frame carries before it can occupy the
            // consensus thread. The engine remains the authority (it
            // re-checks through the same shared backend, where the cert
            // cache makes the second look a hit); rejection here is the
            // off-thread fast path for forgeries.
            if let Some(backend) = &config.verify_backend {
                let checks = msg.vote_checks();
                if !checks.is_empty() {
                    let items: Vec<_> = checks
                        .iter()
                        .map(|(voter, m, sig)| (voter.0, m.as_slice(), *sig))
                        .collect();
                    if backend.verify_votes(&items).iter().any(|ok| !ok) {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return VerifyOutcome::Rejected;
                    }
                }
                for (m, agg) in msg.certificates() {
                    if !backend.verify_aggregate(&m, agg) {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return VerifyOutcome::Rejected;
                    }
                }
            }
            stats.verified.fetch_add(1, Ordering::Relaxed);
            VerifyOutcome::Engine(from, msg)
        }
    }
}

/// True when the block's payload starts with the workload-batch magic
/// (used to distinguish "corrupt batch" from "foreign payload").
fn payload_claims_batch(block: &Block) -> bool {
    match &block.payload {
        Payload::Inline(bytes) => bytes.starts_with(b"BanyanWB"),
        Payload::Synthetic { .. } => false,
    }
}

/// The spawned verify stage: per-worker input channels (route with
/// [`VerifyStage::sender_for`]) and the worker join handles.
pub struct VerifyStage {
    txs: Vec<Sender<(ReplicaId, Message)>>,
    handles: Vec<JoinHandle<()>>,
    /// Shared frame accounting.
    pub stats: Arc<PipelineStats>,
    /// Workers still running (0 once every worker drained and exited).
    pub alive: Arc<AtomicUsize>,
}

impl VerifyStage {
    /// Spawns `config.verify_workers.max(1)` workers feeding `event_tx`.
    pub fn spawn(
        config: &PipelineConfig,
        pool: Option<SharedConcurrentPool>,
        event_tx: Sender<(ReplicaId, Message)>,
    ) -> VerifyStage {
        let workers = config.verify_workers.max(1);
        let stats = Arc::new(PipelineStats::default());
        let alive = Arc::new(AtomicUsize::new(workers));
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = bounded::<(ReplicaId, Message)>(VERIFY_QUEUE);
            txs.push(tx);
            let pool = pool.clone();
            let config = config.clone();
            let stats = stats.clone();
            let alive = alive.clone();
            let event_tx = event_tx.clone();
            handles.push(thread::spawn(move || {
                // Drain until every producer (reader) hangs up, so no
                // queued frame is lost at shutdown.
                while let Ok((from, msg)) = rx.recv() {
                    match verify_frame(from, msg, pool.as_deref(), &config, &stats) {
                        VerifyOutcome::Engine(from, msg) => {
                            if event_tx.send((from, msg)).is_err() {
                                break; // consensus thread gone: stop cleanly
                            }
                        }
                        VerifyOutcome::Ingested | VerifyOutcome::Rejected => {}
                    }
                }
                alive.fetch_sub(1, Ordering::AcqRel);
            }));
        }
        VerifyStage {
            txs,
            handles,
            stats,
            alive,
        }
    }

    /// The input channel for frames from `from` — `from mod workers`, so
    /// one peer's frames stay FIFO while different peers verify in
    /// parallel.
    pub fn sender_for(&self, from: ReplicaId) -> &Sender<(ReplicaId, Message)> {
        &self.txs[from.as_usize() % self.txs.len()]
    }

    /// Clones of all worker input channels (for reader threads).
    pub fn senders(&self) -> Vec<Sender<(ReplicaId, Message)>> {
        self.txs.clone()
    }

    /// Drops the stage's own senders (workers then exit once every reader
    /// clone is gone too) and joins the workers. Callers that must keep
    /// draining the event channel while workers wind down should instead
    /// destructure, as `run_replica_pipelined` does.
    pub fn shutdown(self) {
        drop(self.txs);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// A [`TcpRunReport`] plus the pipeline's frame accounting.
#[derive(Debug, Default)]
pub struct PipelineRunReport {
    /// The usual run report (commits, message counts).
    pub report: TcpRunReport,
    /// Frame accounting across the stages.
    pub stats: PipelineStatsSnapshot,
    /// Ingest operations shed by the pool channel (0 in healthy runs).
    pub ingest_dropped: u64,
}

/// Marks every committed batch's ids committed in the concurrent pool —
/// the pipeline's half of the exactly-once dedup rule (the unstaged
/// runner's `PoolDedupApp` does the same against a `SharedMempool`).
struct ConcurrentDedupApp<A: App> {
    app: A,
    pool: Option<SharedConcurrentPool>,
}

impl<A: App> App for ConcurrentDedupApp<A> {
    fn deliver(&mut self, entry: &CommitEntry) {
        if let Some(pool) = &self.pool {
            if let Some(batch) = WorkloadBatch::decode(&entry.payload) {
                pool.mark_committed_block(entry.block, entry.round, &batch.requests);
            }
        }
        self.app.deliver(entry);
    }
}

/// The staged counterpart of
/// [`run_replica_full`](crate::runner::run_replica_full): reader threads
/// decode, a verify worker pool checks and feeds pool ingest, and only
/// ordered engine events cross into this (the consensus) thread. Workers
/// are joined before returning; the returned stats satisfy
/// `decoded == ingested + verified + rejected`.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica_pipelined(
    engine: Box<dyn Engine>,
    app: impl App + 'static,
    pool: Option<SharedConcurrentPool>,
    config: PipelineConfig,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<PipelineRunReport> {
    let me = engine.id();
    let n = peers.len();
    let start = Instant::now();
    let now = || Time(start.elapsed().as_nanos() as u64);
    let stop = Arc::new(AtomicBool::new(false));

    let (event_tx, event_rx) = bounded::<(ReplicaId, Message)>(EVENT_QUEUE);
    let verify = VerifyStage::spawn(&config, pool.clone(), event_tx.clone());
    let stats = verify.stats.clone();

    // --- acceptor + readers (decode stage) ----------------------------
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    {
        let stop = stop.clone();
        let verify_txs = verify.senders();
        let stats = stats.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        stream.set_nodelay(true).ok();
                        // A read timeout lets the reader notice `stop`
                        // even when its peer stays silent — required so
                        // the verify channels disconnect and the workers
                        // can be joined.
                        stream
                            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
                            .ok();
                        let verify_txs = verify_txs.clone();
                        let stop = stop.clone();
                        let stats = stats.clone();
                        thread::spawn(move || {
                            let mut reader = BufReader::new(stream);
                            // First frame must be a hello.
                            loop {
                                match read_frame(&mut reader) {
                                    Ok(Frame::Hello { from: _ }) => break,
                                    Ok(Frame::Msg { .. }) => return,
                                    Err(e) if would_retry(&e) => {
                                        if stop.load(Ordering::Relaxed) {
                                            return;
                                        }
                                    }
                                    Err(_) => return,
                                }
                            }
                            while !stop.load(Ordering::Relaxed) {
                                match read_frame(&mut reader) {
                                    Ok(Frame::Msg { from, msg }) => {
                                        stats.decoded.fetch_add(1, Ordering::Relaxed);
                                        let tx = &verify_txs[from.as_usize() % verify_txs.len()];
                                        if tx.send((from, msg)).is_err() {
                                            return;
                                        }
                                    }
                                    Ok(Frame::Hello { .. }) => {}
                                    Err(e) if would_retry(&e) => {}
                                    Err(_) => return,
                                }
                            }
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
    }

    // --- writers (dispatch stage) --------------------------------------
    let mut peer_txs: Vec<Option<Sender<Message>>> = Vec::with_capacity(n);
    for (i, addr) in peers.iter().enumerate() {
        if i == me.as_usize() {
            peer_txs.push(None);
            continue;
        }
        let (tx, rx): (Sender<Message>, Receiver<Message>) = bounded(PEER_QUEUE);
        let addr = *addr;
        let stop = stop.clone();
        thread::spawn(move || {
            // Dial with retries: peers start in arbitrary order.
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(_) if !stop.load(Ordering::Relaxed) => {
                        thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(_) => return,
                }
            };
            stream.set_nodelay(true).ok();
            let mut writer = BufWriter::new(stream);
            if write_hello(&mut writer, me).is_err() {
                return;
            }
            while let Ok(msg) = rx.recv() {
                if write_msg(&mut writer, me, &msg).is_err() {
                    return;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
        });
        peer_txs.push(Some(tx));
    }

    // --- consensus thread ----------------------------------------------
    let mut messages_sent = 0u64;
    let mut messages_received = 0u64;
    let sink = AppSink {
        inner: Vec::<CommitEntry>::new(),
        app: ConcurrentDedupApp {
            app,
            pool: pool.clone(),
        },
    };
    let mut driver = EngineDriver::new(engine, sink);
    // Own outbound proposals are observed here (they never pass the
    // verify stage); inbound blocks were already observed by the workers.
    let observe_pool = pool.clone();
    let mut transmit = |out: Outbound| {
        if let Some(pool) = &observe_pool {
            let msg = match &out {
                Outbound::Broadcast(msg) => msg,
                Outbound::Send(_, msg) => msg,
            };
            if let Some(block) = msg.proposal_block() {
                pool.observe_proposal(block);
            }
        }
        match out {
            Outbound::Broadcast(msg) => {
                for tx in peer_txs.iter().flatten() {
                    messages_sent += 1;
                    let _ = tx.try_send(msg.clone());
                }
            }
            Outbound::Send(to, msg) => {
                if let Some(Some(tx)) = peer_txs.get(to.as_usize()) {
                    messages_sent += 1;
                    let _ = tx.try_send(msg);
                }
            }
        }
    };

    // Disseminate before proposing (same ordering as the plain runner):
    // pooled requests are forwarded ahead of the init proposal so peers
    // ingest them before any block that could commit them.
    if let Some(pool) = &pool {
        let requests = pool.take_outbox();
        if !requests.is_empty() {
            transmit(Outbound::Broadcast(Message::Dissemination(
                DisseminationMsg::Forward { requests },
            )));
        }
    }
    driver.init(now(), &mut transmit);

    while start.elapsed() < run_for {
        driver.fire_due(now(), &mut transmit);
        // Gossip: forward requests pushed into the local pool since the
        // last pass (one Forward frame per flush, never re-forwarded).
        if let Some(pool) = &pool {
            let requests = pool.take_outbox();
            if !requests.is_empty() {
                transmit(Outbound::Broadcast(Message::Dissemination(
                    DisseminationMsg::Forward { requests },
                )));
            }
        }
        // Wait for the next verified event or timer.
        let wait = driver
            .next_deadline()
            .map(|at| std::time::Duration::from_nanos(at.0.saturating_sub(now().0)))
            .unwrap_or(std::time::Duration::from_millis(10))
            .min(std::time::Duration::from_millis(10));
        if let Ok((from, msg)) = event_rx.recv_timeout(wait) {
            messages_received += 1;
            driver.handle_message(from, msg, now(), &mut transmit);
        }
    }

    // --- staged shutdown ------------------------------------------------
    // Order matters: release the stage's own senders *first*, then keep
    // absorbing the verify tail (so no worker blocks on a full event
    // channel) until every worker has drained its queue and exited —
    // readers notice `stop` within their read timeout and drop the last
    // sender clones.
    stop.store(true, Ordering::Relaxed);
    drop(event_tx);
    let VerifyStage {
        txs,
        handles,
        stats: _,
        alive,
    } = verify;
    drop(txs);
    while alive.load(Ordering::Acquire) > 0 {
        if event_rx
            .recv_timeout(std::time::Duration::from_millis(5))
            .is_ok()
        {
            messages_received += 1;
        }
    }
    for h in handles {
        let _ = h.join();
    }
    // Frames the workers forwarded in their last instants still count.
    while event_rx.try_recv().is_ok() {
        messages_received += 1;
    }

    let stale_timers_dropped = driver.stale_timers_dropped();
    let wal_bytes = driver.engine().wal_bytes();
    // When the pipeline and the engine share one backend these are the
    // unified plane totals; otherwise fall back to what the engine alone
    // verified on the consensus thread.
    let verify = config
        .verify_backend
        .as_ref()
        .map(|b| b.stats())
        .unwrap_or_else(|| driver.engine().verify_stats());
    Ok(PipelineRunReport {
        report: TcpRunReport {
            commits: driver.into_sink().inner,
            messages_received,
            messages_sent,
            stale_timers_dropped,
            // The pipelined replica has no restart phase (see
            // `run_replica_restarting` for the recovering path).
            sync_requests: 0,
            sync_blocks_served: 0,
            restart_recovery_ms: 0,
            wal_bytes,
            sigs_verified: verify.sigs_verified,
            verify_batches: verify.verify_batches,
            cert_cache_hits: verify.cert_cache_hits,
            verify_cpu_ms: verify.verify_cpu_ms(),
        },
        stats: stats.snapshot(),
        ingest_dropped: pool.map(|p| p.ingest_dropped()).unwrap_or(0),
    })
}

/// Retryable read errors: the reader's poll timeout, not a dead socket.
fn would_retry(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Runs a whole pipelined cluster on localhost — the staged counterpart of
/// [`run_local_cluster_with_pools`](crate::runner::run_local_cluster_with_pools).
/// `pools[i]` is wired into replica `i`; engines should pull payloads from
/// the same handles via
/// [`ConcurrentMempoolSource`](banyan_mempool::ConcurrentMempoolSource).
///
/// # Panics
///
/// Panics if `pools.len() != engines.len()`, a replica thread panics or a
/// socket operation fails.
pub fn run_local_cluster_pipelined(
    engines: Vec<Box<dyn Engine>>,
    pools: Vec<SharedConcurrentPool>,
    config: PipelineConfig,
    run_for: std::time::Duration,
) -> Vec<PipelineRunReport> {
    let n = engines.len();
    assert_eq!(pools.len(), n, "one pool per replica");
    // Bind listeners first so every address is known before any dial.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    drop(listeners);

    let mut handles = Vec::new();
    for (i, (engine, pool)) in engines.into_iter().zip(pools).enumerate() {
        let addrs = addrs.clone();
        let listen = addrs[i];
        let config = config.clone();
        handles.push(thread::spawn(move || {
            run_replica_pipelined(engine, NullApp, Some(pool), config, listen, addrs, run_for)
                .expect("replica run")
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_core::builder::ClusterBuilder;
    use banyan_mempool::{ConcurrentMempoolSource, Mempool, Request};
    use banyan_types::time::Duration as BDuration;
    use banyan_types::time::Time as BTime;

    fn req(id: u64) -> Request {
        Request {
            id,
            client: (id % 4) as u16,
            size: 64,
            submitted_at: BTime::ZERO,
        }
    }

    #[test]
    fn pipelined_cluster_commits_agrees_and_drops_no_frame() {
        let _serial = crate::loopback_serial_lock();
        let n = 4;
        let pools: Vec<SharedConcurrentPool> = (0..n)
            .map(|_| ConcurrentPool::new(Mempool::new(4_096).with_gossip(true), 4_096))
            .collect();
        let sources = pools.clone();
        let engines = ClusterBuilder::new(n, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .proposal_sources(move |i| {
                Box::new(ConcurrentMempoolSource::new(
                    sources[i as usize].clone(),
                    64,
                ))
            })
            .build_banyan();

        // Requests enter at replica 0 through the send-only ingest path.
        let ingest = pools[0].ingest();
        for id in 1..=32u64 {
            assert!(ingest.push(req(id)));
        }

        let config = PipelineConfig::default().with_verify_workers(2);
        let reports = run_local_cluster_pipelined(
            engines,
            pools.clone(),
            config,
            std::time::Duration::from_secs(3),
        );

        // Liveness + agreement, as in the unstaged runner.
        let mut canonical = std::collections::HashMap::new();
        for (i, r) in reports.iter().enumerate() {
            assert!(
                r.report.commits.len() > 3,
                "replica {i} committed only {} blocks",
                r.report.commits.len()
            );
            for c in &r.report.commits {
                if let Some(prev) = canonical.insert(c.round, c.block) {
                    assert_eq!(prev, c.block, "disagreement at round {}", c.round);
                }
            }
        }
        // Workers joined cleanly and no decoded frame fell on the floor:
        // every frame is accounted ingested, verified or rejected.
        for (i, r) in reports.iter().enumerate() {
            let s = &r.stats;
            assert_eq!(
                s.decoded,
                s.ingested + s.verified + s.rejected,
                "replica {i} lost frames at close: {s:?}"
            );
            assert_eq!(s.rejected, 0, "replica {i} rejected honest frames");
            // Only replica 0 pushes, and forwarded requests are never
            // re-forwarded, so the *other* replicas must see gossip.
            if i != 0 {
                assert!(s.ingested > 0, "replica {i} saw no gossip");
            }
            assert_eq!(r.ingest_dropped, 0, "replica {i} shed ingest");
        }
        // The workload committed through the pipeline.
        let committed: std::collections::HashSet<u64> = reports[0]
            .report
            .commits
            .iter()
            .filter_map(|c| WorkloadBatch::decode(&c.payload))
            .flat_map(|b| b.requests.into_iter().map(|r| r.id))
            .collect();
        for id in 1..=32u64 {
            assert!(committed.contains(&id), "request {id} never committed");
        }
    }

    #[test]
    fn verify_frame_accounts_every_frame_once() {
        use banyan_crypto::Signature;
        use banyan_types::ids::{BlockHash, Rank, Round};
        use banyan_types::message::StreamletMsg;
        let config = PipelineConfig::default();
        let stats = PipelineStats::default();
        let pool = ConcurrentPool::new(Mempool::new(64).with_speculation(config.payload_chunk), 64);

        // A forward frame is ingested, never forwarded to the engine.
        let fwd = Message::Dissemination(DisseminationMsg::Forward {
            requests: vec![req(1), req(2)],
        });
        assert_eq!(
            verify_frame(ReplicaId(1), fwd, Some(&*pool), &config, &stats),
            VerifyOutcome::Ingested
        );
        assert_eq!(pool.len(), 2, "both requests reached the pool");

        // A proposal with a valid batch passes and records its lease.
        let block = Block {
            round: Round(1),
            proposer: ReplicaId(0),
            rank: Rank(0),
            parent: BlockHash::ZERO,
            proposed_at: BTime::ZERO,
            payload: WorkloadBatch {
                requests: vec![req(7)],
            }
            .into_payload(),
            signature: Signature::zero(),
        };
        let msg = Message::Streamlet(StreamletMsg::Proposal {
            block: block.clone(),
        });
        match verify_frame(ReplicaId(0), msg, Some(&*pool), &config, &stats) {
            VerifyOutcome::Engine(from, _) => assert_eq!(from, ReplicaId(0)),
            other => panic!("expected Engine, got {other:?}"),
        }
        assert_eq!(pool.live_leases(), 1, "lease recorded by the verify stage");

        // A corrupt batch (magic, garbage body) is rejected.
        let mut corrupt = block.clone();
        corrupt.payload = Payload::Inline(b"BanyanWB\xFF\xFF\xFF\xFF".to_vec());
        let msg = Message::Streamlet(StreamletMsg::Proposal { block: corrupt });
        assert_eq!(
            verify_frame(ReplicaId(0), msg, Some(&*pool), &config, &stats),
            VerifyOutcome::Rejected
        );

        // A failing verifier rejects too.
        let strict = config
            .clone()
            .with_verifier(Arc::new(|_: &Block| false) as VerifyFn);
        let msg = Message::Streamlet(StreamletMsg::Proposal { block });
        assert_eq!(
            verify_frame(ReplicaId(0), msg, Some(&*pool), &strict, &stats),
            VerifyOutcome::Rejected
        );

        let s = stats.snapshot();
        assert_eq!(s.ingested, 1);
        assert_eq!(s.verified, 1);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.requests_ingested, 2);
    }

    /// An *optimistic* chained proposal — uncertified parent, so
    /// `parent_notarization: None` and a withheld `fast_vote: None` — must
    /// flow through the verify stage exactly like a certified one: hash
    /// recomputed, lease recorded under the parent link, and the message
    /// forwarded to the engine with every field untouched. The verify
    /// pool is deliberately certification-blind; optimism needs no new
    /// wire handling.
    #[test]
    fn optimistic_proposal_passes_the_verify_pool_unchanged() {
        use banyan_crypto::Signature;
        use banyan_types::ids::{BlockHash, Rank, Round};
        use banyan_types::message::ChainedMsg;
        let config = PipelineConfig::default();
        let stats = PipelineStats::default();
        let pool = ConcurrentPool::new(Mempool::new(64).with_speculation(config.payload_chunk), 64);

        // The parent is a round-1 block the pool knows only as a lease —
        // received, never certified. Its child is the optimistic proposal.
        let parent = Block {
            round: Round(1),
            proposer: ReplicaId(0),
            rank: Rank(0),
            parent: BlockHash::ZERO,
            proposed_at: BTime::ZERO,
            payload: WorkloadBatch {
                requests: vec![req(1)],
            }
            .into_payload(),
            signature: Signature::zero(),
        };
        let parent_hash = parent.hash(config.payload_chunk);
        let parent_msg = Message::Chained(ChainedMsg::Proposal {
            block: parent,
            parent_notarization: None,
            parent_unlock: None,
            fast_vote: None,
        });
        assert!(matches!(
            verify_frame(ReplicaId(1), parent_msg, Some(&*pool), &config, &stats),
            VerifyOutcome::Engine(..)
        ));

        let child = Block {
            round: Round(2),
            proposer: ReplicaId(2),
            rank: Rank(0),
            parent: parent_hash,
            proposed_at: BTime::ZERO,
            payload: WorkloadBatch {
                requests: vec![req(2)],
            }
            .into_payload(),
            signature: Signature::zero(),
        };
        let msg = Message::Chained(ChainedMsg::Proposal {
            block: child.clone(),
            parent_notarization: None,
            parent_unlock: None,
            fast_vote: None,
        });
        match verify_frame(ReplicaId(2), msg.clone(), Some(&*pool), &config, &stats) {
            VerifyOutcome::Engine(from, forwarded) => {
                assert_eq!(from, ReplicaId(2));
                assert_eq!(
                    forwarded, msg,
                    "the verify stage must not rewrite an optimistic proposal"
                );
            }
            other => panic!("expected Engine, got {other:?}"),
        }
        // Both proposals' leases live — parent first, then its optimistic
        // child linked to the still-uncertified parent hash.
        assert_eq!(pool.live_leases(), 2, "both leases recorded");
        let s = stats.snapshot();
        assert_eq!(s.verified, 2);
        assert_eq!(s.rejected, 0, "optimistic shape must not be rejected");
    }
}
