//! The threaded TCP runner: drives one [`Engine`] over real sockets.
//!
//! Thread layout per replica:
//!
//! * **acceptor** — accepts inbound connections, spawns a reader per peer;
//! * **readers** — decode frames, push `(from, msg)` into the event
//!   channel;
//! * **writers** — one per peer, draining a per-peer outbound queue (a
//!   slow peer never blocks the engine);
//! * **engine loop** (the calling thread) — an
//!   [`EngineDriver`] from the shared
//!   driver layer: it owns the timer heap (same deterministic
//!   `(time, seq)` ordering the simulator uses, same stale-timer
//!   filtering) and routes engine actions; this module only supplies
//!   wall-clock time and socket transport.
//!
//! Time is wall-clock nanoseconds since `run` started, so the engine sees
//! the same `Time` type as under simulation. The engines themselves are
//! identical — that is the point: `banyan-simnet` results transfer to real
//! sockets.
//!
//! # Request dissemination
//!
//! [`run_replica_full`] attaches a [`SharedMempool`] to the wire path:
//! inbound `DisseminationMsg::Forward` frames feed the pool (they never
//! reach the engine — same contract as the simulator), locally pushed
//! requests found in the pool's gossip outbox are broadcast to every
//! peer, and each finalized block marks its batched request ids committed
//! in the pool before the block reaches the [`App`] (the exactly-once
//! dedup rule; see `banyan_mempool`).

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};

use banyan_mempool::{SharedMempool, WorkloadBatch};
use banyan_runtime::driver::{AppSink, EngineDriver};
use banyan_types::app::{App, NullApp};
use banyan_types::engine::{CommitEntry, Engine, Outbound};
use banyan_types::ids::ReplicaId;
use banyan_types::message::{DisseminationMsg, Message};
use banyan_types::time::Time;

use crate::framing::{read_frame, write_hello, write_msg, Frame};

/// Event-channel capacity per replica.
const EVENT_QUEUE: usize = 4096;
/// Outbound-queue capacity per peer.
const PEER_QUEUE: usize = 1024;

/// Everything a finished run reports.
#[derive(Debug, Default)]
pub struct TcpRunReport {
    /// Commits in order, as emitted by the engine.
    pub commits: Vec<CommitEntry>,
    /// Messages received off the wire.
    pub messages_received: u64,
    /// Messages sent (per-peer copies counted individually).
    pub messages_sent: u64,
    /// Timers dropped by the shared driver as stale (diagnostic).
    pub stale_timers_dropped: u64,
}

/// Runs `engine` over TCP until `deadline` (wall time from start).
///
/// `listen` is this replica's bind address; `peers[i]` the address of
/// replica `i` (our own slot is ignored). All replicas must use the same
/// ordering. Connections are one-directional: we dial every peer for
/// sending and accept every peer for receiving.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica(
    engine: Box<dyn Engine>,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<TcpRunReport> {
    run_replica_with_app(engine, NullApp, listen, peers, run_for)
}

/// Like [`run_replica`], additionally delivering every finalized block to
/// `app` (via the shared [`AppSink`] combinator) as it commits — the TCP
/// deployment's half of the `ProposalSource`/`App` service interface.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica_with_app(
    engine: Box<dyn Engine>,
    app: impl App + 'static,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<TcpRunReport> {
    run_replica_full(engine, app, None, listen, peers, run_for)
}

/// Marks every committed batch's request ids committed in the local pool
/// — retiring and releasing speculative leases along the way — before
/// handing the block to the inner [`App`]: the TCP runner's half of the
/// exactly-once dedup rule (the simulator's `SimCommitSink` does the
/// same).
struct PoolDedupApp<A: App> {
    app: A,
    pool: Option<SharedMempool>,
}

impl<A: App> App for PoolDedupApp<A> {
    fn deliver(&mut self, entry: &CommitEntry) {
        if let Some(pool) = &self.pool {
            if let Some(batch) = WorkloadBatch::decode(&entry.payload) {
                pool.lock().expect("mempool lock").mark_committed_block(
                    entry.block,
                    entry.round,
                    &batch.requests,
                );
            }
        }
        self.app.deliver(entry);
    }
}

/// Like [`run_replica_with_app`], with the request-dissemination layer
/// wired in when `pool` is provided: inbound `Forward` frames feed the
/// pool, the pool's gossip outbox (requests pushed locally, e.g. by a
/// client front-end thread) is broadcast to all peers, and commits mark
/// their batched ids committed for exactly-once dedup. The engine's
/// `MempoolSource` should share the same pool handle.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica_full(
    engine: Box<dyn Engine>,
    app: impl App + 'static,
    pool: Option<SharedMempool>,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<TcpRunReport> {
    let me = engine.id();
    let n = peers.len();
    let start = Instant::now();
    let now = || Time(start.elapsed().as_nanos() as u64);
    let stop = Arc::new(AtomicBool::new(false));

    let (event_tx, event_rx) = bounded::<(ReplicaId, Message)>(EVENT_QUEUE);

    // --- acceptor + readers -------------------------------------------
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    {
        let stop = stop.clone();
        let event_tx = event_tx.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        stream.set_nodelay(true).ok();
                        let event_tx = event_tx.clone();
                        let stop = stop.clone();
                        thread::spawn(move || {
                            let mut reader = BufReader::new(stream);
                            // First frame must be a hello.
                            let Ok(Frame::Hello { from: _ }) = read_frame(&mut reader) else {
                                return;
                            };
                            while !stop.load(Ordering::Relaxed) {
                                match read_frame(&mut reader) {
                                    Ok(Frame::Msg { from, msg }) => {
                                        if event_tx.send((from, msg)).is_err() {
                                            return;
                                        }
                                    }
                                    Ok(Frame::Hello { .. }) => {}
                                    Err(_) => return,
                                }
                            }
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
    }

    // --- writers --------------------------------------------------------
    let mut peer_txs: Vec<Option<Sender<Message>>> = Vec::with_capacity(n);
    for (i, addr) in peers.iter().enumerate() {
        if i == me.as_usize() {
            peer_txs.push(None);
            continue;
        }
        let (tx, rx): (Sender<Message>, Receiver<Message>) = bounded(PEER_QUEUE);
        let addr = *addr;
        let stop = stop.clone();
        thread::spawn(move || {
            // Dial with retries: peers start in arbitrary order.
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(_) if !stop.load(Ordering::Relaxed) => {
                        thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(_) => return,
                }
            };
            stream.set_nodelay(true).ok();
            let mut writer = BufWriter::new(stream);
            if write_hello(&mut writer, me).is_err() {
                return;
            }
            while let Ok(msg) = rx.recv() {
                if write_msg(&mut writer, me, &msg).is_err() {
                    return;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
        });
        peer_txs.push(Some(tx));
    }

    // --- engine loop ------------------------------------------------------
    // The shared driver owns timers, stale filtering and action routing;
    // this closure is the only transport-specific piece of the loop.
    let mut messages_sent = 0u64;
    let mut messages_received = 0u64;
    let sink = AppSink {
        inner: Vec::<CommitEntry>::new(),
        app: PoolDedupApp {
            app,
            pool: pool.clone(),
        },
    };
    let mut driver = EngineDriver::new(engine, sink);
    // Speculative drain: observe every block this replica puts on (or
    // takes off) the wire into its pool's lease table. `observe_proposal`
    // is a cheap no-op unless the pool was built `with_speculation`.
    let observe_pool = pool.clone();
    let mut transmit = |out: Outbound| {
        if let Some(pool) = &observe_pool {
            let msg = match &out {
                Outbound::Broadcast(msg) => msg,
                Outbound::Send(_, msg) => msg,
            };
            if let Some(block) = msg.proposal_block() {
                pool.lock().expect("mempool lock").observe_proposal(block);
            }
        }
        match out {
            Outbound::Broadcast(msg) => {
                for tx in peer_txs.iter().flatten() {
                    messages_sent += 1;
                    let _ = tx.try_send(msg.clone());
                }
            }
            Outbound::Send(to, msg) => {
                if let Some(Some(tx)) = peer_txs.get(to.as_usize()) {
                    messages_sent += 1;
                    let _ = tx.try_send(msg);
                }
            }
        }
    };

    driver.init(now(), &mut transmit);

    while start.elapsed() < run_for {
        driver.fire_due(now(), &mut transmit);
        // Gossip: forward requests pushed into the local pool since the
        // last pass (one Forward frame per flush, never re-forwarded).
        if let Some(pool) = &pool {
            let requests = pool.lock().expect("mempool lock").take_outbox();
            if !requests.is_empty() {
                transmit(Outbound::Broadcast(Message::Dissemination(
                    DisseminationMsg::Forward { requests },
                )));
            }
        }
        // Wait for the next event or timer.
        let wait = driver
            .next_deadline()
            .map(|at| std::time::Duration::from_nanos(at.0.saturating_sub(now().0)))
            .unwrap_or(std::time::Duration::from_millis(10))
            .min(std::time::Duration::from_millis(10));
        // On timeout the loop simply re-checks timers and the deadline.
        if let Ok((from, msg)) = event_rx.recv_timeout(wait) {
            messages_received += 1;
            // Dissemination frames feed the pool, never the engine (the
            // same contract the simulator enforces).
            if let Message::Dissemination(DisseminationMsg::Forward { requests }) = msg {
                if let Some(pool) = &pool {
                    let mut pool = pool.lock().expect("mempool lock");
                    for req in requests {
                        pool.accept_forwarded(req);
                    }
                }
            } else {
                // Speculative drain: observe arriving blocks into the
                // pool's lease table (no-op unless speculation is on).
                if let Some(pool) = &pool {
                    if let Some(block) = msg.proposal_block() {
                        pool.lock().expect("mempool lock").observe_proposal(block);
                    }
                }
                driver.handle_message(from, msg, now(), &mut transmit);
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    let stale_timers_dropped = driver.stale_timers_dropped();
    Ok(TcpRunReport {
        commits: driver.into_sink().inner,
        messages_received,
        messages_sent,
        stale_timers_dropped,
    })
}

/// Runs a whole cluster on localhost, one thread per replica, and returns
/// each replica's report. Ports are allocated by the OS.
///
/// # Panics
///
/// Panics if any replica thread panics or a socket operation fails.
pub fn run_local_cluster(
    engines: Vec<Box<dyn Engine>>,
    run_for: std::time::Duration,
) -> Vec<TcpRunReport> {
    let n = engines.len();
    // Bind listeners first so every address is known before any dial.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    drop(listeners); // ports linger in TIME_WAIT-free state long enough on loopback

    let mut handles = Vec::new();
    for (i, engine) in engines.into_iter().enumerate() {
        let addrs = addrs.clone();
        let listen = addrs[i];
        handles.push(thread::spawn(move || {
            run_replica(engine, listen, addrs, run_for).expect("replica run")
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

/// Like [`run_local_cluster`], with `pools[i]` wired into replica `i`'s
/// dissemination path (see [`run_replica_full`]). The engines should pull
/// payloads from the same pool handles via `MempoolSource`.
///
/// # Panics
///
/// Panics if `pools.len() != engines.len()`, a replica thread panics or a
/// socket operation fails.
pub fn run_local_cluster_with_pools(
    engines: Vec<Box<dyn Engine>>,
    pools: Vec<SharedMempool>,
    run_for: std::time::Duration,
) -> Vec<TcpRunReport> {
    let n = engines.len();
    assert_eq!(pools.len(), n, "one pool per replica");
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    drop(listeners);

    let mut handles = Vec::new();
    for (i, (engine, pool)) in engines.into_iter().zip(pools).enumerate() {
        let addrs = addrs.clone();
        let listen = addrs[i];
        handles.push(thread::spawn(move || {
            run_replica_full(engine, NullApp, Some(pool), listen, addrs, run_for)
                .expect("replica run")
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_core::builder::ClusterBuilder;
    use banyan_types::time::Duration as BDuration;

    #[test]
    fn banyan_cluster_over_loopback_commits_and_agrees() {
        let engines = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .payload_size(512)
            .build_banyan();
        let reports = run_local_cluster(engines, std::time::Duration::from_secs(3));
        // Every replica commits something.
        for (i, r) in reports.iter().enumerate() {
            assert!(
                r.commits.len() > 3,
                "replica {i} committed only {} blocks",
                r.commits.len()
            );
        }
        // Cross-replica agreement per round.
        let mut canonical = std::collections::HashMap::new();
        for r in &reports {
            for c in &r.commits {
                let prev = canonical.insert(c.round, c.block);
                if let Some(prev) = prev {
                    assert_eq!(prev, c.block, "disagreement at round {}", c.round);
                }
            }
        }
    }

    #[test]
    fn gossiped_requests_reach_every_pool_and_commit() {
        use banyan_mempool::{Mempool, MempoolSource, Request};
        use banyan_types::time::Time as BTime;

        let n = 4;
        let pools: Vec<SharedMempool> = (0..n).map(|_| Mempool::shared_gossiping(1_024)).collect();
        let sources = pools.clone();
        let engines = ClusterBuilder::new(n, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .proposal_sources(move |i| {
                Box::new(MempoolSource::new(sources[i as usize].clone(), 64))
            })
            .build_banyan();

        // All requests enter at replica 0 only; gossip must carry them to
        // every other pool so any leader can batch them.
        let ids: Vec<u64> = (1..=24).collect();
        {
            let mut pool = pools[0].lock().unwrap();
            for &id in &ids {
                pool.push(Request {
                    id,
                    client: (id % 4) as u16,
                    size: 64,
                    submitted_at: BTime::ZERO,
                });
            }
        }

        let reports =
            run_local_cluster_with_pools(engines, pools.clone(), std::time::Duration::from_secs(3));

        // Every peer pool accepted forwarded copies.
        for (i, pool) in pools.iter().enumerate().skip(1) {
            assert!(
                pool.lock().unwrap().forwarded_in() > 0,
                "replica {i} never received a forwarded request"
            );
        }
        // Every request commits, and the dedup layer marked it committed
        // in (at least) replica 0's pool.
        let committed: std::collections::HashSet<u64> = reports[0]
            .commits
            .iter()
            .filter_map(|c| WorkloadBatch::decode(&c.payload))
            .flat_map(|b| b.requests.into_iter().map(|r| r.id))
            .collect();
        for &id in &ids {
            assert!(committed.contains(&id), "request {id} never committed");
            assert!(
                pools[0].lock().unwrap().is_committed(id),
                "request {id} not marked committed in the pool"
            );
        }
    }

    #[test]
    fn icc_cluster_over_loopback_commits() {
        let engines = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .payload_size(512)
            .build_icc();
        let reports = run_local_cluster(engines, std::time::Duration::from_secs(3));
        assert!(reports.iter().all(|r| !r.commits.is_empty()));
    }
}
