//! The threaded TCP runner: drives one [`Engine`] over real sockets.
//!
//! Thread layout per replica:
//!
//! * **acceptor** — accepts inbound connections, spawns a reader per peer;
//! * **readers** — decode frames, push `(from, msg)` into the event
//!   channel;
//! * **writers** — one per peer, draining a per-peer outbound queue (a
//!   slow peer never blocks the engine);
//! * **engine loop** (the calling thread) — an
//!   [`EngineDriver`] from the shared
//!   driver layer: it owns the timer heap (same deterministic
//!   `(time, seq)` ordering the simulator uses, same stale-timer
//!   filtering) and routes engine actions; this module only supplies
//!   wall-clock time and socket transport.
//!
//! Time is wall-clock nanoseconds since `run` started, so the engine sees
//! the same `Time` type as under simulation. The engines themselves are
//! identical — that is the point: `banyan-simnet` results transfer to real
//! sockets.
//!
//! # Request dissemination
//!
//! [`run_replica_full`] attaches a [`SharedMempool`] to the wire path:
//! inbound `DisseminationMsg::Forward`/`Announce` frames feed the pool (they never
//! reach the engine — same contract as the simulator), locally pushed
//! requests found in the pool's gossip outbox are broadcast to every
//! peer, and each finalized block marks its batched request ids committed
//! in the pool before the block reaches the [`App`] (the exactly-once
//! dedup rule; see `banyan_mempool`).
//!
//! # Crash recovery
//!
//! [`run_replica_restarting`] runs the same event loop through a
//! mid-run crash/rejoin cycle described by a [`TcpRestart`] plan. At the
//! crash point the engine and its timer heap are dropped — every byte of
//! volatile state is gone, and inbound frames are discarded unread, as a
//! dead process would. At the rejoin point the plan's `rebuild` closure
//! constructs a fresh engine (for the chained engines: over a reopened
//! `banyan_storage::WalStore`, whose replay restores the durable
//! frontier), and the loop starts a driver-level
//! [`CatchUpState`] that probes peers for the commit frontier and pulls
//! the missing certified chain over `SyncMsg::RequestRange`. The same
//! purity contract as the simulator holds: `FrontierProbe` is answered
//! here, from [`Engine::finalized_round`], and `FrontierInfo` feeds the
//! catch-up machine — neither ever reaches an engine.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};

use banyan_mempool::{SharedMempool, WorkloadBatch};
use banyan_runtime::driver::{AppSink, EngineDriver};
use banyan_storage::{CatchUpState, CatchUpStep};
use banyan_types::app::{App, NullApp};
use banyan_types::engine::{CommitEntry, Engine, Outbound};
use banyan_types::ids::{ReplicaId, Round};
use banyan_types::message::{DisseminationMsg, Message, SyncMsg};
use banyan_types::time::Time;

use crate::framing::{read_frame, write_hello, write_msg, Frame};

/// Event-channel capacity per replica.
const EVENT_QUEUE: usize = 4096;
/// Outbound-queue capacity per peer.
const PEER_QUEUE: usize = 1024;
/// Per-step catch-up deadline (wall clock, 250 ms). Loopback round trips
/// are far below this; a lapsed window re-probes or rotates peers.
const CATCHUP_TIMEOUT: banyan_types::time::Duration = banyan_types::time::Duration(250_000_000);

/// Everything a finished run reports.
#[derive(Debug, Default)]
pub struct TcpRunReport {
    /// Commits in order, as emitted by the engine.
    pub commits: Vec<CommitEntry>,
    /// Messages received off the wire.
    pub messages_received: u64,
    /// Messages sent (per-peer copies counted individually).
    pub messages_sent: u64,
    /// Timers dropped by the shared driver as stale (diagnostic).
    pub stale_timers_dropped: u64,
    /// Catch-up probes/fetches this replica issued after rejoining.
    pub sync_requests: u64,
    /// Blocks this replica served to others over `ResponseBatch`.
    pub sync_blocks_served: u64,
    /// Wall-clock milliseconds from rejoin until catch-up finished.
    pub restart_recovery_ms: u64,
    /// Bytes in the engine's write-ahead log at shutdown (0 for
    /// in-memory stores and non-chained engines).
    pub wal_bytes: u64,
    /// Individual signatures the replica's verify plane checked (0 when
    /// verification is off).
    pub sigs_verified: u64,
    /// Batched verification calls issued (each covering ≥ 2 signatures).
    pub verify_batches: u64,
    /// Certificate verifications answered from the bounded LRU cache.
    pub cert_cache_hits: u64,
    /// Wall-clock CPU milliseconds spent inside verification calls.
    pub verify_cpu_ms: u64,
}

/// A mid-run crash/rejoin cycle for [`run_replica_restarting`].
pub struct TcpRestart {
    /// Wall-clock offset from start at which the replica crashes.
    pub crash_after: std::time::Duration,
    /// Wall-clock offset at which it rejoins (must exceed `crash_after`).
    pub rejoin_after: std::time::Duration,
    /// Rebuilds the engine from durable state only — for the chained
    /// engines, by reopening the same `WalStore` directory so replay
    /// recovers the persisted frontier. Called exactly once, at rejoin.
    pub rebuild: Box<dyn FnOnce() -> Box<dyn Engine> + Send>,
}

/// Runs `engine` over TCP until `deadline` (wall time from start).
///
/// `listen` is this replica's bind address; `peers[i]` the address of
/// replica `i` (our own slot is ignored). All replicas must use the same
/// ordering. Connections are one-directional: we dial every peer for
/// sending and accept every peer for receiving.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica(
    engine: Box<dyn Engine>,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<TcpRunReport> {
    run_replica_with_app(engine, NullApp, listen, peers, run_for)
}

/// Like [`run_replica`], additionally delivering every finalized block to
/// `app` (via the shared [`AppSink`] combinator) as it commits — the TCP
/// deployment's half of the `ProposalSource`/`App` service interface.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica_with_app(
    engine: Box<dyn Engine>,
    app: impl App + 'static,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<TcpRunReport> {
    run_replica_full(engine, app, None, listen, peers, run_for)
}

/// Marks every committed batch's request ids committed in the local pool
/// — retiring and releasing speculative leases along the way — before
/// handing the block to the inner [`App`]: the TCP runner's half of the
/// exactly-once dedup rule (the simulator's `SimCommitSink` does the
/// same).
struct PoolDedupApp<A: App> {
    app: A,
    pool: Option<SharedMempool>,
}

impl<A: App> App for PoolDedupApp<A> {
    fn deliver(&mut self, entry: &CommitEntry) {
        if let Some(pool) = &self.pool {
            if let Some(batch) = WorkloadBatch::decode(&entry.payload) {
                pool.lock().expect("mempool lock").mark_committed_block(
                    entry.block,
                    entry.round,
                    &batch.requests,
                );
            }
        }
        self.app.deliver(entry);
    }
}

/// Like [`run_replica_with_app`], with the request-dissemination layer
/// wired in when `pool` is provided: inbound `Forward` frames feed the
/// pool, the pool's gossip outbox (requests pushed locally, e.g. by a
/// client front-end thread) is broadcast to all peers, and commits mark
/// their batched ids committed for exactly-once dedup. The engine's
/// `MempoolSource` should share the same pool handle.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
pub fn run_replica_full(
    engine: Box<dyn Engine>,
    app: impl App + 'static,
    pool: Option<SharedMempool>,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
) -> std::io::Result<TcpRunReport> {
    run_replica_restarting(engine, app, pool, listen, peers, run_for, None)
}

/// The peer a recovering replica fetches ranges from: rotate through the
/// other replicas in id order so a stalled window retries elsewhere (the
/// TCP driver cannot know which peers are up; the catch-up machine's
/// stall budget bounds the rotation).
fn pick_sync_peer(me: ReplicaId, n: usize, rotor: usize) -> Option<ReplicaId> {
    if n < 2 {
        return None;
    }
    let off = 1 + rotor % (n - 1);
    Some(ReplicaId(((me.as_usize() + off) % n) as u16))
}

/// Runs a recovering replica's catch-up machine until it waits or
/// finishes, turning its steps into driver-level sync traffic — the TCP
/// counterpart of the simulator's `drive_catchup`.
#[allow(clippy::too_many_arguments)]
fn drive_catchup(
    catchup: &mut Option<CatchUpState>,
    frontier: Round,
    now: Time,
    me: ReplicaId,
    n: usize,
    rotor: &mut usize,
    sync_requests: &mut u64,
    recovery_ms: &mut u64,
    rejoined_at: Time,
    transmit: &mut impl FnMut(Outbound),
) {
    let Some(mut cu) = catchup.take() else {
        return;
    };
    cu.on_progress(frontier);
    loop {
        match cu.step(now) {
            CatchUpStep::Probe => {
                *sync_requests += 1;
                transmit(Outbound::Broadcast(Message::Sync(SyncMsg::FrontierProbe)));
            }
            CatchUpStep::Fetch {
                from_round,
                to_round,
            } => {
                *sync_requests += 1;
                let Some(peer) = pick_sync_peer(me, n, *rotor) else {
                    continue; // nobody to ask; window will lapse
                };
                *rotor += 1;
                transmit(Outbound::Send(
                    peer,
                    Message::Sync(SyncMsg::RequestRange {
                        from_round,
                        to_round,
                    }),
                ));
            }
            CatchUpStep::Wait => {
                // The event loop wakes at least every 10 ms and re-drives,
                // so lapsed deadlines are picked up without a timer.
                *catchup = Some(cu);
                return;
            }
            CatchUpStep::Done => {
                *recovery_ms += now.since(rejoined_at).as_nanos() / 1_000_000;
                return;
            }
        }
    }
}

/// Like [`run_replica_full`], optionally crashing and rejoining mid-run
/// (see [`TcpRestart`] and the module docs' *Crash recovery* section).
/// With `restart: None` the behavior is identical to `run_replica_full`.
///
/// # Errors
///
/// Returns an I/O error if binding or dialing fails permanently.
#[allow(clippy::too_many_lines)]
pub fn run_replica_restarting(
    engine: Box<dyn Engine>,
    app: impl App + 'static,
    pool: Option<SharedMempool>,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    run_for: std::time::Duration,
    restart: Option<TcpRestart>,
) -> std::io::Result<TcpRunReport> {
    let me = engine.id();
    let n = peers.len();
    let start = Instant::now();
    let now = || Time(start.elapsed().as_nanos() as u64);
    let stop = Arc::new(AtomicBool::new(false));

    let (event_tx, event_rx) = bounded::<(ReplicaId, Message)>(EVENT_QUEUE);

    // --- acceptor + readers -------------------------------------------
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    {
        let stop = stop.clone();
        let event_tx = event_tx.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        stream.set_nodelay(true).ok();
                        let event_tx = event_tx.clone();
                        let stop = stop.clone();
                        thread::spawn(move || {
                            let mut reader = BufReader::new(stream);
                            // First frame must be a hello.
                            let Ok(Frame::Hello { from: _ }) = read_frame(&mut reader) else {
                                return;
                            };
                            while !stop.load(Ordering::Relaxed) {
                                match read_frame(&mut reader) {
                                    Ok(Frame::Msg { from, msg }) => {
                                        if event_tx.send((from, msg)).is_err() {
                                            return;
                                        }
                                    }
                                    Ok(Frame::Hello { .. }) => {}
                                    Err(_) => return,
                                }
                            }
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
    }

    // --- writers --------------------------------------------------------
    let mut peer_txs: Vec<Option<Sender<Message>>> = Vec::with_capacity(n);
    for (i, addr) in peers.iter().enumerate() {
        if i == me.as_usize() {
            peer_txs.push(None);
            continue;
        }
        let (tx, rx): (Sender<Message>, Receiver<Message>) = bounded(PEER_QUEUE);
        let addr = *addr;
        let stop = stop.clone();
        thread::spawn(move || {
            // Outer loop: redial whenever the connection drops, so a peer
            // that crashes and resumes listening becomes reachable again
            // (messages sent while it was down are lost, as on any wire).
            'reconnect: while !stop.load(Ordering::Relaxed) {
                // Dial with retries: peers start in arbitrary order.
                let stream = loop {
                    match TcpStream::connect(addr) {
                        Ok(s) => break s,
                        Err(_) if !stop.load(Ordering::Relaxed) => {
                            thread::sleep(std::time::Duration::from_millis(20));
                        }
                        Err(_) => return,
                    }
                };
                stream.set_nodelay(true).ok();
                let mut writer = BufWriter::new(stream);
                if write_hello(&mut writer, me).is_err() {
                    continue 'reconnect;
                }
                while let Ok(msg) = rx.recv() {
                    if write_msg(&mut writer, me, &msg).is_err() {
                        continue 'reconnect;
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                return; // outbound channel closed: the run is over
            }
        });
        peer_txs.push(Some(tx));
    }

    // --- engine loop ------------------------------------------------------
    // The shared driver owns timers, stale filtering and action routing;
    // this closure is the only transport-specific piece of the loop.
    let mut messages_sent = 0u64;
    let mut messages_received = 0u64;
    let mut sync_blocks_served = 0u64;
    let mut sync_requests = 0u64;
    let mut restart_recovery_ms = 0u64;
    let mut rotor = 0usize;
    let sink = AppSink {
        inner: Vec::<CommitEntry>::new(),
        app: PoolDedupApp {
            app,
            pool: pool.clone(),
        },
    };
    // `None` while the replica is down mid-restart; the sink (the commit
    // log already delivered to the app) is parked in `down_sink` so the
    // report spans both lives.
    let mut driver = Some(EngineDriver::new(engine, sink));
    let mut down_sink = None;
    let mut catchup: Option<CatchUpState> = None;
    let mut rejoined_at = Time::ZERO;
    let mut stale_accum = 0u64;
    let mut restart = restart;
    // Speculative drain: observe every block this replica puts on (or
    // takes off) the wire into its pool's lease table. `observe_proposal`
    // is a cheap no-op unless the pool was built `with_speculation`.
    let observe_pool = pool.clone();
    let mut transmit = |out: Outbound| {
        let msg = match &out {
            Outbound::Broadcast(msg) => msg,
            Outbound::Send(_, msg) => msg,
        };
        // Served catch-up batches, counted at the server (as in the sim).
        sync_blocks_served += msg.sync_batch_blocks().len() as u64;
        if let Some(pool) = &observe_pool {
            if let Some(block) = msg.proposal_block() {
                pool.lock().expect("mempool lock").observe_proposal(block);
            }
        }
        match out {
            Outbound::Broadcast(msg) => {
                for tx in peer_txs.iter().flatten() {
                    messages_sent += 1;
                    let _ = tx.try_send(msg.clone());
                }
            }
            Outbound::Send(to, msg) => {
                if let Some(Some(tx)) = peer_txs.get(to.as_usize()) {
                    messages_sent += 1;
                    let _ = tx.try_send(msg);
                }
            }
        }
    };

    // Disseminate before proposing: requests already pooled locally are
    // forwarded ahead of the init proposal in every per-peer channel, so
    // per-connection ordering lands them in peer pools before any block
    // that could commit them (a quorum excluding this replica can commit
    // its init proposal arbitrarily soon after it is sent).
    if let Some(pool) = &pool {
        let requests = pool.lock().expect("mempool lock").take_outbox();
        if !requests.is_empty() {
            transmit(Outbound::Broadcast(Message::Dissemination(
                DisseminationMsg::Forward { requests },
            )));
        }
    }
    driver
        .as_mut()
        .expect("engine up at start")
        .init(now(), &mut transmit);

    while start.elapsed() < run_for {
        // --- restart phase boundaries ---------------------------------
        if let Some(plan) = &restart {
            if driver.is_some() && start.elapsed() >= plan.crash_after {
                // Crash: drop the engine and its timer heap. All volatile
                // state is gone; only durable storage (the WAL) and the
                // commits already delivered downstream survive.
                let d = driver.take().expect("engine up");
                stale_accum += d.stale_timers_dropped();
                down_sink = Some(d.into_sink());
            }
            if driver.is_none() && start.elapsed() >= plan.rejoin_after {
                let plan = restart.take().expect("restart plan");
                // Rebuild from durable state only (reopens the WAL).
                let engine = (plan.rebuild)();
                assert_eq!(engine.id(), me, "restart rebuilt the wrong replica");
                let frontier = engine.finalized_round();
                let mut d = EngineDriver::new(engine, down_sink.take().expect("parked sink"));
                // Same gossip-before-propose ordering as the first life:
                // requests pooled while down go out ahead of the rejoin
                // proposal.
                if let Some(pool) = &pool {
                    let requests = pool.lock().expect("mempool lock").take_outbox();
                    if !requests.is_empty() {
                        transmit(Outbound::Broadcast(Message::Dissemination(
                            DisseminationMsg::Forward { requests },
                        )));
                    }
                }
                d.init(now(), &mut transmit);
                driver = Some(d);
                rejoined_at = now();
                catchup = Some(CatchUpState::new(frontier, now(), CATCHUP_TIMEOUT));
                drive_catchup(
                    &mut catchup,
                    frontier,
                    now(),
                    me,
                    n,
                    &mut rotor,
                    &mut sync_requests,
                    &mut restart_recovery_ms,
                    rejoined_at,
                    &mut transmit,
                );
            }
        }
        let Some(d) = driver.as_mut() else {
            // Down: a dead process reads nothing. Drain and discard so
            // the bounded channel never backpressures the readers.
            while event_rx.try_recv().is_ok() {}
            thread::sleep(std::time::Duration::from_millis(2));
            continue;
        };

        d.fire_due(now(), &mut transmit);
        // Gossip: forward requests pushed into the local pool since the
        // last pass (one Forward frame per flush, never re-forwarded).
        if let Some(pool) = &pool {
            let requests = pool.lock().expect("mempool lock").take_outbox();
            if !requests.is_empty() {
                transmit(Outbound::Broadcast(Message::Dissemination(
                    DisseminationMsg::Forward { requests },
                )));
            }
        }
        // Re-drive catch-up every pass: this is what notices lapsed
        // probe/fetch deadlines (the loop wakes at least every 10 ms).
        if catchup.is_some() {
            let frontier = d.engine().finalized_round();
            drive_catchup(
                &mut catchup,
                frontier,
                now(),
                me,
                n,
                &mut rotor,
                &mut sync_requests,
                &mut restart_recovery_ms,
                rejoined_at,
                &mut transmit,
            );
        }
        // Wait for the next event or timer.
        let wait = d
            .next_deadline()
            .map(|at| std::time::Duration::from_nanos(at.0.saturating_sub(now().0)))
            .unwrap_or(std::time::Duration::from_millis(10))
            .min(std::time::Duration::from_millis(10));
        // On timeout the loop simply re-checks timers and the deadline.
        if let Ok((from, msg)) = event_rx.recv_timeout(wait) {
            messages_received += 1;
            match msg {
                // Dissemination frames feed the pool, never the engine
                // (the same contract the simulator enforces).
                Message::Dissemination(
                    DisseminationMsg::Forward { requests }
                    | DisseminationMsg::Announce { requests },
                ) => {
                    if let Some(pool) = &pool {
                        let mut pool = pool.lock().expect("mempool lock");
                        for req in requests {
                            pool.accept_forwarded(req);
                        }
                    }
                }
                // Driver traffic: answer from the engine's commit
                // frontier without delivering (engines stay pure, and the
                // chained engine's own answer path would double-reply).
                Message::Sync(SyncMsg::FrontierProbe) => {
                    let finalized = d.engine().finalized_round();
                    transmit(Outbound::Send(
                        from,
                        Message::Sync(SyncMsg::FrontierInfo { finalized }),
                    ));
                }
                // Driver traffic: feed the catch-up machine.
                Message::Sync(SyncMsg::FrontierInfo { finalized }) => {
                    if let Some(cu) = &mut catchup {
                        cu.on_frontier(finalized);
                        let frontier = d.engine().finalized_round();
                        drive_catchup(
                            &mut catchup,
                            frontier,
                            now(),
                            me,
                            n,
                            &mut rotor,
                            &mut sync_requests,
                            &mut restart_recovery_ms,
                            rejoined_at,
                            &mut transmit,
                        );
                    }
                }
                msg => {
                    // Speculative drain: observe arriving blocks into the
                    // pool's lease table (no-op unless speculation is on).
                    if let Some(pool) = &pool {
                        if let Some(block) = msg.proposal_block() {
                            pool.lock().expect("mempool lock").observe_proposal(block);
                        }
                    }
                    d.handle_message(from, msg, now(), &mut transmit);
                    // Adopted batches may have advanced the frontier.
                    if catchup.is_some() {
                        let frontier = d.engine().finalized_round();
                        drive_catchup(
                            &mut catchup,
                            frontier,
                            now(),
                            me,
                            n,
                            &mut rotor,
                            &mut sync_requests,
                            &mut restart_recovery_ms,
                            rejoined_at,
                            &mut transmit,
                        );
                    }
                }
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    let (commits, stale_timers_dropped, wal_bytes, verify) = match driver {
        Some(d) => {
            let stale = stale_accum + d.stale_timers_dropped();
            let wal = d.engine().wal_bytes();
            let verify = d.engine().verify_stats();
            (d.into_sink().inner, stale, wal, verify)
        }
        // Crashed and never rejoined before the deadline: report the
        // first life's commits.
        None => (
            down_sink.map(|s| s.inner).unwrap_or_default(),
            stale_accum,
            0,
            Default::default(),
        ),
    };
    Ok(TcpRunReport {
        commits,
        messages_received,
        messages_sent,
        stale_timers_dropped,
        sync_requests,
        sync_blocks_served,
        restart_recovery_ms,
        wal_bytes,
        sigs_verified: verify.sigs_verified,
        verify_batches: verify.verify_batches,
        cert_cache_hits: verify.cert_cache_hits,
        verify_cpu_ms: verify.verify_cpu_ms(),
    })
}

/// Runs a whole cluster on localhost, one thread per replica, and returns
/// each replica's report. Ports are allocated by the OS.
///
/// # Panics
///
/// Panics if any replica thread panics or a socket operation fails.
pub fn run_local_cluster(
    engines: Vec<Box<dyn Engine>>,
    run_for: std::time::Duration,
) -> Vec<TcpRunReport> {
    let n = engines.len();
    // Bind listeners first so every address is known before any dial.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    drop(listeners); // ports linger in TIME_WAIT-free state long enough on loopback

    let mut handles = Vec::new();
    for (i, engine) in engines.into_iter().enumerate() {
        let addrs = addrs.clone();
        let listen = addrs[i];
        handles.push(thread::spawn(move || {
            run_replica(engine, listen, addrs, run_for).expect("replica run")
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

/// Like [`run_local_cluster`], with `pools[i]` wired into replica `i`'s
/// dissemination path (see [`run_replica_full`]). The engines should pull
/// payloads from the same pool handles via `MempoolSource`.
///
/// # Panics
///
/// Panics if `pools.len() != engines.len()`, a replica thread panics or a
/// socket operation fails.
pub fn run_local_cluster_with_pools(
    engines: Vec<Box<dyn Engine>>,
    pools: Vec<SharedMempool>,
    run_for: std::time::Duration,
) -> Vec<TcpRunReport> {
    let n = engines.len();
    assert_eq!(pools.len(), n, "one pool per replica");
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect();
    drop(listeners);

    let mut handles = Vec::new();
    for (i, (engine, pool)) in engines.into_iter().zip(pools).enumerate() {
        let addrs = addrs.clone();
        let listen = addrs[i];
        handles.push(thread::spawn(move || {
            run_replica_full(engine, NullApp, Some(pool), listen, addrs, run_for)
                .expect("replica run")
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_core::builder::ClusterBuilder;
    use banyan_types::time::Duration as BDuration;

    #[test]
    fn banyan_cluster_over_loopback_commits_and_agrees() {
        let _serial = crate::loopback_serial_lock();
        let engines = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .payload_size(512)
            .build_banyan();
        let reports = run_local_cluster(engines, std::time::Duration::from_secs(3));
        // Every replica commits something.
        for (i, r) in reports.iter().enumerate() {
            assert!(
                r.commits.len() > 3,
                "replica {i} committed only {} blocks",
                r.commits.len()
            );
        }
        // Cross-replica agreement per round.
        let mut canonical = std::collections::HashMap::new();
        for r in &reports {
            for c in &r.commits {
                let prev = canonical.insert(c.round, c.block);
                if let Some(prev) = prev {
                    assert_eq!(prev, c.block, "disagreement at round {}", c.round);
                }
            }
        }
    }

    #[test]
    fn gossiped_requests_reach_every_pool_and_commit() {
        let _serial = crate::loopback_serial_lock();
        use banyan_mempool::{Mempool, MempoolSource, Request};
        use banyan_types::time::Time as BTime;

        let n = 4;
        let pools: Vec<SharedMempool> = (0..n).map(|_| Mempool::shared_gossiping(1_024)).collect();
        let sources = pools.clone();
        let engines = ClusterBuilder::new(n, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .proposal_sources(move |i| {
                Box::new(MempoolSource::new(sources[i as usize].clone(), 64))
            })
            .build_banyan();

        // All requests enter at replica 0 only; gossip must carry them to
        // every other pool so any leader can batch them.
        let ids: Vec<u64> = (1..=24).collect();
        {
            let mut pool = pools[0].lock().unwrap();
            for &id in &ids {
                pool.push(Request {
                    id,
                    client: (id % 4) as u16,
                    size: 64,
                    submitted_at: BTime::ZERO,
                });
            }
        }

        let reports =
            run_local_cluster_with_pools(engines, pools.clone(), std::time::Duration::from_secs(3));

        // Every peer pool saw the forwarded copies arrive. On a real wire
        // a quorum that excludes a slow-to-connect peer can commit the
        // batch before the Forward frame lands there; the pool then
        // refuses the copies as already-committed (`rejected_committed`)
        // — still proof the gossip path delivered. With speculation off,
        // nothing but `accept_forwarded` touches these counters on a
        // peer pool.
        for (i, pool) in pools.iter().enumerate().skip(1) {
            let p = pool.lock().unwrap();
            assert!(
                p.forwarded_in() + p.rejected_committed() + p.duplicates() > 0,
                "replica {i} never received a forwarded request"
            );
        }
        // Every request commits, and the dedup layer marked it committed
        // in (at least) replica 0's pool.
        let committed: std::collections::HashSet<u64> = reports[0]
            .commits
            .iter()
            .filter_map(|c| WorkloadBatch::decode(&c.payload))
            .flat_map(|b| b.requests.into_iter().map(|r| r.id))
            .collect();
        for &id in &ids {
            assert!(committed.contains(&id), "request {id} never committed");
            assert!(
                pools[0].lock().unwrap().is_committed(id),
                "request {id} not marked committed in the pool"
            );
        }
    }

    #[test]
    fn wal_restart_catches_up_over_loopback() {
        let _serial = crate::loopback_serial_lock();
        use banyan_storage::{BlockStore, WalStore};
        use std::path::PathBuf;

        let wal_dir =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/wal-tests/tcp-restart");
        let _ = std::fs::remove_dir_all(&wal_dir);

        // One builder recipe used for both lives of replica 2: replica 2
        // persists its chain in a WAL, everyone else stays in memory.
        let make_builder = {
            let wal_dir = wal_dir.clone();
            move || {
                let wal_dir = wal_dir.clone();
                ClusterBuilder::new(4, 1, 1)
                    .unwrap()
                    .delta(BDuration::from_millis(50))
                    .payload_size(512)
                    .chain_stores(move |i| {
                        if i == 2 {
                            Box::new(WalStore::open(&wal_dir).expect("open wal"))
                        } else {
                            Box::new(BlockStore::new())
                        }
                    })
            }
        };

        let n = 4;
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect();
        drop(listeners);

        // Generous post-rejoin window: catch-up plus fresh commits must
        // fit even on a single-core debug build.
        let run_for = std::time::Duration::from_secs(8);
        let engines = make_builder().build_banyan();
        let mut handles = Vec::new();
        for (i, engine) in engines.into_iter().enumerate() {
            let addrs = addrs.clone();
            let listen = addrs[i];
            if i == 2 {
                // Crash at 2 s, rejoin at 3 s by reopening the WAL: the
                // rebuild closure recovers the durable frontier via
                // replay, then the driver's catch-up machine refills the
                // downtime gap over ranged sync.
                let rebuild_builder = make_builder();
                let restart = TcpRestart {
                    crash_after: std::time::Duration::from_secs(2),
                    rejoin_after: std::time::Duration::from_millis(3000),
                    rebuild: Box::new(move || rebuild_builder.build_replica("banyan", 2)),
                };
                handles.push(thread::spawn(move || {
                    run_replica_restarting(
                        engine,
                        banyan_types::app::NullApp,
                        None,
                        listen,
                        addrs,
                        run_for,
                        Some(restart),
                    )
                    .expect("replica run")
                }));
            } else {
                handles.push(thread::spawn(move || {
                    run_replica(engine, listen, addrs, run_for).expect("replica run")
                }));
            }
        }
        let reports: Vec<TcpRunReport> = handles
            .into_iter()
            .map(|h| h.join().expect("replica thread"))
            .collect();

        // The rejoined replica probed the frontier and persisted a WAL.
        assert!(reports[2].sync_requests > 0, "no catch-up traffic issued");
        assert!(reports[2].wal_bytes > 0, "WAL empty at shutdown");
        // Someone served it certified blocks over ranged sync.
        let served: u64 = reports.iter().map(|r| r.sync_blocks_served).sum();
        assert!(served > 0, "no blocks served over ranged sync");
        // It committed new blocks after rejoining.
        let rejoin = Time(3_000_000_000);
        assert!(
            reports[2].commits.iter().any(|c| c.committed_at > rejoin),
            "replica 2 never committed after rejoining"
        );
        // Cross-replica agreement per round, spanning both lives.
        let mut canonical = std::collections::HashMap::new();
        for r in &reports {
            for c in &r.commits {
                let prev = canonical.insert(c.round, c.block);
                if let Some(prev) = prev {
                    assert_eq!(prev, c.block, "disagreement at round {}", c.round);
                }
            }
        }
    }

    #[test]
    fn icc_cluster_over_loopback_commits() {
        let _serial = crate::loopback_serial_lock();
        let engines = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(BDuration::from_millis(50))
            .payload_size(512)
            .build_icc();
        let reports = run_local_cluster(engines, std::time::Duration::from_secs(3));
        assert!(reports.iter().all(|r| !r.commits.is_empty()));
    }
}
