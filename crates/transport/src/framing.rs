//! Length-prefixed framing over TCP streams.
//!
//! Wire layout per frame:
//!
//! ```text
//! [u32 LE: body length] [u16 LE: sender replica id] [body: Message bytes]
//! ```
//!
//! The first frame on every connection is a `HELLO` (empty body) that
//! identifies the sender, after which only protocol messages flow. Frames
//! are bounded by [`MAX_FRAME`] to protect receivers from hostile lengths.

use std::io::{self, Read, Write};

use banyan_types::codec::Wire;
use banyan_types::ids::ReplicaId;
use banyan_types::message::Message;

/// Upper bound on a frame body (64 MiB — comfortably above the largest
/// block the benchmarks ship).
pub const MAX_FRAME: usize = 64 << 20;

/// A decoded frame: who sent it and what.
// `Msg` carries a whole protocol message inline; `Hello` happens once per
// connection, so the size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: identifies the sender.
    Hello {
        /// The dialing replica.
        from: ReplicaId,
    },
    /// A protocol message.
    Msg {
        /// The sending replica.
        from: ReplicaId,
        /// The message.
        msg: Message,
    },
}

/// Writes a hello frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_hello<W: Write>(w: &mut W, from: ReplicaId) -> io::Result<()> {
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&from.0.to_le_bytes())?;
    w.flush()
}

/// Writes a message frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_msg<W: Write>(w: &mut W, from: ReplicaId, msg: &Message) -> io::Result<()> {
    let body = msg.to_bytes();
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&from.0.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one frame, blocking.
///
/// # Errors
///
/// Returns an error on I/O failure, oversized frames, or undecodable
/// bodies.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut from_buf = [0u8; 2];
    r.read_exact(&mut from_buf)?;
    let from = ReplicaId(u16::from_le_bytes(from_buf));
    if len == 0 {
        return Ok(Frame::Hello { from });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let msg = Message::from_bytes(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad message: {e}")))?;
    Ok(Frame::Msg { from, msg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_types::ids::BlockHash;
    use banyan_types::message::SyncMsg;

    fn sample_msg() -> Message {
        Message::Sync(SyncMsg::Request {
            hash: BlockHash([7; 32]),
        })
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        write_hello(&mut buf, ReplicaId(3)).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame, Frame::Hello { from: ReplicaId(3) });
    }

    #[test]
    fn msg_roundtrip() {
        let mut buf = Vec::new();
        write_msg(&mut buf, ReplicaId(1), &sample_msg()).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(
            frame,
            Frame::Msg {
                from: ReplicaId(1),
                msg: sample_msg()
            }
        );
    }

    #[test]
    fn several_frames_stream() {
        let mut buf = Vec::new();
        write_hello(&mut buf, ReplicaId(0)).unwrap();
        write_msg(&mut buf, ReplicaId(0), &sample_msg()).unwrap();
        write_msg(&mut buf, ReplicaId(0), &sample_msg()).unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Hello { .. }));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Msg { .. }));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Msg { .. }));
        assert!(read_frame(&mut r).is_err(), "EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_errors() {
        let mut buf = Vec::new();
        write_msg(&mut buf, ReplicaId(1), &sample_msg()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn garbage_body_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }
}
