//! Property tests for the unlock machinery — the safety-critical core of
//! Banyan. These encode the counting arguments of Lemmas 8.1 and 8.5
//! directly against randomized vote patterns.

use proptest::prelude::*;

use banyan_core::chained::UnlockState;
use banyan_crypto::Signature;
use banyan_types::config::ProtocolConfig;
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};

fn hash(tag: u8) -> BlockHash {
    BlockHash([tag.wrapping_add(1); 32]) // avoid the genesis all-zero hash
}

/// A randomized vote pattern: per replica, the list of blocks it
/// fast-voted (honest replicas vote once; Byzantine may double-vote).
#[derive(Debug, Clone)]
struct Pattern {
    n: usize,
    f: usize,
    p: usize,
    /// votes[replica] = blocks (by tag) this replica fast-voted for.
    votes: Vec<Vec<u8>>,
    /// rank per block tag (tag → rank).
    ranks: Vec<(u8, u16)>,
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    // Cluster shapes the paper uses plus a couple of extras.
    prop_oneof![
        Just((4usize, 1usize, 1usize)),
        Just((7, 2, 1)),
        Just((19, 6, 1)),
        Just((19, 4, 4))
    ]
    .prop_flat_map(|(n, f, p)| {
        let blocks = proptest::collection::vec((any::<u8>(), 0u16..4), 1..4);
        let votes = proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..3), n);
        (Just((n, f, p)), blocks, votes).prop_map(|((n, f, p), mut ranks, votes)| {
            ranks.sort();
            ranks.dedup_by_key(|(tag, _)| *tag);
            Pattern {
                n,
                f,
                p,
                votes,
                ranks,
            }
        })
    })
}

fn build_state(pat: &Pattern) -> UnlockState {
    let mut s = UnlockState::new(Round(1), pat.n, pat.f + pat.p);
    for (tag, rank) in &pat.ranks {
        s.observe_block(hash(*tag), Rank(*rank));
    }
    let known: Vec<u8> = pat.ranks.iter().map(|(t, _)| *t).collect();
    for (replica, blocks) in pat.votes.iter().enumerate() {
        for tag in blocks {
            // Map the arbitrary tag onto a known block so votes land.
            if known.is_empty() {
                continue;
            }
            let tag = known[*tag as usize % known.len()];
            s.add_fast_vote(hash(tag), ReplicaId(replica as u16), Signature::zero());
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Monotonicity: adding one more vote can never lock a block that was
    /// unlocked (Definition 7.6's conditions only count votes upward, and
    /// condition 2 is sticky).
    #[test]
    fn unlock_is_monotone(pat in arb_pattern(), extra_voter in any::<u16>(), extra_block in any::<u8>()) {
        let mut s = build_state(&pat);
        let unlocked_before: Vec<BlockHash> = pat
            .ranks
            .iter()
            .map(|(t, _)| hash(*t))
            .filter(|h| s.is_unlocked(h))
            .collect();
        // One more vote from an arbitrary replica for an arbitrary known block.
        if let Some((tag, _)) = pat.ranks.get(extra_block as usize % pat.ranks.len()) {
            s.add_fast_vote(hash(*tag), ReplicaId(extra_voter % pat.n as u16), Signature::zero());
        }
        for h in unlocked_before {
            prop_assert!(s.is_unlocked(&h), "vote addition locked a block");
        }
    }

    /// Lemma 8.5 (counting half): if a rank-0 block holds n − p fast votes
    /// and every replica voted at most once (no Byzantine double votes),
    /// then no *other* block is unlocked.
    #[test]
    fn fp_finalized_block_is_uniquely_unlocked_without_double_votes(
        shape in prop_oneof![Just((4usize,1usize,1usize)), Just((7,2,1)), Just((19,4,4))],
        stray in 0usize..2,
    ) {
        let (n, f, p) = shape;
        let cfg = ProtocolConfig::new(n, f, p).unwrap();
        let mut s = UnlockState::new(Round(1), n, cfg.unlock_threshold());
        let winner = hash(0);
        let other = hash(1);
        s.observe_block(winner, Rank(0));
        s.observe_block(other, Rank(1));
        // n − p replicas vote for the winner; the remaining p (here up to
        // `stray` of them) vote for the other block. Each votes once.
        let quorum = cfg.fast_quorum();
        for i in 0..quorum {
            s.add_fast_vote(winner, ReplicaId(i as u16), Signature::zero());
        }
        for i in 0..stray.min(n - quorum) {
            s.add_fast_vote(other, ReplicaId((quorum + i) as u16), Signature::zero());
        }
        prop_assert_eq!(s.fast_finalizable(quorum), Some(winner));
        prop_assert!(s.is_unlocked(&winner));
        prop_assert!(!s.is_unlocked(&other), "conflicting block unlocked next to an FP quorum");
        prop_assert!(!s.round_fully_unlocked());
    }

    /// Lemma 8.1 (pigeonhole half): if at least n − f distinct replicas
    /// vote (plus, when several rank-0 blocks exist, the leader's own
    /// double votes on each), at least one known block ends up unlocked.
    #[test]
    fn some_block_unlocks_when_honest_majority_votes(
        shape in prop_oneof![Just((4usize,1usize,1usize)), Just((7,2,1)), Just((19,6,1)), Just((19,4,4))],
        split in any::<u8>(),
        two_leaders in any::<bool>(),
    ) {
        let (n, f, p) = shape;
        let cfg = ProtocolConfig::new(n, f, p).unwrap();
        let mut s = UnlockState::new(Round(1), n, cfg.unlock_threshold());
        let a = hash(0);
        let b = hash(1);
        s.observe_block(a, Rank(0));
        if two_leaders {
            s.observe_block(b, Rank(0)); // equivocating leader
        } else {
            s.observe_block(b, Rank(1));
        }
        // n − f honest replicas split their single votes across a and b.
        let honest = n - f;
        let cut = (split as usize) % (honest + 1);
        for i in 0..honest {
            let target = if i < cut { a } else { b };
            s.add_fast_vote(target, ReplicaId(i as u16), Signature::zero());
        }
        if two_leaders {
            // Lemma 8.1: each rank-0 block carries a fast vote from the
            // (Byzantine) leader — replica n−1 double-votes.
            s.add_fast_vote(a, ReplicaId((n - 1) as u16), Signature::zero());
            s.add_fast_vote(b, ReplicaId((n - 1) as u16), Signature::zero());
        }
        let any_unlocked = s.is_unlocked(&a) || s.is_unlocked(&b);
        prop_assert!(any_unlocked, "deadlock: no block unlocked (n={n}, f={f}, p={p}, cut={cut})");
    }

    /// supp() counts distinct voters only, regardless of duplication.
    #[test]
    fn supp_counts_distinct_voters(dups in 1usize..5, voters in proptest::collection::btree_set(0u16..19, 1..19)) {
        let mut s = UnlockState::new(Round(1), 19, 7);
        let b = hash(3);
        s.observe_block(b, Rank(0));
        for _ in 0..dups {
            for &v in &voters {
                s.add_fast_vote(b, ReplicaId(v), Signature::zero());
            }
        }
        prop_assert_eq!(s.supp(&b), voters.len());
    }
}
