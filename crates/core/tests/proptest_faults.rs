//! Randomized fault-schedule property tests: under arbitrary crash
//! schedules within the `f` bound and arbitrary seeds, Banyan and ICC
//! never violate safety, and with at most `f` crashes they keep making
//! progress.

use proptest::prelude::*;

use banyan_core::builder::ClusterBuilder;
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

#[derive(Debug, Clone)]
struct CrashPlan {
    /// (replica, crash time ms) pairs.
    crashes: Vec<(u16, u64)>,
    seed: u64,
}

fn arb_plan(n: u16, max_crashes: usize) -> impl Strategy<Value = CrashPlan> {
    (
        proptest::collection::vec((0..n, 0u64..4_000), 0..=max_crashes),
        any::<u64>(),
    )
        .prop_map(|(mut crashes, seed)| {
            crashes.sort();
            crashes.dedup_by_key(|(r, _)| *r);
            CrashPlan { crashes, seed }
        })
}

fn run(protocol: &str, n: usize, f: usize, plan: &CrashPlan) -> Simulation {
    let topo = Topology::uniform(n, Duration::from_millis(5));
    let engines = ClusterBuilder::new(n, f, 1)
        .unwrap()
        .delta(Duration::from_millis(10))
        .payload_size(100)
        .build(protocol);
    let mut faults = FaultPlan::none();
    for (replica, ms) in &plan.crashes {
        faults = faults.crash(
            ReplicaId(*replica),
            Time(Duration::from_millis(*ms).as_nanos()),
        );
    }
    let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(plan.seed));
    sim.run_until(Time(Duration::from_secs(8).as_nanos()));
    sim
}

proptest! {
    // Each case simulates 8 s of protocol time; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// n = 4, f = 1: any single crash at any time, any seed — safe and live.
    #[test]
    fn banyan_safe_and_live_under_single_crash(plan in arb_plan(4, 1)) {
        let sim = run("banyan", 4, 1, &plan);
        prop_assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
        prop_assert!(
            sim.auditor().committed_rounds() > 20,
            "only {} rounds with plan {:?}",
            sim.auditor().committed_rounds(),
            plan
        );
    }

    /// n = 7, f = 2: any two crashes — safe and live for both protocols.
    #[test]
    fn both_protocols_survive_two_crashes(plan in arb_plan(7, 2)) {
        for protocol in ["banyan", "icc"] {
            let sim = run(protocol, 7, 2, &plan);
            prop_assert!(sim.auditor().is_safe(), "{protocol}: {:?}", sim.auditor().violations());
            prop_assert!(
                sim.auditor().committed_rounds() > 10,
                "{protocol}: only {} rounds with plan {:?}",
                sim.auditor().committed_rounds(),
                plan
            );
        }
    }

    /// Safety holds even when MORE than f replicas crash (liveness may
    /// not, but agreement must).
    #[test]
    fn safety_beyond_the_fault_bound(plan in arb_plan(4, 3)) {
        let sim = run("banyan", 4, 1, &plan);
        prop_assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    }
}
