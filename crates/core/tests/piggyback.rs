//! Tests for the Remark 7.8 optimization: "it is possible to omit sending
//! a corresponding notarization vote when a fast vote is sent. A
//! notarization then consists of two multi-signatures, one for
//! notarization and one for fast votes."

use banyan_core::builder::ClusterBuilder;
use banyan_core::chained::ByzantineMode;
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

fn run(piggyback: bool, byz: Option<(u16, ByzantineMode)>, seed: u64) -> Simulation {
    let topo = Topology::uniform(4, Duration::from_millis(10));
    let mut builder = ClusterBuilder::new(4, 1, 1)
        .unwrap()
        .delta(Duration::from_millis(20))
        .payload_size(500)
        .piggyback(piggyback);
    if let Some((replica, mode)) = byz {
        builder = builder.byzantine(replica, mode);
    }
    let engines = builder.build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(seed));
    sim.run_until(secs(10));
    sim
}

#[test]
fn piggyback_mode_finalizes_and_agrees() {
    let sim = run(true, None, 1);
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 50);
    // Fast path still fires.
    let share = sim.metrics().fast_path_share(ReplicaId(0));
    assert!(share > 0.9, "fast share {share}");
}

#[test]
fn piggyback_saves_vote_messages() {
    let on = run(true, None, 2);
    let off = run(false, None, 2);
    assert!(on.auditor().is_safe() && off.auditor().is_safe());
    // Roughly the same number of rounds...
    let ratio = on.auditor().committed_rounds() as f64 / off.auditor().committed_rounds() as f64;
    assert!((0.9..1.1).contains(&ratio), "round ratio {ratio}");
    // ...with measurably fewer bytes on the wire (one 64-byte signature
    // saved per replica per round).
    assert!(
        on.metrics().bytes_sent < off.metrics().bytes_sent,
        "piggyback should save bytes: {} vs {}",
        on.metrics().bytes_sent,
        off.metrics().bytes_sent
    );
}

#[test]
fn piggyback_latency_matches_standard_banyan() {
    let on = run(true, None, 3);
    let off = run(false, None, 3);
    let a = on.metrics().proposer_latency_stats().mean_ms;
    let b = off.metrics().proposer_latency_stats().mean_ms;
    assert!(
        (a - b).abs() / b < 0.1,
        "piggyback {a:.1}ms vs standard {b:.1}ms"
    );
}

#[test]
fn piggyback_safe_under_equivocation() {
    for seed in [5u64, 6] {
        let sim = run(true, Some((0, ByzantineMode::EquivocateLeader)), seed);
        assert!(
            sim.auditor().is_safe(),
            "seed {seed}: {:?}",
            sim.auditor().violations()
        );
        assert!(sim.auditor().committed_rounds() > 30);
    }
}

#[test]
fn piggyback_safe_under_double_fast_votes() {
    let sim = run(true, Some((2, ByzantineMode::DoubleFastVote)), 7);
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 30);
}

#[test]
fn piggyback_works_at_larger_scale() {
    let topo = Topology::four_global_19();
    let engines = ClusterBuilder::new(19, 6, 1)
        .unwrap()
        .delta(topo.max_one_way() + Duration::from_millis(10))
        .payload_size(10_000)
        .piggyback(true)
        .build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(11));
    sim.run_until(secs(10));
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 20);
}
