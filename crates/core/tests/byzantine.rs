//! Safety and liveness under Byzantine behavior.
//!
//! The paper's safety argument (§8.2) must hold against the adversaries it
//! reasons about: equivocating leaders (Lemma 8.1's two-rank-0-blocks
//! scenario, Remark 7.3) and double fast-voters (Lemma 8.5's counting
//! argument). Every test runs the full protocol through the simulator
//! with the global safety auditor attached.

use banyan_core::builder::ClusterBuilder;
use banyan_core::chained::ByzantineMode;
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::engine::Engine;
use banyan_types::time::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

fn run_with_byz(
    protocol: &str,
    n: usize,
    f: usize,
    p: usize,
    byz: &[(u16, ByzantineMode)],
    run_secs: u64,
    seed: u64,
) -> Simulation {
    let topo = Topology::uniform(n, Duration::from_millis(10));
    let mut builder = ClusterBuilder::new(n, f, p)
        .unwrap()
        .delta(Duration::from_millis(20))
        .payload_size(500);
    for (replica, mode) in byz {
        builder = builder.byzantine(*replica, mode.clone());
    }
    let engines: Vec<Box<dyn Engine>> = builder.build(protocol);
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(seed));
    sim.run_until(secs(run_secs));
    sim
}

#[test]
fn equivocating_leader_cannot_break_banyan_safety() {
    for seed in [1u64, 2, 3] {
        let sim = run_with_byz(
            "banyan",
            4,
            1,
            1,
            &[(0, ByzantineMode::EquivocateLeader)],
            10,
            seed,
        );
        assert!(
            sim.auditor().is_safe(),
            "seed {seed}: {:?}",
            sim.auditor().violations()
        );
        // Liveness: the protocol keeps finalizing despite the equivocator
        // leading every 4th round.
        assert!(
            sim.auditor().committed_rounds() > 30,
            "seed {seed}: only {} rounds",
            sim.auditor().committed_rounds()
        );
    }
}

#[test]
fn equivocating_leader_cannot_break_icc_safety() {
    let sim = run_with_byz(
        "icc",
        4,
        1,
        1,
        &[(0, ByzantineMode::EquivocateLeader)],
        10,
        1,
    );
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 30);
}

#[test]
fn equivocating_leader_with_larger_cluster() {
    // n = 7, f = 2, p = 1: two equivocators.
    let sim = run_with_byz(
        "banyan",
        7,
        2,
        1,
        &[
            (0, ByzantineMode::EquivocateLeader),
            (1, ByzantineMode::EquivocateLeader),
        ],
        10,
        5,
    );
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 20);
}

#[test]
fn double_fast_voter_cannot_break_safety() {
    let sim = run_with_byz(
        "banyan",
        4,
        1,
        1,
        &[(2, ByzantineMode::DoubleFastVote)],
        10,
        7,
    );
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 30);
}

#[test]
fn equivocator_plus_double_voter_mixed() {
    // n = 7, f = 2: one equivocating leader AND one double fast-voter.
    let sim = run_with_byz(
        "banyan",
        7,
        2,
        1,
        &[
            (0, ByzantineMode::EquivocateLeader),
            (3, ByzantineMode::DoubleFastVote),
        ],
        10,
        11,
    );
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 20);
}

#[test]
fn silent_leader_does_not_stall_progress() {
    // A silent leader forces the rank-1 proposer path (Δ_prop(1) = 2Δ)
    // every time its turn comes; chain growth must continue (deadlock
    // freeness, Theorem 8.2).
    for protocol in ["banyan", "icc"] {
        let sim = run_with_byz(
            protocol,
            4,
            1,
            1,
            &[(1, ByzantineMode::SilentLeader)],
            10,
            3,
        );
        assert!(sim.auditor().is_safe());
        assert!(
            sim.auditor().committed_rounds() > 30,
            "{protocol}: {} rounds",
            sim.auditor().committed_rounds()
        );
    }
}

#[test]
fn fast_path_survives_byzantine_minority_with_p_equals_f() {
    // With p = f = 1 and n = 4, the fast path tolerates one unresponsive
    // replica given an honest leader (Theorem 8.8). A silent (non-leader)
    // replica must not prevent FP-finalization in other leaders' rounds.
    let sim = run_with_byz(
        "banyan",
        4,
        1,
        1,
        &[(3, ByzantineMode::SilentLeader)],
        10,
        9,
    );
    assert!(sim.auditor().is_safe());
    let metrics = sim.metrics();
    let fast = metrics.fast_path_share(banyan_types::ids::ReplicaId(0));
    assert!(
        fast > 0.5,
        "fast path should fire in most rounds despite one silent leader; got {fast}"
    );
}

#[test]
fn equivocation_under_wan_topology() {
    // Same adversary on the realistic 4-datacenter topology.
    let topo = Topology::four_global_4();
    let engines = ClusterBuilder::new(4, 1, 1)
        .unwrap()
        .delta(topo.max_one_way() + Duration::from_millis(10))
        .payload_size(10_000)
        .byzantine(0, ByzantineMode::EquivocateLeader)
        .build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(13));
    sim.run_until(secs(15));
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(sim.auditor().committed_rounds() > 10);
}

#[test]
fn partition_heals_and_progress_resumes() {
    // Asynchrony period: a 2/2 partition for 3 s (no quorum on either
    // side), then healing. Safety throughout; progress after healing.
    let topo = Topology::uniform(4, Duration::from_millis(10));
    let engines = ClusterBuilder::new(4, 1, 1)
        .unwrap()
        .delta(Duration::from_millis(20))
        .payload_size(500)
        .build_banyan();
    use banyan_types::ids::ReplicaId;
    let faults = FaultPlan::none().partition(
        vec![ReplicaId(0), ReplicaId(1)],
        vec![ReplicaId(2), ReplicaId(3)],
        secs(2),
        secs(5),
    );
    let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(21));
    sim.run_until(secs(2));
    let before = sim.auditor().committed_rounds();
    sim.run_until(secs(5));
    let during = sim.auditor().committed_rounds();
    // No quorum during the partition ⇒ no *new* explicit finalizations
    // (a few in-flight ones may land).
    assert!(
        during <= before + 3,
        "before {before}, during partition {during}"
    );
    sim.run_until(secs(12));
    let after = sim.auditor().committed_rounds();
    assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
    assert!(after > during + 30, "progress resumed: {during} -> {after}");
}
