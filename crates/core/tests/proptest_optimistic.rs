//! Property tests of optimistic proposal pipelining (Moonshot-style):
//! under randomized crash schedules, partition windows and delivery
//! seeds with optimism ON, no two honest replicas finalize conflicting
//! blocks, no request ever appears twice in a replica's committed chain,
//! and — model-checked against the PR 5 lease lifecycle model — the
//! requests of an *abandoned optimistic block* re-enter the pending
//! queue exactly once, whether the eager certificate-conflict sweep or
//! the round-horizon release returns them.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use banyan_core::builder::ClusterBuilder;
use banyan_core::chained::OptimisticConfig;
use banyan_mempool::{
    BatchPolicy, Mempool, MempoolSource, Request, SharedMempool, WorkloadBatch, DEFAULT_MAX_BATCH,
};
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::app::ProposalContext;
use banyan_types::ids::{BlockHash, ReplicaId, Round};
use banyan_types::time::{Duration, Time};

// ---------------------------------------------------------------------
// Part 1 — whole-cluster safety under randomized faults with optimism on.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct OptimisticPlan {
    /// (replica, crash time ms) pairs, deduped per replica.
    crashes: Vec<(u16, u64)>,
    /// Optional partition: (split point, start ms, duration ms). The
    /// cluster splits `[0, split)` vs `[split, n)` and always heals.
    partition: Option<(u16, u64, u64)>,
    seed: u64,
}

fn arb_plan(n: u16, max_crashes: usize) -> impl Strategy<Value = OptimisticPlan> {
    (
        proptest::collection::vec((0..n, 0u64..4_000), 0..=max_crashes),
        proptest::option::of((1..n, 0u64..3_000, 100u64..1_500)),
        any::<u64>(),
    )
        .prop_map(|(mut crashes, partition, seed)| {
            crashes.sort();
            crashes.dedup_by_key(|(r, _)| *r);
            OptimisticPlan {
                crashes,
                partition,
                seed,
            }
        })
}

fn req(id: u64) -> Request {
    Request {
        id,
        client: (id % 5) as u16,
        size: 100,
        submitted_at: Time(id),
    }
}

/// Runs an n-replica optimistic cluster where every replica carries its
/// own disjoint batch of requests (gossip off — each id has exactly one
/// possible proposer), under the plan's crashes and partition window.
fn run_optimistic(protocol: &str, n: usize, f: usize, plan: &OptimisticPlan) -> Simulation {
    let pools: Vec<SharedMempool> = (0..n)
        .map(|i| {
            let mut pool = Mempool::new(100_000);
            for id in 1..=40u64 {
                pool.push(req(i as u64 * 1_000 + id));
            }
            Arc::new(Mutex::new(pool))
        })
        .collect();
    let sources = pools;
    let engines = ClusterBuilder::new(n, f, 1)
        .unwrap()
        .delta(Duration::from_millis(10))
        .proposal_sources(move |i| {
            Box::new(MempoolSource::new(
                sources[i as usize].clone(),
                DEFAULT_MAX_BATCH,
            ))
        })
        .optimistic(OptimisticConfig::default())
        .build(protocol);
    let mut faults = FaultPlan::none();
    for (replica, ms) in &plan.crashes {
        faults = faults.crash(
            ReplicaId(*replica),
            Time(Duration::from_millis(*ms).as_nanos()),
        );
    }
    if let Some((split, start, len)) = plan.partition {
        faults = faults.partition(
            (0..split).map(ReplicaId).collect(),
            (split..n as u16).map(ReplicaId).collect(),
            Time(Duration::from_millis(start).as_nanos()),
            Time(Duration::from_millis(start + len).as_nanos()),
        );
    }
    let topo = Topology::uniform(n, Duration::from_millis(5));
    let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(plan.seed));
    sim.run_until(Time(Duration::from_secs(8).as_nanos()));
    sim
}

/// Every request id in every replica's committed chain, with the claim
/// that none repeats: an abandoned optimistic block's requests must
/// re-enter pending and commit through exactly one later block.
fn assert_no_chain_duplicates(sim: &Simulation, protocol: &str) {
    let mut per_replica: HashMap<ReplicaId, HashSet<u64>> = HashMap::new();
    for c in &sim.metrics().commits {
        let seen = per_replica.entry(c.replica).or_default();
        if let Some(batch) = WorkloadBatch::decode(&c.entry.payload) {
            for r in batch.requests {
                assert!(
                    seen.insert(r.id),
                    "{protocol}: request {} committed twice in replica {}'s chain",
                    r.id,
                    c.replica.0
                );
            }
        }
    }
}

proptest! {
    // Each case simulates 8 s of protocol time across two engines.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// n = 4, f = 1 with optimism on: any single crash, any partition
    /// window, any seed — agreement holds, the chain carries each
    /// request at most once, and (the partition having healed) the
    /// cluster keeps committing despite abandoned optimistic parents.
    #[test]
    fn optimistic_pipelining_is_safe_under_random_faults(plan in arb_plan(4, 1)) {
        for protocol in ["banyan", "icc"] {
            let sim = run_optimistic(protocol, 4, 1, &plan);
            prop_assert!(
                sim.auditor().is_safe(),
                "{protocol}: {:?} under {plan:?}",
                sim.auditor().violations()
            );
            assert_no_chain_duplicates(&sim, protocol);
            prop_assert!(
                sim.auditor().committed_rounds() > 20,
                "{protocol}: only {} rounds under {plan:?}",
                sim.auditor().committed_rounds()
            );
        }
    }

    /// Safety must hold even past the fault bound (liveness may not).
    #[test]
    fn optimistic_safety_beyond_the_fault_bound(plan in arb_plan(4, 3)) {
        let sim = run_optimistic("banyan", 4, 1, &plan);
        prop_assert!(sim.auditor().is_safe(), "{:?}", sim.auditor().violations());
        assert_no_chain_duplicates(&sim, "banyan");
    }
}

// ---------------------------------------------------------------------
// Part 2 — the abandoned-block release, model-checked against the PR 5
// lease lifecycle model extended with optimistic parent provenance.
// ---------------------------------------------------------------------

/// One live lease in the model: its round, block, carried ids, and — for
/// optimistic blocks — the parent link that makes it eligible for the
/// eager certificate-conflict release.
struct ModelLease {
    round: u64,
    block: BlockHash,
    ids: Vec<u64>,
    parent: Option<BlockHash>,
}

struct Model {
    pending: HashSet<u64>,
    committed: HashSet<u64>,
    leases: Vec<ModelLease>,
    pushed: u64,
    /// Requests actually re-pended by releases — must equal the pool's
    /// `released()` counter, which is how "exactly once" is pinned: a
    /// second re-entry of the same id would bump the pool counter past
    /// the model's.
    released: u64,
}

impl Model {
    /// The model's half of `mark_committed_block`: the winner's ids
    /// commit; round-`r+1` leases whose optimistic parent is a live
    /// round-≤-`r` block other than the winner release eagerly (the
    /// fork they extend just died); then every lease at or below `r`
    /// releases.
    fn commit(&mut self, idx: usize) {
        let winner = self.leases.remove(idx);
        for id in &winner.ids {
            self.committed.insert(*id);
            self.pending.remove(id);
        }
        let r = winner.round;
        let known: HashMap<BlockHash, u64> =
            self.leases.iter().map(|l| (l.block, l.round)).collect();
        let (conflicting, rest): (Vec<ModelLease>, Vec<ModelLease>) =
            std::mem::take(&mut self.leases).into_iter().partition(|l| {
                l.round == r + 1
                    && l.parent.is_some_and(|p| {
                        p != winner.block && known.get(&p).is_some_and(|pr| *pr <= r)
                    })
            });
        let (doomed, alive): (Vec<ModelLease>, Vec<ModelLease>) =
            rest.into_iter().partition(|l| l.round <= r);
        self.leases = alive;
        // Mirror the pool: the round-horizon sweep re-pends first, the
        // eagerly released conflict children after.
        for lease in doomed {
            self.release_ids(lease);
        }
        for lease in conflicting {
            self.release_ids(lease);
        }
    }

    fn release_ids(&mut self, lease: ModelLease) {
        for id in lease.ids {
            if !self.committed.contains(&id) && self.pending.insert(id) {
                self.released += 1;
            }
        }
    }
}

fn block_hash(counter: u64) -> BlockHash {
    let mut h = [0u8; 32];
    h[..8].copy_from_slice(&counter.to_le_bytes());
    h[31] = 0xB2;
    BlockHash(h)
}

fn check_invariants(pool: &Mempool, model: &Model) {
    assert_eq!(pool.len(), model.pending.len(), "pending sets agree");
    assert_eq!(pool.live_leases(), model.leases.len(), "lease counts agree");
    assert_eq!(
        pool.released(),
        model.released,
        "a released request re-entered pending other than exactly once"
    );
    for id in 1..=model.pushed {
        assert_eq!(
            pool.is_committed(id),
            model.committed.contains(&id),
            "committed state of {id} agrees"
        );
        let leased = model.leases.iter().any(|l| l.ids.contains(&id));
        assert!(
            model.pending.contains(&id) || leased || model.committed.contains(&id),
            "request {id} was lost: neither pending, leased nor committed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved push / drain / observe / *optimistic-child drain* /
    /// commit / release: the pool and the provenance-extended model
    /// agree at every step, so an abandoned optimistic block's requests
    /// re-enter pending exactly once — through the eager conflict sweep
    /// when the parent fork dies, or the round horizon otherwise —
    /// and nothing is lost or doubly committed.
    #[test]
    fn optimistic_release_matches_the_lease_model(
        ops in proptest::collection::vec((0u8..6, 0u8..8), 1..100)
    ) {
        let mut pool = Mempool::new(100_000).with_speculation(64 * 1024);
        let mut model = Model {
            pending: HashSet::new(),
            committed: HashSet::new(),
            leases: Vec::new(),
            pushed: 0,
            released: 0,
        };
        let mut round = 0u64;
        let mut blocks = 0u64;

        for (op, arg) in ops {
            match op {
                // Push a burst of fresh requests.
                0 => {
                    for _ in 0..=arg {
                        model.pushed += 1;
                        pool.push(req(model.pushed));
                        model.pending.insert(model.pushed);
                    }
                }
                // Speculative drain into a new own block on a *certified*
                // parent (unlinked provenance), excluding live leases.
                1 => {
                    let ancestors: Vec<BlockHash> =
                        model.leases.iter().map(|l| l.block).collect();
                    let ctx = ProposalContext {
                        round: Round(round + 1),
                        now: Time(round),
                        parent: ancestors.first().copied().unwrap_or(BlockHash::ZERO),
                        ancestors,
                    };
                    let out = pool.drain_speculative(
                        usize::from(arg) + 1,
                        u64::MAX,
                        &ctx,
                        &BatchPolicy::EAGER,
                    );
                    if !out.is_empty() {
                        round += 1;
                        blocks += 1;
                        let hash = block_hash(blocks);
                        let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
                        pool.observe_block(hash, Round(round), out);
                        for id in &ids {
                            model.pending.remove(id);
                        }
                        model.leases.push(ModelLease {
                            round,
                            block: hash,
                            ids,
                            parent: None,
                        });
                    }
                }
                // Observe a peer's (unlinked) block carrying pending ids;
                // the pending copies stay in the queue.
                2 => {
                    let mut ids: Vec<u64> = model.pending.iter().copied().collect();
                    ids.sort_unstable();
                    ids.truncate(usize::from(arg));
                    if !ids.is_empty() {
                        round += 1;
                        blocks += 1;
                        let hash = block_hash(blocks);
                        pool.observe_block(
                            hash,
                            Round(round),
                            ids.iter().map(|&id| req(id)).collect(),
                        );
                        model.leases.push(ModelLease {
                            round,
                            block: hash,
                            ids,
                            parent: None,
                        });
                    }
                }
                // Drain an *optimistic* own block extending a live lease's
                // still-uncertified block: provenance links it to the
                // parent, one round above it.
                3 => {
                    if !model.leases.is_empty() {
                        let (parent_block, parent_round) = {
                            let p = &model.leases[usize::from(arg) % model.leases.len()];
                            (p.block, p.round)
                        };
                        let ancestors: Vec<BlockHash> =
                            model.leases.iter().map(|l| l.block).collect();
                        let ctx = ProposalContext {
                            round: Round(parent_round + 1),
                            now: Time(round),
                            parent: parent_block,
                            ancestors,
                        };
                        let out = pool.drain_speculative(
                            usize::from(arg) + 1,
                            u64::MAX,
                            &ctx,
                            &BatchPolicy::EAGER,
                        );
                        if !out.is_empty() {
                            blocks += 1;
                            let hash = block_hash(blocks);
                            let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
                            pool.observe_linked(
                                hash,
                                Round(parent_round + 1),
                                parent_block,
                                out,
                            );
                            for id in &ids {
                                model.pending.remove(id);
                            }
                            model.leases.push(ModelLease {
                                round: parent_round + 1,
                                block: hash,
                                ids,
                                parent: Some(parent_block),
                            });
                        }
                    }
                }
                // Commit a live lease's block: winner's ids commit, the
                // eager conflict sweep and the round horizon release the
                // losers.
                4 => {
                    if !model.leases.is_empty() {
                        let idx = usize::from(arg) % model.leases.len();
                        let (block, r, ids) = {
                            let l = &model.leases[idx];
                            (l.block, l.round, l.ids.clone())
                        };
                        let requests: Vec<Request> =
                            ids.iter().map(|&id| req(id)).collect();
                        pool.mark_committed_block(block, Round(r), &requests);
                        model.commit(idx);
                    }
                }
                // Explicitly release (abandon) a live lease's block.
                _ => {
                    if !model.leases.is_empty() {
                        let idx = usize::from(arg) % model.leases.len();
                        let lease = model.leases.remove(idx);
                        pool.release(lease.block);
                        model.release_ids(lease);
                    }
                }
            }
            check_invariants(&pool, &model);
        }

        // Terminal sweep: committing every remaining lease accounts for
        // every id ever pushed exactly once.
        while !model.leases.is_empty() {
            let (block, r, ids) = {
                let l = &model.leases[0];
                (l.block, l.round, l.ids.clone())
            };
            let requests: Vec<Request> = ids.iter().map(|&id| req(id)).collect();
            pool.mark_committed_block(block, Round(r), &requests);
            model.commit(0);
            check_invariants(&pool, &model);
        }
        for id in 1..=model.pushed {
            prop_assert!(
                model.committed.contains(&id) || model.pending.contains(&id),
                "request {id} vanished by the end of the run"
            );
        }
    }
}
