//! Direct-drive unit tests of the ICC/Banyan engine: feed hand-crafted
//! events, assert the exact actions the pseudocode (Algorithms 1–2)
//! prescribes. No simulator involved.

use std::sync::Arc;

use banyan_core::chained::{ChainedEngine, PathMode};
use banyan_crypto::beacon::{Beacon, BeaconMode};
use banyan_crypto::hashsig::HashSig;
use banyan_crypto::registry::KeyRegistry;
use banyan_crypto::Signature;
use banyan_types::app::FixedSizeSource;
use banyan_types::block::Block;
use banyan_types::certs::{FinalKind, Finalization, Notarization};
use banyan_types::config::ProtocolConfig;
use banyan_types::engine::{Actions, Engine, Outbound, TimerKind};
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{ChainedMsg, Message};
use banyan_types::payload::Payload;
use banyan_types::time::{Duration, Time};
use banyan_types::vote::{Vote, VoteKind};

const N: usize = 4;
const CLUSTER_SEED: u64 = 77;

fn cfg() -> ProtocolConfig {
    ProtocolConfig::new(N, 1, 1)
        .unwrap()
        .with_delta(Duration::from_millis(100))
}

fn registry(i: u16) -> KeyRegistry {
    KeyRegistry::generate(Arc::new(HashSig), CLUSTER_SEED, N, i)
}

fn engine(i: u16, mode: PathMode) -> ChainedEngine {
    ChainedEngine::new(
        cfg(),
        mode,
        registry(i),
        Beacon::new(BeaconMode::RoundRobin, N),
        Box::new(FixedSizeSource::new(1_000, i)),
    )
}

/// Builds a signed block from replica `proposer` for `round`.
fn make_block(proposer: u16, round: u64, parent: BlockHash, seed: u64) -> (BlockHash, Block) {
    let beacon = Beacon::new(BeaconMode::RoundRobin, N);
    let reg = registry(proposer);
    let mut block = Block {
        round: Round(round),
        proposer: ReplicaId(proposer),
        rank: Rank(beacon.rank(round, proposer)),
        parent,
        proposed_at: Time(0),
        payload: Payload::synthetic(1_000, seed),
        signature: Signature::zero(),
    };
    let hash = block.hash(cfg().payload_chunk);
    block.signature = reg.sign(&Block::signing_message(&hash));
    (hash, block)
}

fn make_vote(voter: u16, kind: VoteKind, round: u64, block: BlockHash) -> Vote {
    let reg = registry(voter);
    let msg = Vote::signing_message(kind, Round(round), &block);
    Vote {
        kind,
        round: Round(round),
        block,
        voter: ReplicaId(voter),
        signature: reg.sign(&msg),
    }
}

fn proposal_msg(block: Block, fast_vote: Option<Vote>) -> Message {
    Message::Chained(ChainedMsg::Proposal {
        block,
        parent_notarization: None,
        parent_unlock: None,
        fast_vote,
    })
}

/// All broadcast messages in the actions.
fn broadcasts(actions: &Actions) -> Vec<&Message> {
    actions
        .outbound
        .iter()
        .filter_map(|o| match o {
            Outbound::Broadcast(m) => Some(m),
            Outbound::Send(..) => None,
        })
        .collect()
}

/// All votes of `kind` broadcast in the actions.
fn broadcast_votes(actions: &Actions, kind: VoteKind) -> Vec<Vote> {
    broadcasts(actions)
        .into_iter()
        .filter_map(|m| match m {
            Message::Chained(ChainedMsg::Votes(v)) => Some(v.clone()),
            _ => None,
        })
        .flatten()
        .filter(|v| v.kind == kind)
        .collect()
}

// ---------------------------------------------------------------------
// Proposal behavior
// ---------------------------------------------------------------------

#[test]
fn round1_leader_proposes_immediately_with_fast_vote() {
    // Replica 1 is the leader of round 1 (round-robin: leader(k) = k mod n).
    let mut e = engine(1, PathMode::Banyan);
    let actions = e.on_init(Time(0));
    // Propose timer at t0 + Δ_prop(0) = 0 — delivered as a timer request.
    let propose_timer = actions
        .timers
        .iter()
        .find(|t| matches!(t.kind, TimerKind::Propose { round: 1 }))
        .expect("propose timer armed");
    assert_eq!(propose_timer.at, Time(0), "leader proposes with zero delay");

    let actions = e.on_timer(TimerKind::Propose { round: 1 }, Time(0));
    let proposals: Vec<_> = broadcasts(&actions)
        .into_iter()
        .filter(|m| matches!(m, Message::Chained(ChainedMsg::Proposal { .. })))
        .collect();
    assert_eq!(proposals.len(), 1, "exactly one proposal broadcast");
    match proposals[0] {
        Message::Chained(ChainedMsg::Proposal {
            block,
            fast_vote,
            parent_notarization,
            ..
        }) => {
            assert_eq!(block.round, Round(1));
            assert_eq!(block.rank, Rank(0));
            assert_eq!(block.parent, BlockHash::ZERO, "round 1 extends genesis");
            assert!(
                parent_notarization.is_none(),
                "genesis parent has no certificate"
            );
            let fv = fast_vote
                .as_ref()
                .expect("Addition 2: rank-0 proposal carries fast vote");
            assert_eq!(fv.kind, VoteKind::Fast);
            assert_eq!(fv.voter, ReplicaId(1));
        }
        _ => unreachable!(),
    }
}

#[test]
fn icc_leader_proposal_has_no_fast_vote() {
    let mut e = engine(1, PathMode::IccOnly);
    e.on_init(Time(0));
    let actions = e.on_timer(TimerKind::Propose { round: 1 }, Time(0));
    for m in broadcasts(&actions) {
        if let Message::Chained(ChainedMsg::Proposal {
            fast_vote,
            parent_unlock,
            ..
        }) = m
        {
            assert!(fast_vote.is_none(), "ICC never sends fast votes");
            assert!(parent_unlock.is_none(), "ICC has no unlock proofs");
        }
    }
}

#[test]
fn non_leader_waits_proposal_delay() {
    // Replica 3 has rank 2 in round 1 (round-robin): Δ_prop = 2Δ·2 = 400 ms.
    let mut e = engine(3, PathMode::Banyan);
    let actions = e.on_init(Time(0));
    let t = actions
        .timers
        .iter()
        .find(|t| matches!(t.kind, TimerKind::Propose { round: 1 }))
        .expect("propose timer");
    assert_eq!(t.at, Time(Duration::from_millis(400).as_nanos()));
}

// ---------------------------------------------------------------------
// Voting behavior (Algorithm 1 lines 33–43)
// ---------------------------------------------------------------------

#[test]
fn first_notarization_vote_carries_fast_vote() {
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    let leader_fv = make_vote(1, VoteKind::Fast, 1, hash);
    let actions = e.on_message(
        ReplicaId(1),
        proposal_msg(block, Some(leader_fv)),
        Time(1000),
    );

    let notarize = broadcast_votes(&actions, VoteKind::Notarize);
    let fast = broadcast_votes(&actions, VoteKind::Fast);
    assert_eq!(
        notarize.len(),
        1,
        "one notarization vote for the leader block"
    );
    assert_eq!(notarize[0].block, hash);
    assert_eq!(
        fast.len(),
        1,
        "Addition 3: fast vote alongside the first notarization vote"
    );
    assert_eq!(fast[0].block, hash);
}

#[test]
fn icc_votes_without_fast_vote() {
    let mut e = engine(0, PathMode::IccOnly);
    e.on_init(Time(0));
    let (hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    let actions = e.on_message(ReplicaId(1), proposal_msg(block, None), Time(1000));
    assert_eq!(broadcast_votes(&actions, VoteKind::Notarize).len(), 1);
    assert!(broadcast_votes(&actions, VoteKind::Fast).is_empty());
    let _ = hash;
}

#[test]
fn rank0_block_without_leader_fast_vote_is_invalid_in_banyan() {
    // Algorithm 2 line 63: rank-0 validity requires the proposer's fast
    // vote. Without it, no notarization vote is cast.
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (_hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    let actions = e.on_message(ReplicaId(1), proposal_msg(block, None), Time(1000));
    assert!(broadcast_votes(&actions, VoteKind::Notarize).is_empty());
}

#[test]
fn wrong_rank_proposal_rejected() {
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    // Replica 2 claims rank 0 in round 1, but its true rank is 1.
    let (hash, mut block) = make_block(2, 1, BlockHash::ZERO, 1);
    block.rank = Rank(0);
    let fv = make_vote(2, VoteKind::Fast, 1, hash);
    let actions = e.on_message(ReplicaId(2), proposal_msg(block, Some(fv)), Time(1000));
    assert!(broadcast_votes(&actions, VoteKind::Notarize).is_empty());
}

#[test]
fn tampered_block_signature_rejected() {
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (hash, mut block) = make_block(1, 1, BlockHash::ZERO, 1);
    block.signature.0[0] ^= 0xFF;
    let fv = make_vote(1, VoteKind::Fast, 1, hash);
    let actions = e.on_message(ReplicaId(1), proposal_msg(block, Some(fv)), Time(1000));
    assert!(broadcast_votes(&actions, VoteKind::Notarize).is_empty());
}

#[test]
fn higher_rank_block_voted_only_after_notarization_delay() {
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    // Rank-1 proposal (from replica 2) arrives immediately; Δ_notary(1) =
    // 200 ms, so no vote yet — a timer is armed instead.
    let (hash, block) = make_block(2, 1, BlockHash::ZERO, 1);
    let actions = e.on_message(ReplicaId(2), proposal_msg(block, None), Time(1000));
    assert!(broadcast_votes(&actions, VoteKind::Notarize).is_empty());
    let timer = actions
        .timers
        .iter()
        .find(|t| matches!(t.kind, TimerKind::NotarizeRank { round: 1, rank: 1 }))
        .expect("notarize-delay timer armed");
    assert_eq!(timer.at, Time(Duration::from_millis(200).as_nanos()));

    // When the timer fires, the vote goes out.
    let actions = e.on_timer(TimerKind::NotarizeRank { round: 1, rank: 1 }, timer.at);
    let votes = broadcast_votes(&actions, VoteKind::Notarize);
    assert_eq!(votes.len(), 1);
    assert_eq!(votes[0].block, hash);
}

// ---------------------------------------------------------------------
// Notarization, advancement, finalization votes (Algorithm 2)
// ---------------------------------------------------------------------

/// Drives replica 0 through: leader proposal + remote votes → notarized →
/// advance. Returns the actions of the final step.
fn drive_to_advance(e: &mut ChainedEngine, fast_votes_from: &[u16]) -> (BlockHash, Actions) {
    e.on_init(Time(0));
    let (hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    let leader_fv = make_vote(1, VoteKind::Fast, 1, hash);
    e.on_message(
        ReplicaId(1),
        proposal_msg(block, Some(leader_fv)),
        Time(1000),
    );
    // Remote notarization votes (quorum is 3 incl. our own).
    let mut last = Actions::none();
    for &v in fast_votes_from {
        let mut bundle = vec![make_vote(v, VoteKind::Notarize, 1, hash)];
        if e.mode() == PathMode::Banyan {
            bundle.push(make_vote(v, VoteKind::Fast, 1, hash));
        }
        last = e.on_message(
            ReplicaId(v),
            Message::Chained(ChainedMsg::Votes(bundle)),
            Time(2000),
        );
    }
    (hash, last)
}

#[test]
fn quorum_notarizes_advances_and_sends_finalization_vote() {
    // Use n = 7 (f = 2, p = 1): notarization quorum 5, unlock threshold
    // > 3, fast quorum 6. Five votes notarize + unlock the block without
    // FP-finalizing it, so the Advance broadcast (Addition 1) is
    // observable. (At n = 4 the fast quorum coincides with the unlock
    // threshold, so FP-finalization always preempts the Advance message —
    // the paper's §9.3 "fast path fires with the same conditions as
    // regular notarization" observation.)
    const N7: usize = 7;
    let cfg7 = ProtocolConfig::new(N7, 2, 1)
        .unwrap()
        .with_delta(Duration::from_millis(100));
    let reg7 = |i: u16| KeyRegistry::generate(Arc::new(HashSig), CLUSTER_SEED, N7, i);
    let beacon7 = Beacon::new(BeaconMode::RoundRobin, N7);
    let mut e = ChainedEngine::new(
        cfg7.clone(),
        PathMode::Banyan,
        reg7(0),
        beacon7.clone(),
        Box::new(FixedSizeSource::new(1_000, 0)),
    );
    e.on_init(Time(0));

    // Leader (replica 1) proposal with its fast vote.
    let mut block = Block {
        round: Round(1),
        proposer: ReplicaId(1),
        rank: Rank(0),
        parent: BlockHash::ZERO,
        proposed_at: Time(0),
        payload: Payload::synthetic(1_000, 1),
        signature: Signature::zero(),
    };
    let hash = block.hash(cfg7.payload_chunk);
    block.signature = reg7(1).sign(&Block::signing_message(&hash));
    let mk_vote = |voter: u16, kind: VoteKind| -> Vote {
        let msg = Vote::signing_message(kind, Round(1), &hash);
        Vote {
            kind,
            round: Round(1),
            block: hash,
            voter: ReplicaId(voter),
            signature: reg7(voter).sign(&msg),
        }
    };
    e.on_message(
        ReplicaId(1),
        proposal_msg(block, Some(mk_vote(1, VoteKind::Fast))),
        Time(1000),
    );

    // Votes from replicas 1..=4: with our own that is 5 notarize votes
    // (= quorum) and 5 fast votes (> threshold 3, < fast quorum 6).
    let mut last = Actions::none();
    for v in 1u16..=4 {
        last = e.on_message(
            ReplicaId(v),
            Message::Chained(ChainedMsg::Votes(vec![
                mk_vote(v, VoteKind::Notarize),
                mk_vote(v, VoteKind::Fast),
            ])),
            Time(2000),
        );
    }
    let advance = broadcasts(&last)
        .into_iter()
        .find_map(|m| match m {
            Message::Chained(ChainedMsg::Advance {
                notarization,
                unlock,
            }) => Some((notarization.clone(), unlock.clone())),
            _ => None,
        })
        .expect("Advance broadcast on round change");
    assert_eq!(advance.0.block, hash);
    assert!(advance.0.vote_count() >= 5);
    let unlock = advance.1.expect("Banyan advance carries an unlock proof");
    assert_eq!(unlock.round, Round(1));
    assert!(
        unlock.total_votes() >= 4,
        "unlock proof attests > f + p = 3 votes"
    );
    // Finalization vote sent (N ⊆ {b}).
    let fin = broadcast_votes(&last, VoteKind::Finalize);
    assert_eq!(fin.len(), 1);
    assert_eq!(fin[0].block, hash);
    // Round advanced but nothing finalized yet (no FP, no slow quorum).
    assert_eq!(e.current_round(), Round(2));
    assert_eq!(e.finalized_round(), Round::GENESIS);
}

#[test]
fn fast_quorum_fp_finalizes_rank0_block() {
    let mut e = engine(0, PathMode::Banyan);
    // Fast votes from leader(1), 2: with our own that is 3 = n − p.
    let (hash, actions) = drive_to_advance(&mut e, &[1, 2]);
    // A fast finalization must have been broadcast and committed.
    let fast_final = broadcasts(&actions)
        .into_iter()
        .find_map(|m| match m {
            Message::Chained(ChainedMsg::Final(f)) if f.kind == FinalKind::Fast => Some(f.clone()),
            _ => None,
        })
        .expect("fast finalization broadcast");
    assert_eq!(fast_final.block, hash);
    assert!(fast_final.vote_count() >= 3);
    let commits = &actions.commits;
    assert_eq!(commits.len(), 1);
    assert_eq!(commits[0].block, hash);
    assert!(commits[0].fast);
    assert!(commits[0].explicit);
    assert_eq!(e.finalized_round(), Round(1));
}

#[test]
fn icc_advances_but_does_not_fast_finalize() {
    let mut e = engine(0, PathMode::IccOnly);
    let (_hash, actions) = drive_to_advance(&mut e, &[1, 2]);
    assert_eq!(e.current_round(), Round(2));
    // No commit yet: ICC needs finalization votes (3δ path).
    assert!(actions.commits.is_empty());
    // Now deliver two finalization votes (ours was broadcast at advance).
    let (hash, _) = make_block(1, 1, BlockHash::ZERO, 1);
    let mut commits = Vec::new();
    for v in [1u16, 2] {
        let a = e.on_message(
            ReplicaId(v),
            Message::Chained(ChainedMsg::Votes(vec![make_vote(
                v,
                VoteKind::Finalize,
                1,
                hash,
            )])),
            Time(3000),
        );
        commits.extend(a.commits);
    }
    assert_eq!(commits.len(), 1);
    assert!(!commits[0].fast);
    assert_eq!(commits[0].block, hash);
}

#[test]
fn finalization_vote_withheld_after_voting_two_blocks() {
    // Feed two equivocating rank-0 proposals; the replica votes for both
    // (line 33 allows it) and must then withhold its finalization vote
    // (N ⊄ {b}).
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (h_a, block_a) = make_block(1, 1, BlockHash::ZERO, 1);
    let (h_b, block_b) = make_block(1, 1, BlockHash::ZERO, 2);
    assert_ne!(h_a, h_b);
    let fv_a = make_vote(1, VoteKind::Fast, 1, h_a);
    let fv_b = make_vote(1, VoteKind::Fast, 1, h_b);
    e.on_message(ReplicaId(1), proposal_msg(block_a, Some(fv_a)), Time(1000));
    e.on_message(ReplicaId(1), proposal_msg(block_b, Some(fv_b)), Time(1100));

    // Quorum for block A from replicas 2 and 3.
    let mut all_fin_votes = Vec::new();
    for v in [2u16, 3] {
        let a = e.on_message(
            ReplicaId(v),
            Message::Chained(ChainedMsg::Votes(vec![
                make_vote(v, VoteKind::Notarize, 1, h_a),
                make_vote(v, VoteKind::Fast, 1, h_a),
            ])),
            Time(2000),
        );
        all_fin_votes.extend(broadcast_votes(&a, VoteKind::Finalize));
    }
    assert_eq!(
        e.current_round(),
        Round(2),
        "round advanced on notarized+unlocked A"
    );
    assert!(
        all_fin_votes.is_empty(),
        "finalization vote must be withheld after voting two blocks (line 51)"
    );
}

#[test]
fn invalid_fast_finalization_certificates_rejected() {
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    let fv = make_vote(1, VoteKind::Fast, 1, hash);
    e.on_message(ReplicaId(1), proposal_msg(block, Some(fv)), Time(1000));

    // Build a fast cert with only 2 < n − p = 3 votes.
    let table = registry(0).table().clone();
    let votes: Vec<(u16, Signature)> = [1u16, 2]
        .iter()
        .map(|&v| (v, make_vote(v, VoteKind::Fast, 1, hash).signature))
        .collect();
    let weak = Finalization {
        round: Round(1),
        block: hash,
        kind: FinalKind::Fast,
        agg: table.aggregate(&votes),
    };
    let actions = e.on_message(
        ReplicaId(2),
        Message::Chained(ChainedMsg::Final(weak)),
        Time(2000),
    );
    assert!(
        actions.commits.is_empty(),
        "under-quorum certificate must be ignored"
    );
    assert_eq!(e.finalized_round(), Round::GENESIS);

    // A forged full-size cert (bad signatures) is also rejected.
    let forged_votes: Vec<(u16, Signature)> =
        (1u16..4).map(|v| (v, Signature([v as u8; 64]))).collect();
    let forged = Finalization {
        round: Round(1),
        block: hash,
        kind: FinalKind::Fast,
        agg: table.aggregate(&forged_votes),
    };
    let actions = e.on_message(
        ReplicaId(2),
        Message::Chained(ChainedMsg::Final(forged)),
        Time(2000),
    );
    assert!(actions.commits.is_empty());
}

#[test]
fn below_quorum_notarization_certificates_rejected() {
    // An aggregate over zero signers verifies trivially under every
    // scheme (the combined proof of nothing is vacuously consistent), so
    // the popcount gate must fire *before* `verify_aggregate` ever runs.
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    e.on_message(ReplicaId(1), proposal_msg(block, None), Time(1000));

    let table = registry(0).table().clone();
    let empty = table.aggregate(&[]);
    let msg = Vote::signing_message(VoteKind::Notarize, Round(1), &hash);
    assert!(
        table.verify_aggregate(&msg, &empty),
        "footgun precondition: an empty aggregate verifies trivially"
    );
    e.on_message(
        ReplicaId(2),
        Message::Chained(ChainedMsg::Advance {
            notarization: Notarization {
                round: Round(1),
                block: hash,
                agg: empty,
                fast_agg: None,
            },
            unlock: None,
        }),
        Time(2000),
    );
    assert!(
        !e.store().is_notarized(&hash),
        "empty-aggregate notarization must be ignored"
    );

    // Below quorum (2 < n − f = 3) with genuine signatures: still rejected.
    let votes: Vec<(u16, Signature)> = [1u16, 2]
        .iter()
        .map(|&v| (v, make_vote(v, VoteKind::Notarize, 1, hash).signature))
        .collect();
    e.on_message(
        ReplicaId(2),
        Message::Chained(ChainedMsg::Advance {
            notarization: Notarization {
                round: Round(1),
                block: hash,
                agg: table.aggregate(&votes),
                fast_agg: None,
            },
            unlock: None,
        }),
        Time(2000),
    );
    assert!(
        !e.store().is_notarized(&hash),
        "below-quorum notarization must be ignored"
    );
}

#[test]
fn empty_aggregate_finalization_rejected() {
    // Same footgun at the finalization boundary: an empty certificate
    // must never commit a block, on either the slow or the fast path.
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let (hash, block) = make_block(1, 1, BlockHash::ZERO, 1);
    let fv = make_vote(1, VoteKind::Fast, 1, hash);
    e.on_message(ReplicaId(1), proposal_msg(block, Some(fv)), Time(1000));

    let table = registry(0).table().clone();
    for kind in [FinalKind::Slow, FinalKind::Fast] {
        let hollow = Finalization {
            round: Round(1),
            block: hash,
            kind,
            agg: table.aggregate(&[]),
        };
        let actions = e.on_message(
            ReplicaId(2),
            Message::Chained(ChainedMsg::Final(hollow)),
            Time(2000),
        );
        assert!(
            actions.commits.is_empty(),
            "empty-aggregate {kind:?} finalization must be ignored"
        );
    }
    assert_eq!(e.finalized_round(), Round::GENESIS);
}

#[test]
fn valid_fast_certificate_finalizes_block_and_ancestors() {
    let mut e = engine(3, PathMode::Banyan);
    e.on_init(Time(0));
    // Round 1 block, never voted on by us (simulates being behind).
    let (h1, b1) = make_block(1, 1, BlockHash::ZERO, 1);
    let fv1 = make_vote(1, VoteKind::Fast, 1, h1);
    e.on_message(
        ReplicaId(1),
        proposal_msg(b1.clone(), Some(fv1)),
        Time(1000),
    );
    let table = registry(0).table().clone();
    let votes: Vec<(u16, Signature)> = [0u16, 1, 2]
        .iter()
        .map(|&v| (v, make_vote(v, VoteKind::Fast, 1, h1).signature))
        .collect();
    let cert = Finalization {
        round: Round(1),
        block: h1,
        kind: FinalKind::Fast,
        agg: table.aggregate(&votes),
    };
    let actions = e.on_message(
        ReplicaId(0),
        Message::Chained(ChainedMsg::Final(cert)),
        Time(2000),
    );
    assert_eq!(actions.commits.len(), 1);
    assert_eq!(actions.commits[0].block, h1);
    assert_eq!(e.finalized_round(), Round(1));
    // And the engine has moved past round 1.
    assert!(e.current_round() >= Round(2));
}

#[test]
fn stale_timers_are_ignored() {
    let mut e = engine(0, PathMode::Banyan);
    let (_, _) = drive_to_advance(&mut e, &[1, 2]);
    assert_eq!(e.current_round(), Round(2));
    // A stale round-1 propose timer must not produce a proposal.
    let actions = e.on_timer(TimerKind::Propose { round: 1 }, Time(5000));
    let proposals = broadcasts(&actions)
        .into_iter()
        .filter(|m| matches!(m, Message::Chained(ChainedMsg::Proposal { .. })))
        .count();
    assert_eq!(proposals, 0);
}

#[test]
fn foreign_protocol_messages_are_ignored() {
    let mut e = engine(0, PathMode::Banyan);
    e.on_init(Time(0));
    let actions = e.on_message(
        ReplicaId(1),
        Message::HotStuff(banyan_types::message::HotStuffMsg::NewView {
            view: 3,
            justify: banyan_types::certs::QuorumCert::genesis(),
        }),
        Time(1000),
    );
    assert!(actions.is_empty());
}

#[test]
fn sync_request_served_with_block() {
    let mut e = engine(1, PathMode::Banyan);
    e.on_init(Time(0));
    e.on_timer(TimerKind::Propose { round: 1 }, Time(0)); // own proposal stored
                                                          // Find our own block hash via a second engine processing the proposal.
    let (hash, _) = {
        let mut probe = engine(0, PathMode::Banyan);
        probe.on_init(Time(0));
        // Rebuild the proposal deterministically: ask the leader to serve
        // any block of round 1 — easier: request with the real hash by
        // recomputing it is awkward here, so drive the sync path directly
        // on a hash we know the engine has. Use its store.
        let h = *e
            .store()
            .round_blocks(Round(1))
            .first()
            .expect("own block stored");
        (h, probe)
    };
    let actions = e.on_message(
        ReplicaId(0),
        Message::Sync(banyan_types::message::SyncMsg::Request { hash }),
        Time(1000),
    );
    let served = actions.outbound.iter().any(|o| {
        matches!(o, Outbound::Send(ReplicaId(0), Message::Chained(ChainedMsg::Proposal { block, .. }))
            if block.round == Round(1))
    });
    assert!(served, "sync request must be answered with the block");
}
