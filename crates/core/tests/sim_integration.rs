//! End-to-end simulation tests: every engine, driven by `banyan-simnet`,
//! must finalize blocks, agree across replicas, and exhibit the paper's
//! headline property — Banyan finalizing in ~2δ vs ICC's ~3δ.

use banyan_core::builder::ClusterBuilder;
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

/// Runs `protocol` on a uniform-δ topology and returns the mean proposer
/// latency in ms plus the simulation for further checks.
fn run_uniform(
    protocol: &str,
    n: usize,
    f: usize,
    p: usize,
    one_way_ms: u64,
    run_secs: u64,
    seed: u64,
) -> Simulation {
    let topo = Topology::uniform(n, Duration::from_millis(one_way_ms));
    let delta = Duration::from_millis(one_way_ms * 3 / 2); // Δ > δ (§9.2)
    let engines = ClusterBuilder::new(n, f, p)
        .unwrap()
        .delta(delta)
        .payload_size(1_000) // small payloads: isolate propagation delay
        .build(protocol);
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(seed));
    sim.run_until(secs(run_secs));
    sim
}

#[test]
fn banyan_finalizes_and_agrees() {
    let sim = run_uniform("banyan", 4, 1, 1, 10, 5, 1);
    let m = sim.metrics();
    assert!(
        sim.auditor().is_safe(),
        "violations: {:?}",
        sim.auditor().violations()
    );
    let stats = m.proposer_latency_stats();
    assert!(
        stats.count > 20,
        "expected steady commits, got {}",
        stats.count
    );
    assert!(sim.auditor().committed_rounds() > 20);
}

#[test]
fn icc_finalizes_and_agrees() {
    let sim = run_uniform("icc", 4, 1, 1, 10, 5, 1);
    assert!(sim.auditor().is_safe());
    let stats = sim.metrics().proposer_latency_stats();
    assert!(
        stats.count > 20,
        "expected steady commits, got {}",
        stats.count
    );
}

#[test]
fn hotstuff_finalizes_and_agrees() {
    let sim = run_uniform("hotstuff", 4, 1, 1, 10, 5, 1);
    assert!(sim.auditor().is_safe());
    let stats = sim.metrics().proposer_latency_stats();
    assert!(
        stats.count > 10,
        "expected steady commits, got {}",
        stats.count
    );
}

#[test]
fn streamlet_finalizes_and_agrees() {
    let sim = run_uniform("streamlet", 4, 1, 1, 10, 5, 1);
    assert!(sim.auditor().is_safe());
    let stats = sim.metrics().proposer_latency_stats();
    assert!(
        stats.count > 5,
        "expected steady commits, got {}",
        stats.count
    );
}

/// The headline result (Fig. 1): with a uniform one-way delay δ and
/// negligible payload, Banyan FP-finalizes in ≈ 2δ while ICC needs ≈ 3δ.
#[test]
fn banyan_two_steps_icc_three_steps() {
    let one_way = 50u64; // ms
    let banyan = run_uniform("banyan", 4, 1, 1, one_way, 20, 7);
    let icc = run_uniform("icc", 4, 1, 1, one_way, 20, 7);

    let b = banyan.metrics().proposer_latency_stats();
    let i = icc.metrics().proposer_latency_stats();
    assert!(
        b.count > 30 && i.count > 30,
        "banyan {} icc {}",
        b.count,
        i.count
    );

    // Banyan ≈ 2δ = 100 ms (allow jitter + tx time).
    assert!(
        (95.0..130.0).contains(&b.mean_ms),
        "banyan mean {:.1} ms, expected ≈ 2δ = 100 ms",
        b.mean_ms
    );
    // ICC ≈ 3δ = 150 ms.
    assert!(
        (145.0..185.0).contains(&i.mean_ms),
        "icc mean {:.1} ms, expected ≈ 3δ = 150 ms",
        i.mean_ms
    );
    // All Banyan explicit commits should be fast-path here.
    let share = banyan.metrics().fast_path_share(ReplicaId(0));
    assert!(share > 0.9, "fast-path share {share}");
}

/// With every replica honest and synchronous, the fast path fires every
/// round at every replica; ICC never uses it.
#[test]
fn fast_path_share_is_zero_for_icc() {
    let icc = run_uniform("icc", 4, 1, 1, 10, 5, 3);
    assert_eq!(icc.metrics().fast_path_share(ReplicaId(2)), 0.0);
}

/// Determinism: identical seeds ⇒ identical commit streams.
#[test]
fn same_seed_reproduces_run_exactly() {
    let a = run_uniform("banyan", 4, 1, 1, 10, 3, 99);
    let b = run_uniform("banyan", 4, 1, 1, 10, 3, 99);
    let key = |sim: &Simulation| {
        sim.metrics()
            .commits
            .iter()
            .map(|c| {
                (
                    c.replica.0,
                    c.entry.round.0,
                    c.entry.block,
                    c.entry.committed_at.0,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
}

/// Larger cluster: the paper's n = 19, f = 6, p = 1 scenario on the
/// 4-datacenter WAN topology.
#[test]
fn nineteen_replicas_four_datacenters() {
    let topo = Topology::four_global_19();
    let delta = topo.max_one_way() + Duration::from_millis(10);
    let engines = ClusterBuilder::new(19, 6, 1)
        .unwrap()
        .delta(delta)
        .payload_size(10_000)
        .build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(5));
    sim.run_until(secs(20));
    assert!(
        sim.auditor().is_safe(),
        "violations: {:?}",
        sim.auditor().violations()
    );
    let stats = sim.metrics().proposer_latency_stats();
    assert!(stats.count > 20, "commits: {}", stats.count);
    assert!(stats.mean_ms > 0.0);
}

/// Crash faults (§9.4): with up to f crashed replicas, both ICC and Banyan
/// stay live (chain keeps growing) and safe.
#[test]
fn liveness_under_crashes() {
    for protocol in ["banyan", "icc"] {
        let topo = Topology::uniform(4, Duration::from_millis(10));
        let engines = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(Duration::from_millis(20))
            .payload_size(100)
            .build(protocol);
        // Crash replica 3 at t = 1 s (it will be leader periodically).
        let faults = FaultPlan::none().crash(ReplicaId(3), secs(1));
        let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(11));
        sim.run_until(secs(10));
        assert!(sim.auditor().is_safe(), "{protocol}: unsafe");
        // Progress continued well past the crash.
        let max_round = sim.metrics().max_committed_round().unwrap();
        assert!(
            max_round.0 > 50,
            "{protocol}: expected continued progress, max round {max_round}"
        );
    }
}

/// Crash-and-rejoin (`Fault::Restart`): a replica torn down mid-run is
/// rebuilt from its durable snapshot, catches up over driver-driven
/// ranged sync, and commits new blocks — for every engine. The crash
/// drops the engine to a tombstone (volatile state gone), so the
/// snapshot-restore path is the only way back.
#[test]
fn restart_recovers_and_commits_for_every_engine() {
    for protocol in ["banyan", "icc", "hotstuff", "streamlet"] {
        let topo = Topology::uniform(4, Duration::from_millis(10));
        let builder = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(Duration::from_millis(20))
            .payload_size(100);
        let engines = builder.build(protocol);
        let faults = FaultPlan::none().restart(ReplicaId(2), secs(2), secs(4));
        let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(13));
        let rebuild = builder.clone();
        let proto = protocol.to_string();
        sim.set_restart_builder(Box::new(move |replica, snapshot| {
            let mut engine = rebuild.build_replica(&proto, replica.0);
            engine.restore(snapshot);
            engine
        }));
        sim.run_until(secs(10));
        assert!(sim.auditor().is_safe(), "{protocol}: unsafe across restart");
        let m = sim.metrics();
        assert!(m.sync_requests > 0, "{protocol}: catch-up never probed");
        assert!(
            m.restart_recovery_ms > 0,
            "{protocol}: recovery never completed"
        );
        // The replica was genuinely down …
        assert!(
            !m.commits.iter().any(|c| {
                c.replica == ReplicaId(2)
                    && c.entry.committed_at > secs(2)
                    && c.entry.committed_at < secs(4)
            }),
            "{protocol}: tombstone replica committed while crashed"
        );
        // … and commits again after rejoining.
        assert!(
            m.commits
                .iter()
                .any(|c| c.replica == ReplicaId(2) && c.entry.committed_at > secs(4)),
            "{protocol}: replica 2 never committed after rejoining"
        );
    }
}

/// Restart runs replay bit-for-bit from the same seed — the event
/// pipeline (crash, snapshot, rebuild, catch-up) is fully deterministic.
#[test]
fn restart_run_is_deterministic() {
    let run = || {
        let topo = Topology::uniform(4, Duration::from_millis(10));
        let builder = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(Duration::from_millis(20))
            .payload_size(100);
        let engines = builder.build("banyan");
        let faults = FaultPlan::none().restart(ReplicaId(1), secs(1), secs(3));
        let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(23));
        let rebuild = builder.clone();
        sim.set_restart_builder(Box::new(move |replica, snapshot| {
            let mut engine = rebuild.build_replica("banyan", replica.0);
            engine.restore(snapshot);
            engine
        }));
        sim.run_until(secs(6));
        sim.metrics()
            .commits
            .iter()
            .map(|c| {
                (
                    c.replica.0,
                    c.entry.round.0,
                    c.entry.block,
                    c.entry.committed_at.0,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Without a restart builder a `Fault::Restart` replica stays down after
/// `rejoin_at` — restart-from-durable-state is the only recovery path.
#[test]
fn restart_without_builder_stays_down() {
    let topo = Topology::uniform(4, Duration::from_millis(10));
    let engines = ClusterBuilder::new(4, 1, 1)
        .unwrap()
        .delta(Duration::from_millis(20))
        .payload_size(100)
        .build("banyan");
    let faults = FaultPlan::none().restart(ReplicaId(2), secs(2), secs(3));
    let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(17));
    sim.run_until(secs(8));
    assert!(sim.auditor().is_safe());
    assert!(
        !sim.metrics()
            .commits
            .iter()
            .any(|c| c.replica == ReplicaId(2) && c.entry.committed_at > secs(2)),
        "replica committed after crash despite having no rebuild path"
    );
}

/// Under a crashed replica, Banyan's performance degrades to exactly ICC's
/// behavior (Fig. 6d: "when there are failures, the performance of Banyan
/// is exactly the one of ICC") — here we check the weaker, robust claim
/// that committed-round counts are close.
#[test]
fn banyan_degrades_to_icc_under_crash() {
    let run = |protocol: &str| -> usize {
        let topo = Topology::uniform(4, Duration::from_millis(10));
        let engines = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(Duration::from_millis(20))
            .payload_size(100)
            .build(protocol);
        let faults = FaultPlan::none().crash(ReplicaId(0), Time::ZERO);
        let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(2));
        sim.run_until(secs(10));
        assert!(sim.auditor().is_safe());
        sim.auditor().committed_rounds()
    };
    let banyan = run("banyan");
    let icc = run("icc");
    let ratio = banyan as f64 / icc as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "banyan {banyan} rounds vs icc {icc} rounds"
    );
}
