//! Direct-drive unit tests for the HotStuff and Streamlet baseline
//! engines: commit rules, vote routing, pacemaker/epoch behavior.

use std::sync::Arc;

use banyan_core::hotstuff::HotStuffEngine;
use banyan_core::streamlet::StreamletEngine;
use banyan_crypto::beacon::{Beacon, BeaconMode};
use banyan_crypto::hashsig::HashSig;
use banyan_crypto::registry::KeyRegistry;
use banyan_types::app::FixedSizeSource;
use banyan_types::config::ProtocolConfig;
use banyan_types::engine::{Actions, Engine, Outbound, TimerKind};
use banyan_types::ids::{ReplicaId, Round};
use banyan_types::message::{HotStuffMsg, Message, StreamletMsg};
use banyan_types::time::{Duration, Time};

const N: usize = 4;
const SEED: u64 = 55;

fn registry(i: u16) -> KeyRegistry {
    KeyRegistry::generate(Arc::new(HashSig), SEED, N, i)
}

fn hotstuff(i: u16) -> HotStuffEngine {
    HotStuffEngine::new(
        ProtocolConfig::new(N, 1, 1).unwrap(),
        registry(i),
        Beacon::new(BeaconMode::RoundRobin, N),
        Box::new(FixedSizeSource::new(100, i)),
        Duration::from_secs(1),
    )
}

fn streamlet(i: u16) -> StreamletEngine {
    StreamletEngine::new(
        ProtocolConfig::new(N, 1, 1).unwrap(),
        registry(i),
        Beacon::new(BeaconMode::RoundRobin, N),
        Box::new(FixedSizeSource::new(100, i)),
        Duration::from_millis(200),
    )
}

/// Routes every outbound action of `from` into the other engines,
/// breadth-first, until quiescent or until any engine passes
/// `stop_round` (instant delivery lets pipelined protocols run forever).
/// Returns all commits produced.
fn settle(
    engines: &mut [Box<dyn Engine>],
    initial: Vec<(usize, Actions)>,
    now: Time,
    stop_round: u64,
) -> Vec<(usize, banyan_types::engine::CommitEntry)> {
    let mut commits = Vec::new();
    // FIFO so delivery (and therefore commit collection) stays in
    // generation order.
    let mut queue: std::collections::VecDeque<(usize, Actions)> = initial.into();
    while let Some((from, actions)) = queue.pop_front() {
        for c in actions.commits {
            commits.push((from, c));
        }
        if engines.iter().any(|e| e.current_round().0 > stop_round) {
            continue; // drain remaining actions without routing further
        }
        for out in actions.outbound {
            match out {
                Outbound::Broadcast(msg) => {
                    for (i, e) in engines.iter_mut().enumerate() {
                        if i != from {
                            let a = e.on_message(ReplicaId(from as u16), msg.clone(), now);
                            queue.push_back((i, a));
                        }
                    }
                }
                Outbound::Send(to, msg) => {
                    let a = engines[to.as_usize()].on_message(ReplicaId(from as u16), msg, now);
                    queue.push_back((to.as_usize(), a));
                }
            }
        }
    }
    commits
}

// ---------------------------------------------------------------------
// HotStuff
// ---------------------------------------------------------------------

#[test]
fn hotstuff_three_chain_commits_first_block() {
    let mut engines: Vec<Box<dyn Engine>> = (0..N as u16)
        .map(|i| Box::new(hotstuff(i)) as Box<dyn Engine>)
        .collect();
    let mut initial = Vec::new();
    for (i, e) in engines.iter_mut().enumerate() {
        initial.push((i, e.on_init(Time(0))));
    }
    let commits = settle(&mut engines, initial, Time(0), 12);
    // With instant delivery the pipeline commits several views: block of
    // view v commits once views v+1, v+2 certify on top (3-chain).
    assert!(!commits.is_empty(), "3-chain never committed");
    // Every replica commits view 1 first.
    let mut per_replica: std::collections::HashMap<usize, Vec<u64>> = Default::default();
    for (replica, c) in &commits {
        per_replica.entry(*replica).or_default().push(c.round.0);
    }
    for (replica, rounds) in per_replica {
        assert_eq!(rounds[0], 1, "replica {replica} must commit view 1 first");
        // Commit order is monotone.
        let mut sorted = rounds.clone();
        sorted.sort_unstable();
        assert_eq!(rounds, sorted, "replica {replica} committed out of order");
    }
}

#[test]
fn hotstuff_view_timeout_advances_pacemaker() {
    let mut e = hotstuff(0);
    e.on_init(Time(0));
    assert_eq!(e.current_round(), Round(1));
    // Nothing happens; the view-1 timeout fires.
    let actions = e.on_timer(TimerKind::ViewTimeout { view: 1 }, Time(1_000_000_000));
    // We are not the leader of view 2 (leader(2) = replica 1): a NewView
    // must be sent to it.
    let new_view_sent = actions.outbound.iter().any(|o| {
        matches!(
            o,
            Outbound::Send(
                ReplicaId(1),
                Message::HotStuff(HotStuffMsg::NewView { view: 1, .. })
            )
        )
    });
    assert!(new_view_sent, "pacemaker must inform the next leader");
    assert_eq!(e.current_round(), Round(2), "view advanced on timeout");
    // Stale timeout for view 1 is ignored now.
    let actions = e.on_timer(TimerKind::ViewTimeout { view: 1 }, Time(2_000_000_000));
    assert!(actions.outbound.is_empty());
}

#[test]
fn hotstuff_rejects_hollow_and_below_quorum_qcs() {
    // A QC whose aggregate is empty verifies trivially under every
    // signature scheme, so `verify_qc` must gate on popcount before the
    // cryptographic check. Genesis is the only legitimate hollow QC.
    let mut e = hotstuff(3);
    e.on_init(Time(0));
    let table = registry(0).table().clone();

    // A view-1 block we never received; its hash anchors the forged QCs.
    let reg0 = registry(0);
    let mut parent = banyan_types::Block {
        round: Round(1),
        proposer: ReplicaId(0),
        rank: banyan_types::Rank(0),
        parent: banyan_types::ids::BlockHash::ZERO,
        proposed_at: Time(0),
        payload: banyan_types::Payload::synthetic(100, 1),
        signature: banyan_crypto::Signature::zero(),
    };
    let parent_hash = parent.hash(64 * 1024);
    parent.signature = reg0.sign(&banyan_types::Block::signing_message(&parent_hash));

    // View-2 proposal from the legitimate leader (leader(2) = replica 1),
    // justified by a QC over the parent.
    let reg1 = registry(1);
    let proposal = |justify: banyan_types::certs::QuorumCert| {
        let mut block = banyan_types::Block {
            round: Round(2),
            proposer: ReplicaId(1),
            rank: banyan_types::Rank(0),
            parent: parent_hash,
            proposed_at: Time(0),
            payload: banyan_types::Payload::synthetic(100, 2),
            signature: banyan_crypto::Signature::zero(),
        };
        let hash = block.hash(64 * 1024);
        block.signature = reg1.sign(&banyan_types::Block::signing_message(&hash));
        Message::HotStuff(HotStuffMsg::Proposal { block, justify })
    };

    // Hollow QC: non-genesis, zero signers.
    let hollow = banyan_types::certs::QuorumCert {
        view: 1,
        block: parent_hash,
        agg: table.aggregate(&[]),
    };
    let vote_msg = banyan_types::certs::QuorumCert::signing_message(1, &parent_hash);
    assert!(
        table.verify_aggregate(&vote_msg, &hollow.agg),
        "footgun precondition: the empty aggregate verifies trivially"
    );
    let actions = e.on_message(ReplicaId(1), proposal(hollow), Time(1000));
    assert!(
        actions.outbound.is_empty(),
        "hollow QC must not attract a vote"
    );
    assert_eq!(
        e.current_round(),
        Round(1),
        "hollow QC must not advance the view"
    );

    // Below quorum (2 < n − f = 3) with genuine vote signatures.
    let votes: Vec<(u16, banyan_crypto::Signature)> = [0u16, 1]
        .iter()
        .map(|&v| (v, registry(v).sign(&vote_msg)))
        .collect();
    let weak = banyan_types::certs::QuorumCert {
        view: 1,
        block: parent_hash,
        agg: table.aggregate(&votes),
    };
    let actions = e.on_message(ReplicaId(1), proposal(weak), Time(1000));
    assert!(actions.outbound.is_empty());
    assert_eq!(e.current_round(), Round(1));

    // Positive control: a full 3-vote QC is accepted and draws our vote.
    let votes: Vec<(u16, banyan_crypto::Signature)> = [0u16, 1, 2]
        .iter()
        .map(|&v| (v, registry(v).sign(&vote_msg)))
        .collect();
    let full = banyan_types::certs::QuorumCert {
        view: 1,
        block: parent_hash,
        agg: table.aggregate(&votes),
    };
    let actions = e.on_message(ReplicaId(1), proposal(full), Time(1000));
    let voted = actions.outbound.iter().any(|o| {
        matches!(
            o,
            Outbound::Send(
                ReplicaId(2),
                Message::HotStuff(HotStuffMsg::Vote { view: 2, .. })
            )
        )
    });
    assert!(voted, "quorum QC must be accepted (control)");
    assert_eq!(e.current_round(), Round(2));
}

#[test]
fn hotstuff_ignores_foreign_messages() {
    let mut e = hotstuff(0);
    e.on_init(Time(0));
    let actions = e.on_message(
        ReplicaId(1),
        Message::Streamlet(StreamletMsg::Vote(banyan_types::vote::Vote {
            kind: banyan_types::vote::VoteKind::Notarize,
            round: Round(1),
            block: banyan_types::ids::BlockHash::ZERO,
            voter: ReplicaId(1),
            signature: banyan_crypto::Signature::zero(),
        })),
        Time(0),
    );
    assert!(actions.is_empty());
}

// ---------------------------------------------------------------------
// Streamlet
// ---------------------------------------------------------------------

#[test]
fn streamlet_commits_middle_of_three_consecutive_epochs() {
    let mut engines: Vec<Box<dyn Engine>> = (0..N as u16)
        .map(|i| Box::new(streamlet(i)) as Box<dyn Engine>)
        .collect();
    // Run epochs 1..=4 by firing the epoch timers manually with instant
    // message settlement inside each epoch.
    let mut all_commits = Vec::new();
    let epoch_len = 200u64; // ms
    for epoch in 1u64..=4 {
        let now = Time(Duration::from_millis(epoch_len * (epoch - 1)).as_nanos());
        let mut initial = Vec::new();
        for (i, e) in engines.iter_mut().enumerate() {
            let a = if epoch == 1 {
                e.on_init(now)
            } else {
                e.on_timer(TimerKind::EpochTick { epoch }, now)
            };
            initial.push((i, a));
        }
        all_commits.extend(settle(&mut engines, initial, now, u64::MAX));
    }
    // Epochs 1,2,3 notarized consecutively → epoch 2's block commits (and
    // epoch 1's as its ancestor); epoch 4 extends → epoch 3 commits.
    assert!(!all_commits.is_empty(), "no commits after 4 epochs");
    let rounds: std::collections::BTreeSet<u64> =
        all_commits.iter().map(|(_, c)| c.round.0).collect();
    assert!(rounds.contains(&1), "epoch-1 block committed (ancestor)");
    assert!(
        rounds.contains(&2),
        "epoch-2 block committed (middle of 1,2,3)"
    );
    assert!(!rounds.contains(&4), "epoch 4 cannot be final yet");
}

#[test]
fn streamlet_rejects_below_quorum_notarizations() {
    // Served certificates feed `adopt_notarization`, which must gate on
    // popcount before verifying: an empty aggregate passes verification
    // under every scheme.
    let mut e = streamlet(3);
    e.on_init(Time(0));
    // Deliver the epoch-1 leader proposal so the replica holds the block.
    let reg0 = registry(0);
    let mut block = banyan_types::Block {
        round: Round(1),
        proposer: ReplicaId(0),
        rank: banyan_types::Rank(0),
        parent: banyan_types::ids::BlockHash::ZERO,
        proposed_at: Time(0),
        payload: banyan_types::Payload::synthetic(100, 1),
        signature: banyan_crypto::Signature::zero(),
    };
    let hash = block.hash(64 * 1024);
    block.signature = reg0.sign(&banyan_types::Block::signing_message(&hash));
    e.on_message(
        ReplicaId(0),
        Message::Streamlet(StreamletMsg::Proposal { block }),
        Time(0),
    );

    let table = registry(0).table().clone();
    let serve = |e: &mut StreamletEngine| {
        let a = e.on_message(
            ReplicaId(1),
            Message::Sync(banyan_types::message::SyncMsg::RequestRange {
                from_round: Round(1),
                to_round: Round(1),
            }),
            Time(2000),
        );
        a.outbound.iter().any(|o| {
            matches!(
                o,
                Outbound::Send(
                    _,
                    Message::Sync(banyan_types::message::SyncMsg::ResponseBatch { .. })
                )
            )
        })
    };

    // Hollow certificate: zero signers, trivially verifying aggregate.
    let hollow = banyan_types::certs::Notarization {
        round: Round(1),
        block: hash,
        agg: table.aggregate(&[]),
        fast_agg: None,
    };
    e.on_message(
        ReplicaId(1),
        Message::Sync(banyan_types::message::SyncMsg::ResponseBatch {
            blocks: Vec::new(),
            notarizations: vec![hollow],
        }),
        Time(1000),
    );
    assert!(
        !serve(&mut e),
        "hollow notarization must not be adopted or re-served"
    );

    // Positive control: a genuine 3-vote certificate is adopted.
    let vote_msg = banyan_types::vote::Vote::signing_message(
        banyan_types::vote::VoteKind::Notarize,
        Round(1),
        &hash,
    );
    let votes: Vec<(u16, banyan_crypto::Signature)> = [0u16, 1, 2]
        .iter()
        .map(|&v| (v, registry(v).sign(&vote_msg)))
        .collect();
    let full = banyan_types::certs::Notarization {
        round: Round(1),
        block: hash,
        agg: table.aggregate(&votes),
        fast_agg: None,
    };
    e.on_message(
        ReplicaId(1),
        Message::Sync(banyan_types::message::SyncMsg::ResponseBatch {
            blocks: Vec::new(),
            notarizations: vec![full],
        }),
        Time(1000),
    );
    assert!(
        serve(&mut e),
        "quorum notarization must be adopted (control)"
    );
}

#[test]
fn streamlet_only_epoch_leader_proposals_accepted() {
    // Observe from replica 3; the leader of epoch 1 is replica 0
    // (round-robin over epoch − 1).
    let mut e = streamlet(3);
    e.on_init(Time(0));
    // A proposal for epoch 1 signed by replica 2 (leader is replica 0).
    let reg = registry(2);
    let mut block = banyan_types::Block {
        round: Round(1),
        proposer: ReplicaId(2),
        rank: banyan_types::Rank(0),
        parent: banyan_types::ids::BlockHash::ZERO,
        proposed_at: Time(0),
        payload: banyan_types::Payload::synthetic(100, 1),
        signature: banyan_crypto::Signature::zero(),
    };
    let hash = block.hash(64 * 1024);
    block.signature = reg.sign(&banyan_types::Block::signing_message(&hash));
    let actions = e.on_message(
        ReplicaId(2),
        Message::Streamlet(StreamletMsg::Proposal { block }),
        Time(0),
    );
    assert!(
        actions.outbound.is_empty(),
        "non-leader proposal must not attract a vote"
    );
}

#[test]
fn streamlet_votes_once_per_epoch() {
    // Replica 3 observes; epoch-1 leader is replica 0.
    let mut e = streamlet(3);
    e.on_init(Time(0));
    let reg = registry(0);
    let mk = |seed: u64| {
        let mut block = banyan_types::Block {
            round: Round(1),
            proposer: ReplicaId(0),
            rank: banyan_types::Rank(0),
            parent: banyan_types::ids::BlockHash::ZERO,
            proposed_at: Time(0),
            payload: banyan_types::Payload::synthetic(100, seed),
            signature: banyan_crypto::Signature::zero(),
        };
        let hash = block.hash(64 * 1024);
        block.signature = reg.sign(&banyan_types::Block::signing_message(&hash));
        block
    };
    let a1 = e.on_message(
        ReplicaId(0),
        Message::Streamlet(StreamletMsg::Proposal { block: mk(1) }),
        Time(0),
    );
    let voted1 = a1.outbound.iter().any(|o| {
        matches!(
            o,
            Outbound::Broadcast(Message::Streamlet(StreamletMsg::Vote(_)))
        )
    });
    assert!(voted1, "first leader proposal gets a vote");
    // An equivocating second proposal in the same epoch gets no vote.
    let a2 = e.on_message(
        ReplicaId(0),
        Message::Streamlet(StreamletMsg::Proposal { block: mk(2) }),
        Time(1),
    );
    let voted2 = a2.outbound.iter().any(|o| {
        matches!(
            o,
            Outbound::Broadcast(Message::Streamlet(StreamletMsg::Vote(_)))
        )
    });
    assert!(!voted2, "one vote per epoch");
}
