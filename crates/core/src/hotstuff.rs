//! Chained HotStuff baseline (Yin et al., PODC'19), as used by the paper's
//! evaluation through the Bamboo framework (§9.1).
//!
//! This is the pipelined, rotating-leader variant with the classic 3-chain
//! commit rule:
//!
//! * the leader of view `v` proposes a block justified by its highest QC;
//! * replicas vote to the **next** leader if the proposal extends the
//!   justify block and the liveness rule (`justify.view ≥ locked.view`)
//!   holds;
//! * `⌈(n+f+1)/2⌉` votes form a QC; three QCs over consecutive views
//!   commit the head of the chain (and its ancestors);
//! * a pacemaker advances views on timeout, broadcasting `NewView` with
//!   the highest known QC.
//!
//! Proposer latency on the happy path is the paper's Table 1 figure for
//! HotStuff-family protocols: several round trips, which is exactly what
//! Fig. 6a/6e show it losing to ICC/Banyan by.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use banyan_crypto::beacon::Beacon;
use banyan_crypto::registry::KeyRegistry;
use banyan_crypto::{DirectVerify, Signature, VerifyBackend, VerifyStats};
use banyan_types::app::{ProposalContext, ProposalSource};
use banyan_types::block::Block;
use banyan_types::certs::QuorumCert;
use banyan_types::config::ProtocolConfig;
use banyan_types::engine::{Actions, CommitEntry, Engine, TimerKind};
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{HotStuffMsg, Message};
use banyan_types::time::{Duration, Time};
use banyan_types::ChainSnapshot;

/// Domain for HotStuff vote signatures. Delegates to the shared
/// [`QuorumCert::signing_message`] so the transport verify plane (which
/// pre-checks certificates by recomputing this string) can never drift
/// from what the engine signs.
fn vote_message(view: u64, block: &BlockHash) -> Vec<u8> {
    QuorumCert::signing_message(view, block)
}

/// The chained-HotStuff replica engine.
pub struct HotStuffEngine {
    cfg: ProtocolConfig,
    id: ReplicaId,
    beacon: Beacon,
    registry: KeyRegistry,
    /// The verify plane (see `ChainedEngine::set_verify_backend`).
    verify: Arc<dyn VerifyBackend>,
    /// Blocks plus the QC each one carries for its parent.
    blocks: HashMap<BlockHash, (Block, QuorumCert)>,
    /// Current view.
    view: u64,
    /// Highest QC known.
    high_qc: QuorumCert,
    /// Locked QC (2-chain lock for safety).
    locked_qc: QuorumCert,
    /// Last view we voted in.
    last_vote_view: u64,
    /// Votes collected by this replica as (next-view) leader: per
    /// (view, block) → voter → signature.
    votes: BTreeMap<(u64, BlockHash), HashMap<u16, Signature>>,
    /// NewView senders per view (pacemaker quorum).
    new_views: BTreeMap<u64, HashMap<u16, QuorumCert>>,
    /// Highest committed view.
    committed_view: u64,
    /// Round of the last committed block (for the commit walk).
    committed_round: Round,
    /// `committed_round` as of the start of the current engine event —
    /// i.e. the newest commit whose `CommitEntry` the driver has already
    /// routed. The `ProposalContext` ancestor walk stops here, NOT at
    /// `committed_round`: a QC arrival can commit a block and trigger the
    /// next proposal in one event, and the mempool's lease for that block
    /// is still live until the commit is routed after the event — so the
    /// block must still count as a live ancestor or its requests would be
    /// re-batched (the commit-lag duplication race).
    routed_committed_round: Round,
    /// Views in which we already proposed.
    proposed: std::collections::HashSet<u64>,
    /// View timeout (pacemaker).
    view_timeout: Duration,
    /// Where block payloads come from.
    source: Box<dyn ProposalSource>,
}

impl std::fmt::Debug for HotStuffEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotStuffEngine")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("committed_view", &self.committed_view)
            .finish_non_exhaustive()
    }
}

impl HotStuffEngine {
    /// Creates a replica engine.
    pub fn new(
        cfg: ProtocolConfig,
        registry: KeyRegistry,
        beacon: Beacon,
        source: Box<dyn ProposalSource>,
        view_timeout: Duration,
    ) -> Self {
        assert_eq!(beacon.n(), cfg.n(), "beacon sized for the cluster");
        let id = ReplicaId(registry.my_index());
        let verify: Arc<dyn VerifyBackend> = Arc::new(DirectVerify::new(registry.table().clone()));
        HotStuffEngine {
            cfg,
            id,
            beacon,
            registry,
            verify,
            blocks: HashMap::new(),
            view: 0,
            high_qc: QuorumCert::genesis(),
            locked_qc: QuorumCert::genesis(),
            last_vote_view: 0,
            votes: BTreeMap::new(),
            new_views: BTreeMap::new(),
            committed_view: 0,
            committed_round: Round::GENESIS,
            routed_committed_round: Round::GENESIS,
            proposed: std::collections::HashSet::new(),
            view_timeout,
            source,
        }
    }

    fn leader(&self, view: u64) -> ReplicaId {
        ReplicaId(self.beacon.leader(view.saturating_sub(1)))
    }

    fn quorum(&self) -> usize {
        self.cfg.notarization_quorum()
    }

    fn enter_view(&mut self, view: u64, now: Time, actions: &mut Actions) {
        if view <= self.view {
            return;
        }
        self.view = view;
        actions.arm(now + self.view_timeout, TimerKind::ViewTimeout { view });
        if self.leader(view) == self.id {
            self.try_propose(now, actions);
        }
    }

    fn try_propose(&mut self, now: Time, actions: &mut Actions) {
        let view = self.view;
        if self.leader(view) != self.id || self.proposed.contains(&view) {
            return;
        }
        // Propose only when justified: either the QC of view − 1 is known
        // or a pacemaker quorum of NewViews arrived (after a timeout).
        let justified = self.high_qc.view + 1 == view
            || self
                .new_views
                .get(&(view - 1))
                .map(|m| m.len() >= self.quorum())
                .unwrap_or(false)
            || view == 1;
        if !justified {
            return;
        }
        self.proposed.insert(view);
        let justify = self.high_qc.clone();
        let ctx = self.proposal_context(Round(view), justify.block, now);
        let mut block = Block {
            round: Round(view),
            proposer: self.id,
            rank: Rank(0),
            parent: justify.block,
            proposed_at: now,
            payload: self.source.next_payload(&ctx),
            signature: Signature::zero(),
        };
        let hash = block.hash(self.cfg.payload_chunk);
        block.signature = self.registry.sign(&Block::signing_message(&hash));
        self.blocks.insert(hash, (block.clone(), justify.clone()));
        actions.broadcast(Message::HotStuff(HotStuffMsg::Proposal {
            block: block.clone(),
            justify: justify.clone(),
        }));
        // Process our own proposal (vote for it).
        self.handle_proposal(block, justify, now, actions);
    }

    /// The chain position for the `ProposalSource`: the justify block plus
    /// every ancestor down to — excluding — the last commit the *driver
    /// has routed* (`routed_committed_round`, snapshotted at event entry;
    /// see its field docs for why `committed_round` would race). The
    /// 3-chain rule keeps 2+ blocks in this window even on the happy
    /// path, which is exactly the commit lag that made blind drains
    /// re-batch ancestors' requests (the sweep's `dups` column).
    fn proposal_context(&self, round: Round, parent: BlockHash, now: Time) -> ProposalContext {
        let mut ancestors = Vec::new();
        let mut cursor = parent;
        while cursor != BlockHash::ZERO {
            let Some((block, justify)) = self.blocks.get(&cursor) else {
                break;
            };
            if block.round <= self.routed_committed_round {
                break;
            }
            ancestors.push(cursor);
            cursor = justify.block;
        }
        ProposalContext {
            round,
            now,
            parent,
            ancestors,
        }
    }

    fn update_high_qc(&mut self, qc: &QuorumCert) {
        if qc.view > self.high_qc.view {
            self.high_qc = qc.clone();
        }
    }

    fn verify_qc(&self, qc: &QuorumCert) -> bool {
        if qc.is_genesis() {
            return true;
        }
        // Popcount gate first: an empty or below-quorum aggregate verifies
        // trivially under every scheme, so the cryptographic check alone
        // proves nothing about quorum.
        if !qc.meets_quorum(self.quorum()) {
            return false;
        }
        if !self.cfg.verify_signatures {
            return true;
        }
        self.verify
            .verify_aggregate(&vote_message(qc.view, &qc.block), &qc.agg)
    }

    fn handle_proposal(
        &mut self,
        block: Block,
        justify: QuorumCert,
        now: Time,
        actions: &mut Actions,
    ) {
        let view = block.round.0;
        if view == 0 || !self.verify_qc(&justify) {
            return;
        }
        let hash = block.hash(self.cfg.payload_chunk);
        if self.cfg.verify_signatures
            && !self.verify.verify(
                block.proposer.0,
                &Block::signing_message(&hash),
                &block.signature,
            )
        {
            return;
        }
        if block.proposer != self.leader(view) || block.parent != justify.block {
            return;
        }
        self.blocks.entry(hash).or_insert((block, justify.clone()));
        self.update_high_qc(&justify);
        self.try_commit(&justify, now, actions);

        // View synchronization: a valid proposal for a higher view pulls
        // us forward.
        if view > self.view {
            self.enter_view(view, now, actions);
        }
        if view < self.view {
            return; // stale proposal
        }

        // SafeNode: vote once per view, for proposals whose justify is at
        // least our lock.
        if view > self.last_vote_view && justify.view >= self.locked_qc.view {
            self.last_vote_view = view;
            // 2-chain lock update: lock the justify's justify.
            if let Some((_, parent_justify)) = self.blocks.get(&justify.block) {
                if parent_justify.view > self.locked_qc.view {
                    self.locked_qc = parent_justify.clone();
                }
            }
            let sig = self.registry.sign(&vote_message(view, &hash));
            let vote = HotStuffMsg::Vote {
                view,
                block: hash,
                voter: self.id,
                signature: sig,
            };
            let next_leader = self.leader(view + 1);
            if next_leader == self.id {
                self.handle_vote(view, hash, self.id, sig, now, actions);
            } else {
                actions.send(next_leader, Message::HotStuff(vote));
            }
        }
    }

    fn handle_vote(
        &mut self,
        view: u64,
        block: BlockHash,
        voter: ReplicaId,
        signature: Signature,
        now: Time,
        actions: &mut Actions,
    ) {
        if self.cfg.verify_signatures
            && !self
                .verify
                .verify(voter.0, &vote_message(view, &block), &signature)
        {
            return;
        }
        let quorum = self.quorum();
        let entry = self.votes.entry((view, block)).or_default();
        entry.insert(voter.0, signature);
        if entry.len() >= quorum && self.high_qc.view < view {
            let votes: Vec<(u16, Signature)> = self.votes[&(view, block)]
                .iter()
                .map(|(v, s)| (*v, *s))
                .collect();
            let agg = self.registry.table().aggregate(&votes);
            let qc = QuorumCert { view, block, agg };
            self.update_high_qc(&qc);
            self.try_commit(&qc, now, actions);
            // As leader of view + 1, propose immediately (optimistic
            // responsiveness).
            self.enter_view(view + 1, now, actions);
            self.try_propose(now, actions);
        }
    }

    /// The 3-chain commit rule: a QC for `b2` where `b2 → b1 → b0` with
    /// consecutive views commits `b0` and its uncommitted ancestors.
    fn try_commit(&mut self, qc: &QuorumCert, now: Time, actions: &mut Actions) {
        if qc.is_genesis() {
            return;
        }
        let Some((b2, j2)) = self.blocks.get(&qc.block) else {
            return;
        };
        let (v2, j2) = (b2.round.0, j2.clone());
        let Some((b1, j1)) = self.blocks.get(&j2.block) else {
            return;
        };
        let (v1, j1) = (b1.round.0, j1.clone());
        let Some((b0, _)) = self.blocks.get(&j1.block) else {
            return;
        };
        let v0 = b0.round.0;
        if v2 != v1 + 1 || v1 != v0 + 1 {
            return;
        }
        if v0 <= self.committed_view {
            return;
        }
        // Commit b0 and all uncommitted ancestors, oldest first.
        let mut chain = Vec::new();
        let mut cursor = j1.block; // hash of b0
        while cursor != BlockHash::ZERO {
            let Some((blk, justify)) = self.blocks.get(&cursor) else {
                break;
            };
            if blk.round <= self.committed_round {
                break;
            }
            chain.push((
                cursor,
                blk.round,
                blk.proposer,
                blk.payload.clone(),
                blk.proposed_at,
            ));
            cursor = justify.block;
        }
        chain.reverse();
        let chain_len = chain.len();
        for (i, (hash, round, proposer, payload, proposed_at)) in chain.iter().enumerate() {
            actions.commit(CommitEntry {
                round: *round,
                block: *hash,
                proposer: *proposer,
                payload: payload.clone(),
                proposed_at: *proposed_at,
                committed_at: now,
                fast: false,
                explicit: i == chain_len - 1,
            });
        }
        self.committed_view = v0;
        if let Some((_, round, ..)) = chain.last() {
            self.committed_round = *round;
        }
    }

    fn handle_new_view(
        &mut self,
        view: u64,
        justify: QuorumCert,
        from: ReplicaId,
        now: Time,
        actions: &mut Actions,
    ) {
        if !self.verify_qc(&justify) {
            return;
        }
        self.update_high_qc(&justify);
        self.new_views
            .entry(view)
            .or_default()
            .insert(from.0, justify);
        if self.leader(view + 1) == self.id {
            self.enter_view(view + 1, now, actions);
            self.try_propose(now, actions);
        }
    }
}

impl Engine for HotStuffEngine {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn protocol_name(&self) -> &'static str {
        "hotstuff"
    }

    fn on_init(&mut self, now: Time) -> Actions {
        self.routed_committed_round = self.committed_round;
        let mut actions = Actions::none();
        // Fresh engines start at view 1; restored ones re-enter one view
        // past their recovered `high_qc` (`restore` parks `view` there).
        let next = (self.view + 1).max(1);
        self.enter_view(next, now, &mut actions);
        actions
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, now: Time) -> Actions {
        // Everything committed before this event has been routed by now.
        self.routed_committed_round = self.committed_round;
        let mut actions = Actions::none();
        match msg {
            Message::HotStuff(HotStuffMsg::Proposal { block, justify }) => {
                self.handle_proposal(block, justify, now, &mut actions);
            }
            Message::HotStuff(HotStuffMsg::Vote {
                view,
                block,
                voter,
                signature,
            }) => {
                self.handle_vote(view, block, voter, signature, now, &mut actions);
            }
            Message::HotStuff(HotStuffMsg::NewView { view, justify }) => {
                self.handle_new_view(view, justify, from, now, &mut actions);
            }
            _ => {}
        }
        actions
    }

    fn on_timer(&mut self, kind: TimerKind, now: Time) -> Actions {
        self.routed_committed_round = self.committed_round;
        let mut actions = Actions::none();
        if let TimerKind::ViewTimeout { view } = kind {
            if view == self.view {
                // Pacemaker: give up on the view, tell the next leader.
                let msg = HotStuffMsg::NewView {
                    view,
                    justify: self.high_qc.clone(),
                };
                let next_leader = self.leader(view + 1);
                if next_leader == self.id {
                    let high = self.high_qc.clone();
                    self.handle_new_view(view, high, self.id, now, &mut actions);
                } else {
                    actions.send(next_leader, Message::HotStuff(msg));
                }
                self.enter_view(view + 1, now, &mut actions);
            }
        }
        actions
    }

    fn current_round(&self) -> Round {
        Round(self.view)
    }

    fn finalized_round(&self) -> Round {
        self.committed_round
    }

    fn verify_stats(&self) -> VerifyStats {
        self.verify.stats()
    }

    fn set_verify_backend(&mut self, backend: Arc<dyn VerifyBackend>) {
        self.verify = backend;
    }

    fn snapshot(&self) -> ChainSnapshot {
        let mut snap = ChainSnapshot::default();
        for (hash, (block, justify)) in &self.blocks {
            snap.blocks.push((*hash, block.clone()));
            snap.justifies.push((*hash, justify.clone()));
        }
        snap.committed_round = self.committed_round;
        snap.committed_view = self.committed_view;
        snap.normalize();
        snap
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) {
        let justify_of: HashMap<BlockHash, QuorumCert> =
            snapshot.justifies.iter().cloned().collect();
        self.blocks.clear();
        for (hash, block) in &snapshot.blocks {
            let justify = justify_of
                .get(hash)
                .cloned()
                .unwrap_or_else(QuorumCert::genesis);
            self.blocks.insert(*hash, (block.clone(), justify));
        }
        self.high_qc = justify_of
            .values()
            .max_by_key(|qc| qc.view)
            .cloned()
            .unwrap_or_else(QuorumCert::genesis);
        // 2-chain lock: locking at the high QC is conservative (it only
        // refuses votes the pre-crash lock might have allowed), so a
        // restarted replica can never vote for a conflicting branch.
        self.locked_qc = self.high_qc.clone();
        // Past votes are gone with the crash; refusing to vote below the
        // recovered high QC prevents equivocation in replayed views.
        self.last_vote_view = self.high_qc.view;
        self.committed_round = snapshot.committed_round;
        self.committed_view = snapshot.committed_view;
        self.routed_committed_round = self.committed_round;
        // Park one view short so `on_init` re-enters at `high_qc.view+1`.
        self.view = self.high_qc.view;
        self.votes.clear();
        self.new_views.clear();
        self.proposed.clear();
    }
}
