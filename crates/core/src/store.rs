//! The block tree (§4: "as the protocol advances, a tree of blocks is
//! constructed, starting from a genesis block that is at the root").
//!
//! The store tracks every received block, which are notarized, and the
//! finalized chain. The genesis block is virtual: hash
//! [`BlockHash::ZERO`] at round 0, notarized and finalized by definition.

use std::collections::{BTreeMap, HashMap, HashSet};

use banyan_types::certs::Notarization;
use banyan_types::ids::{BlockHash, Round};
use banyan_types::Block;

/// The block tree plus notarization/finalization bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct BlockStore {
    /// Every block we hold, by hash.
    blocks: HashMap<BlockHash, Block>,
    /// Hashes per round, in arrival order.
    by_round: BTreeMap<Round, Vec<BlockHash>>,
    /// Blocks known to be notarized (own quorum or received certificate).
    notarized: HashSet<BlockHash>,
    /// Retained notarization certificates (needed for proposals and
    /// round-advance broadcasts).
    notarizations: HashMap<BlockHash, Notarization>,
    /// The finalized block of each round (the canonical chain).
    finalized: BTreeMap<Round, BlockHash>,
}

impl BlockStore {
    /// An empty tree (genesis only).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `hash` identifies the virtual genesis block.
    pub fn is_genesis(hash: &BlockHash) -> bool {
        *hash == BlockHash::ZERO
    }

    /// Inserts a block, returning `false` if it was already present.
    pub fn insert(&mut self, hash: BlockHash, block: Block) -> bool {
        if self.blocks.contains_key(&hash) {
            return false;
        }
        self.by_round.entry(block.round).or_default().push(hash);
        self.blocks.insert(hash, block);
        true
    }

    /// Fetches a block by hash.
    pub fn get(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// True if we hold the block (or it is genesis).
    pub fn contains(&self, hash: &BlockHash) -> bool {
        Self::is_genesis(hash) || self.blocks.contains_key(hash)
    }

    /// Hashes of blocks received for `round`.
    pub fn round_blocks(&self, round: Round) -> &[BlockHash] {
        self.by_round.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Marks a block notarized, keeping the certificate if given.
    pub fn mark_notarized(&mut self, hash: BlockHash, cert: Option<Notarization>) {
        self.notarized.insert(hash);
        if let Some(cert) = cert {
            self.notarizations.entry(hash).or_insert(cert);
        }
    }

    /// True if the block is notarized (genesis always is).
    pub fn is_notarized(&self, hash: &BlockHash) -> bool {
        Self::is_genesis(hash) || self.notarized.contains(hash)
    }

    /// The retained notarization certificate for a block, if any.
    pub fn notarization(&self, hash: &BlockHash) -> Option<&Notarization> {
        self.notarizations.get(hash)
    }

    /// Records the finalized block of a round.
    pub fn mark_finalized(&mut self, round: Round, hash: BlockHash) {
        self.finalized.insert(round, hash);
        // A finalized block is necessarily notarized.
        if !Self::is_genesis(&hash) {
            self.notarized.insert(hash);
        }
    }

    /// The finalized block of `round`, if decided (genesis for round 0).
    pub fn finalized(&self, round: Round) -> Option<BlockHash> {
        if round == Round::GENESIS {
            return Some(BlockHash::ZERO);
        }
        self.finalized.get(&round).copied()
    }

    /// True if this specific block is final.
    pub fn is_finalized(&self, round: Round, hash: &BlockHash) -> bool {
        self.finalized(round) == Some(*hash)
    }

    /// Highest finalized round (0 if only genesis).
    pub fn max_finalized_round(&self) -> Round {
        self.finalized
            .keys()
            .next_back()
            .copied()
            .unwrap_or(Round::GENESIS)
    }

    /// Walks the parent chain from `tip` (exclusive of genesis) down to —
    /// but not including — round `stop_after`. Returns blocks in
    /// **ascending round order**, or `None` if an ancestor is missing from
    /// the store.
    ///
    /// This is the §4 implicit-finalization walk: explicitly finalizing a
    /// round-`k` block finalizes all its ancestors back to the previous
    /// finalized round.
    pub fn chain_to(&self, tip: &BlockHash, stop_after: Round) -> Option<Vec<(BlockHash, &Block)>> {
        let mut out = Vec::new();
        let mut cursor = *tip;
        loop {
            if Self::is_genesis(&cursor) {
                break;
            }
            let block = self.blocks.get(&cursor)?;
            if block.round <= stop_after {
                break;
            }
            out.push((cursor, block));
            cursor = block.parent;
        }
        out.reverse();
        Some(out)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are held.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Drops per-round indexes and blocks strictly below `round` that are
    /// not on the finalized chain (bounded memory for long runs).
    pub fn prune_below(&mut self, round: Round) {
        let doomed_rounds: Vec<Round> = self.by_round.range(..round).map(|(r, _)| *r).collect();
        for r in doomed_rounds {
            if let Some(hashes) = self.by_round.remove(&r) {
                for h in hashes {
                    if self.finalized.get(&r) != Some(&h) {
                        self.blocks.remove(&h);
                        self.notarized.remove(&h);
                        self.notarizations.remove(&h);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_crypto::Signature;
    use banyan_types::ids::{Rank, ReplicaId};
    use banyan_types::payload::Payload;
    use banyan_types::time::Time;

    fn block(round: u64, parent: BlockHash, tag: u8) -> (BlockHash, Block) {
        let b = Block {
            round: Round(round),
            proposer: ReplicaId(tag as u16),
            rank: Rank(0),
            parent,
            proposed_at: Time(round),
            payload: Payload::synthetic(100, tag as u64),
            signature: Signature::zero(),
        };
        (b.hash(1024), b)
    }

    #[test]
    fn genesis_is_always_notarized_and_finalized() {
        let store = BlockStore::new();
        assert!(store.is_notarized(&BlockHash::ZERO));
        assert_eq!(store.finalized(Round::GENESIS), Some(BlockHash::ZERO));
        assert!(store.is_finalized(Round::GENESIS, &BlockHash::ZERO));
        assert_eq!(store.max_finalized_round(), Round::GENESIS);
    }

    #[test]
    fn insert_and_lookup() {
        let mut store = BlockStore::new();
        let (h, b) = block(1, BlockHash::ZERO, 1);
        assert!(store.insert(h, b.clone()));
        assert!(!store.insert(h, b), "duplicate insert returns false");
        assert!(store.contains(&h));
        assert_eq!(store.get(&h).unwrap().round, Round(1));
        assert_eq!(store.round_blocks(Round(1)), &[h]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn notarization_tracking() {
        let mut store = BlockStore::new();
        let (h, b) = block(1, BlockHash::ZERO, 1);
        store.insert(h, b);
        assert!(!store.is_notarized(&h));
        store.mark_notarized(h, None);
        assert!(store.is_notarized(&h));
        assert!(store.notarization(&h).is_none(), "no cert retained");
    }

    #[test]
    fn chain_walk_ascending() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        let (h3, b3) = block(3, h2, 3);
        store.insert(h1, b1);
        store.insert(h2, b2);
        store.insert(h3, b3);

        let chain = store.chain_to(&h3, Round::GENESIS).unwrap();
        assert_eq!(
            chain.iter().map(|(h, _)| *h).collect::<Vec<_>>(),
            vec![h1, h2, h3]
        );

        // Stop after round 1: only rounds 2..=3.
        let chain = store.chain_to(&h3, Round(1)).unwrap();
        assert_eq!(
            chain.iter().map(|(h, _)| *h).collect::<Vec<_>>(),
            vec![h2, h3]
        );
    }

    #[test]
    fn chain_walk_detects_missing_ancestor() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        // h1 never inserted.
        store.insert(h2, b2.clone());
        assert!(store.chain_to(&h2, Round::GENESIS).is_none());
        store.insert(h1, b1);
        assert!(store.chain_to(&h2, Round::GENESIS).is_some());
    }

    #[test]
    fn finalization_chain() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        store.insert(h1, b1);
        store.mark_finalized(Round(1), h1);
        assert!(store.is_finalized(Round(1), &h1));
        assert!(store.is_notarized(&h1), "finalized implies notarized");
        assert_eq!(store.max_finalized_round(), Round(1));
    }

    #[test]
    fn prune_keeps_finalized_chain() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h1b, b1b) = block(1, BlockHash::ZERO, 9); // fork at round 1
        let (h2, b2) = block(2, h1, 2);
        store.insert(h1, b1);
        store.insert(h1b, b1b);
        store.insert(h2, b2);
        store.mark_finalized(Round(1), h1);

        store.prune_below(Round(2));
        assert!(store.contains(&h1), "finalized block survives pruning");
        assert!(!store.contains(&h1b), "losing fork pruned");
        assert!(store.contains(&h2), "rounds at/after cutoff survive");
        assert!(
            store.round_blocks(Round(1)).is_empty(),
            "round index pruned"
        );
    }
}
