//! The block tree, re-exported from `banyan-storage`.
//!
//! The store moved into its own crate when it grew a WAL-backed sibling
//! (`banyan_storage::WalStore`); this shim keeps every historical
//! `banyan_core::store::BlockStore` import working. Engines hold a
//! `Box<dyn ChainStore>`, so either backend drops in.

pub use banyan_storage::{BlockStore, ChainStore};
