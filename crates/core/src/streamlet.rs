//! Streamlet baseline (Chan & Shi, AFT'20), as used by the paper's
//! evaluation through the Bamboo framework (§9.1).
//!
//! Streamlet advances in fixed-length epochs of `2Δ`:
//!
//! * the epoch's (round-robin) leader proposes a block extending the tip
//!   of a longest notarized chain;
//! * every replica votes (all-to-all) for the epoch's first valid leader
//!   proposal that extends a longest notarized chain;
//! * `⌈(n+f+1)/2⌉` votes notarize a block;
//! * three notarized blocks in **consecutive** epochs commit the middle
//!   one and its ancestors.
//!
//! Being a synchronous-epoch protocol, its latency is `O(Δ)` rather than
//! `O(δ)` — the paper's Table 1 lists `6Δ` finalization — which is why it
//! trails ICC/Banyan in every figure.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use banyan_crypto::beacon::Beacon;
use banyan_crypto::registry::KeyRegistry;
use banyan_crypto::{DirectVerify, Signature, VerifyBackend, VerifyStats};
use banyan_types::app::{ProposalContext, ProposalSource};
use banyan_types::block::Block;
use banyan_types::certs::Notarization;
use banyan_types::config::ProtocolConfig;
use banyan_types::engine::{Actions, CommitEntry, Engine, TimerKind};
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{Message, StreamletMsg, SyncMsg};
use banyan_types::time::{Duration, Time};
use banyan_types::vote::{Vote, VoteKind};
use banyan_types::ChainSnapshot;

/// The Streamlet replica engine.
pub struct StreamletEngine {
    cfg: ProtocolConfig,
    id: ReplicaId,
    beacon: Beacon,
    registry: KeyRegistry,
    /// The verify plane (see `ChainedEngine::set_verify_backend`).
    verify: Arc<dyn VerifyBackend>,
    /// All received blocks with their chain length (genesis = length 0).
    blocks: HashMap<BlockHash, (Block, u64)>,
    /// Votes per block.
    votes: HashMap<BlockHash, HashMap<u16, Signature>>,
    /// Notarized blocks.
    notarized: HashSet<BlockHash>,
    /// Assembled notarization certificates (quorums we observed, plus
    /// certificates adopted from catch-up batches) — the proofs served to
    /// rejoining replicas over ranged sync.
    notarization_certs: HashMap<BlockHash, Notarization>,
    /// Epoch we are in.
    epoch: u64,
    /// Epochs we have voted in.
    voted_epochs: HashSet<u64>,
    /// Epoch length (the paper's `2Δ`).
    epoch_len: Duration,
    /// Highest committed round (epoch) so far.
    committed_round: Round,
    /// Where block payloads come from.
    source: Box<dyn ProposalSource>,
}

impl std::fmt::Debug for StreamletEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamletEngine")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("committed_round", &self.committed_round)
            .finish_non_exhaustive()
    }
}

impl StreamletEngine {
    /// Creates a replica engine. `epoch_len` should be `2Δ`.
    pub fn new(
        cfg: ProtocolConfig,
        registry: KeyRegistry,
        beacon: Beacon,
        source: Box<dyn ProposalSource>,
        epoch_len: Duration,
    ) -> Self {
        assert_eq!(beacon.n(), cfg.n(), "beacon sized for the cluster");
        let id = ReplicaId(registry.my_index());
        let verify: Arc<dyn VerifyBackend> = Arc::new(DirectVerify::new(registry.table().clone()));
        StreamletEngine {
            cfg,
            id,
            beacon,
            registry,
            verify,
            blocks: HashMap::new(),
            votes: HashMap::new(),
            notarized: HashSet::new(),
            notarization_certs: HashMap::new(),
            epoch: 0,
            voted_epochs: HashSet::new(),
            epoch_len,
            committed_round: Round::GENESIS,
            source,
        }
    }

    fn quorum(&self) -> usize {
        self.cfg.notarization_quorum()
    }

    fn leader(&self, epoch: u64) -> ReplicaId {
        ReplicaId(self.beacon.leader(epoch.saturating_sub(1)))
    }

    /// Length of the notarized chain ending at `hash` (genesis = 0), or
    /// `None` if the chain is broken or not fully notarized.
    fn notarized_chain_len(&self, hash: &BlockHash) -> Option<u64> {
        if *hash == BlockHash::ZERO {
            return Some(0);
        }
        if !self.notarized.contains(hash) {
            return None;
        }
        let (block, _) = self.blocks.get(hash)?;
        self.notarized_chain_len(&block.parent).map(|l| l + 1)
    }

    /// Tip of a longest notarized chain (genesis if none). Deterministic
    /// tie-break on the hash.
    fn longest_notarized_tip(&self) -> (BlockHash, u64) {
        let mut best = (BlockHash::ZERO, 0u64);
        let mut tips: Vec<&BlockHash> = self.notarized.iter().collect();
        tips.sort();
        for hash in tips {
            if let Some(len) = self.notarized_chain_len(hash) {
                if len > best.1 || (len == best.1 && *hash < best.0) {
                    best = (*hash, len);
                }
            }
        }
        best
    }

    fn start_epoch(&mut self, epoch: u64, now: Time, actions: &mut Actions) {
        self.epoch = epoch;
        // Arm the next epoch boundary. Epoch `e + 1` begins at `e·len` on
        // the shared epoch clock; for an aligned replica this equals
        // `now + epoch_len` exactly, while a replica re-initialized
        // mid-epoch (restart) re-synchronizes its tick to the boundary.
        actions.arm(
            Time(epoch.saturating_mul(self.epoch_len.0)),
            TimerKind::EpochTick { epoch: epoch + 1 },
        );
        if self.leader(epoch) == self.id {
            let (parent, _) = self.longest_notarized_tip();
            let ctx = self.proposal_context(Round(epoch), parent, now);
            let mut block = Block {
                round: Round(epoch),
                proposer: self.id,
                rank: Rank(0),
                parent,
                proposed_at: now,
                payload: self.source.next_payload(&ctx),
                signature: Signature::zero(),
            };
            let hash = block.hash(self.cfg.payload_chunk);
            block.signature = self.registry.sign(&Block::signing_message(&hash));
            actions.broadcast(Message::Streamlet(StreamletMsg::Proposal {
                block: block.clone(),
            }));
            self.handle_proposal(block, now, actions);
        }
    }

    /// The chain position for the `ProposalSource`: the tip being extended
    /// plus every uncommitted ancestor down to — excluding — the last
    /// committed epoch. Streamlet's commit rule always leaves the newest
    /// notarized block (and often more) uncommitted, the commit lag that
    /// made blind drains re-batch ancestors' requests.
    ///
    /// Invariant: stopping at `committed_round` satisfies the mempool's
    /// "ancestors reach the newest *routed* commit" contract only because
    /// Streamlet proposes exclusively as the first action of an epoch
    /// tick — no commit can precede the drain within one event. A future
    /// propose-from-`on_message` path must snapshot the committed round
    /// at event entry instead (see HotStuff's `routed_committed_round`).
    fn proposal_context(&self, round: Round, parent: BlockHash, now: Time) -> ProposalContext {
        let mut ancestors = Vec::new();
        let mut cursor = parent;
        while cursor != BlockHash::ZERO {
            let Some((block, _)) = self.blocks.get(&cursor) else {
                break;
            };
            if block.round <= self.committed_round {
                break;
            }
            ancestors.push(cursor);
            cursor = block.parent;
        }
        ProposalContext {
            round,
            now,
            parent,
            ancestors,
        }
    }

    fn handle_proposal(&mut self, block: Block, now: Time, actions: &mut Actions) {
        let epoch = block.round.0;
        if epoch == 0 || block.proposer != self.leader(epoch) {
            return;
        }
        let hash = block.hash(self.cfg.payload_chunk);
        if self.blocks.contains_key(&hash) {
            return;
        }
        if self.cfg.verify_signatures
            && !self.verify.verify(
                block.proposer.0,
                &Block::signing_message(&hash),
                &block.signature,
            )
        {
            return;
        }
        self.blocks.insert(hash, (block.clone(), 0));

        // Vote if we haven't voted this epoch and the proposal extends a
        // longest notarized chain.
        let (_, longest) = self.longest_notarized_tip();
        let parent_len = self.notarized_chain_len(&block.parent);
        if !self.voted_epochs.contains(&epoch) && epoch >= self.epoch && parent_len == Some(longest)
        {
            self.voted_epochs.insert(epoch);
            let msg = Vote::signing_message(VoteKind::Notarize, block.round, &hash);
            let vote = Vote {
                kind: VoteKind::Notarize,
                round: block.round,
                block: hash,
                voter: self.id,
                signature: self.registry.sign(&msg),
            };
            actions.broadcast(Message::Streamlet(StreamletMsg::Vote(vote)));
            self.handle_vote(vote, now, actions);
        }
    }

    fn handle_vote(&mut self, vote: Vote, now: Time, actions: &mut Actions) {
        if vote.kind != VoteKind::Notarize {
            return;
        }
        if self.cfg.verify_signatures
            && !self
                .verify
                .verify(vote.voter.0, &vote.message(), &vote.signature)
        {
            return;
        }
        let quorum = self.quorum();
        let entry = self.votes.entry(vote.block).or_default();
        entry.insert(vote.voter.0, vote.signature);
        if entry.len() < quorum {
            return;
        }
        // Assemble the certificate while the votes are at hand, so a
        // ranged-sync serve later can prove the notarization. Sorted by
        // voter for a deterministic aggregate.
        let mut sigs: Vec<(u16, Signature)> = entry.iter().map(|(i, s)| (*i, *s)).collect();
        if self.notarized.contains(&vote.block) {
            return;
        }
        self.notarized.insert(vote.block);
        sigs.sort_by_key(|(i, _)| *i);
        let agg = self.registry.table().aggregate(&sigs);
        self.notarization_certs.insert(
            vote.block,
            Notarization::from_votes(vote.round, vote.block, agg),
        );
        self.try_commit(&vote.block, now, actions);
    }

    /// Block-sync handling: serve single blocks, serve certified round
    /// ranges to rejoining replicas, and adopt served batches. Adoption is
    /// what reconnects a restarted replica's chain: its vote rule needs an
    /// unbroken notarized path to the longest tip, so without the
    /// downtime-gap blocks it could notarize and commit but never vote
    /// again.
    fn handle_sync(&mut self, from: ReplicaId, msg: SyncMsg, now: Time, actions: &mut Actions) {
        match msg {
            SyncMsg::Request { hash } => {
                if let Some((block, _)) = self.blocks.get(&hash) {
                    let block = block.clone();
                    actions.send(from, Message::Sync(SyncMsg::Response { block }));
                }
            }
            SyncMsg::Response { block } => {
                let hash = block.hash(self.cfg.payload_chunk);
                self.blocks.entry(hash).or_insert((block, 0));
            }
            SyncMsg::RequestRange {
                from_round,
                to_round,
            } => {
                self.serve_range(from, from_round, to_round, actions);
            }
            SyncMsg::ResponseBatch {
                blocks,
                notarizations,
            } => {
                for block in blocks {
                    let hash = block.hash(self.cfg.payload_chunk);
                    self.blocks.entry(hash).or_insert((block, 0));
                }
                for cert in notarizations {
                    self.adopt_notarization(cert, now, actions);
                }
            }
            SyncMsg::FrontierProbe => {
                // Drivers normally answer probes without engine delivery;
                // answering here too keeps blindly-forwarding drivers
                // correct (the reply is a pure function of state).
                actions.send(
                    from,
                    Message::Sync(SyncMsg::FrontierInfo {
                        finalized: self.committed_round,
                    }),
                );
            }
            SyncMsg::FrontierInfo { .. } => {
                // Consumed by the driver's CatchUpState.
            }
        }
    }

    /// Serves a ranged catch-up fetch: every notarized block we hold a
    /// certificate for in `from..=to` (capped), ascending by epoch.
    fn serve_range(
        &self,
        from: ReplicaId,
        from_round: Round,
        to_round: Round,
        actions: &mut Actions,
    ) {
        /// Epochs served per request (bounds response size).
        const MAX_RANGE: u64 = 64;
        let lo = from_round.0.max(1);
        let hi = to_round.0.min(lo.saturating_add(MAX_RANGE - 1));
        let mut served: Vec<(u64, BlockHash)> = self
            .notarization_certs
            .values()
            .filter(|cert| (lo..=hi).contains(&cert.round.0))
            .map(|cert| (cert.round.0, cert.block))
            .collect();
        served.sort_unstable();
        let mut blocks = Vec::new();
        let mut notarizations = Vec::new();
        for (_, hash) in served {
            if let Some((block, _)) = self.blocks.get(&hash) {
                blocks.push(block.clone());
            }
            notarizations.push(self.notarization_certs[&hash].clone());
        }
        if !blocks.is_empty() || !notarizations.is_empty() {
            actions.send(
                from,
                Message::Sync(SyncMsg::ResponseBatch {
                    blocks,
                    notarizations,
                }),
            );
        }
    }

    /// Adopts a served notarization certificate: verify, mark the block
    /// notarized, and run the commit rule (a reconnected chain can commit
    /// the whole downtime gap at once).
    fn adopt_notarization(&mut self, cert: Notarization, now: Time, actions: &mut Actions) {
        if self.notarized.contains(&cert.block) {
            self.notarization_certs.entry(cert.block).or_insert(cert);
            return;
        }
        // Popcount gate before signature verification: empty aggregates
        // verify trivially under every scheme.
        if !cert.meets_quorum(self.quorum()) {
            return;
        }
        if self.cfg.verify_signatures {
            let msg = Vote::signing_message(VoteKind::Notarize, cert.round, &cert.block);
            if !self.verify.verify_aggregate(&msg, &cert.agg) {
                return;
            }
        }
        self.notarized.insert(cert.block);
        let block = cert.block;
        self.notarization_certs.insert(block, cert);
        self.try_commit(&block, now, actions);
    }

    /// Commit rule: notarized blocks in three consecutive epochs on one
    /// chain finalize the middle one (and its ancestors).
    fn try_commit(&mut self, tip: &BlockHash, now: Time, actions: &mut Actions) {
        // tip = e3; parent = e2; grandparent = e1. Epochs must be
        // consecutive; then e2 and ancestors commit.
        let Some((b3, _)) = self.blocks.get(tip) else {
            return;
        };
        let e3 = b3.round.0;
        let p2 = b3.parent;
        if p2 == BlockHash::ZERO || !self.notarized.contains(&p2) {
            return;
        }
        let Some((b2, _)) = self.blocks.get(&p2) else {
            return;
        };
        let e2 = b2.round.0;
        let p1 = b2.parent;
        let e1 = if p1 == BlockHash::ZERO {
            // Genesis counts as epoch 0; the rule needs three *blocks*,
            // but Streamlet's standard statement allows committing the
            // second block when the first two epochs are 1,2 on genesis.
            if e2 >= 2 {
                return;
            }
            0
        } else {
            if !self.notarized.contains(&p1) {
                return;
            }
            let Some((b1, _)) = self.blocks.get(&p1) else {
                return;
            };
            b1.round.0
        };
        if e3 != e2 + 1 || (p1 != BlockHash::ZERO && e2 != e1 + 1) {
            return;
        }
        if Round(e2) <= self.committed_round {
            return;
        }
        // Commit b2 and its uncommitted ancestors, oldest first.
        let mut chain = Vec::new();
        let mut cursor = p2;
        while cursor != BlockHash::ZERO {
            let Some((blk, _)) = self.blocks.get(&cursor) else {
                break;
            };
            if blk.round <= self.committed_round {
                break;
            }
            chain.push((
                cursor,
                blk.round,
                blk.proposer,
                blk.payload.clone(),
                blk.proposed_at,
            ));
            cursor = blk.parent;
        }
        chain.reverse();
        let chain_len = chain.len();
        for (i, (hash, round, proposer, payload, proposed_at)) in chain.iter().enumerate() {
            actions.commit(CommitEntry {
                round: *round,
                block: *hash,
                proposer: *proposer,
                payload: payload.clone(),
                proposed_at: *proposed_at,
                committed_at: now,
                fast: false,
                explicit: i == chain_len - 1,
            });
        }
        if let Some((_, round, ..)) = chain.last() {
            self.committed_round = *round;
        }
    }
}

impl Engine for StreamletEngine {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn protocol_name(&self) -> &'static str {
        "streamlet"
    }

    fn on_init(&mut self, now: Time) -> Actions {
        let mut actions = Actions::none();
        // Epochs are lock-step wall-clock intervals (the paper's `2Δ`):
        // epoch `e` spans `[(e-1)·len, e·len)`, so a fresh engine at t=0
        // starts at epoch 1 and a restored one jumps straight to the
        // *current* epoch. Resuming the pre-crash counter instead would
        // leave the replica a full downtime's worth of epochs behind —
        // proposing into long-dead epochs nobody votes for, which starves
        // the three-consecutive-epochs commit rule cluster-wide. The
        // `self.epoch + 1` floor keeps any pre-crash vote unrepeatable
        // (`restore` parks `epoch` at the highest round it had stored).
        let wall = now.0 / self.epoch_len.0 + 1;
        let next = wall.max(self.epoch + 1);
        self.start_epoch(next, now, &mut actions);
        actions
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, now: Time) -> Actions {
        let mut actions = Actions::none();
        match msg {
            Message::Streamlet(StreamletMsg::Proposal { block }) => {
                self.handle_proposal(block, now, &mut actions);
            }
            Message::Streamlet(StreamletMsg::Vote(vote)) => {
                self.handle_vote(vote, now, &mut actions);
            }
            Message::Sync(sync) => {
                self.handle_sync(from, sync, now, &mut actions);
            }
            _ => {}
        }
        actions
    }

    fn on_timer(&mut self, kind: TimerKind, now: Time) -> Actions {
        let mut actions = Actions::none();
        if let TimerKind::EpochTick { epoch } = kind {
            if epoch == self.epoch + 1 {
                self.start_epoch(epoch, now, &mut actions);
            }
        }
        actions
    }

    fn current_round(&self) -> Round {
        Round(self.epoch)
    }

    fn finalized_round(&self) -> Round {
        self.committed_round
    }

    fn verify_stats(&self) -> VerifyStats {
        self.verify.stats()
    }

    fn set_verify_backend(&mut self, backend: Arc<dyn VerifyBackend>) {
        self.verify = backend;
    }

    fn snapshot(&self) -> ChainSnapshot {
        let mut snap = ChainSnapshot::default();
        for (hash, (block, _)) in &self.blocks {
            snap.blocks.push((*hash, block.clone()));
        }
        snap.notarized = self.notarized.iter().copied().collect();
        snap.notarizations = self.notarization_certs.values().cloned().collect();
        snap.committed_round = self.committed_round;
        snap.normalize();
        snap
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) {
        self.blocks.clear();
        self.votes.clear();
        self.notarized.clear();
        self.notarization_certs.clear();
        self.voted_epochs.clear();
        let mut max_seen = snapshot.committed_round.0;
        for (hash, block) in &snapshot.blocks {
            max_seen = max_seen.max(block.round.0);
            self.blocks.insert(*hash, (block.clone(), 0));
        }
        self.notarized.extend(snapshot.notarized.iter().copied());
        for cert in &snapshot.notarizations {
            self.notarization_certs.insert(cert.block, cert.clone());
        }
        self.committed_round = snapshot.committed_round;
        // Park one epoch short so `on_init` resumes at `max_seen + 1`.
        // Pre-crash votes can only exist in epochs ≤ max_seen (voting
        // requires the block to be stored first), so resuming beyond it
        // cannot equivocate.
        self.epoch = max_seen;
    }
}
