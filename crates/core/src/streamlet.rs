//! Streamlet baseline (Chan & Shi, AFT'20), as used by the paper's
//! evaluation through the Bamboo framework (§9.1).
//!
//! Streamlet advances in fixed-length epochs of `2Δ`:
//!
//! * the epoch's (round-robin) leader proposes a block extending the tip
//!   of a longest notarized chain;
//! * every replica votes (all-to-all) for the epoch's first valid leader
//!   proposal that extends a longest notarized chain;
//! * `⌈(n+f+1)/2⌉` votes notarize a block;
//! * three notarized blocks in **consecutive** epochs commit the middle
//!   one and its ancestors.
//!
//! Being a synchronous-epoch protocol, its latency is `O(Δ)` rather than
//! `O(δ)` — the paper's Table 1 lists `6Δ` finalization — which is why it
//! trails ICC/Banyan in every figure.

use std::collections::{HashMap, HashSet};

use banyan_crypto::beacon::Beacon;
use banyan_crypto::registry::KeyRegistry;
use banyan_crypto::Signature;
use banyan_types::app::{ProposalContext, ProposalSource};
use banyan_types::block::Block;
use banyan_types::config::ProtocolConfig;
use banyan_types::engine::{Actions, CommitEntry, Engine, TimerKind};
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{Message, StreamletMsg};
use banyan_types::time::{Duration, Time};
use banyan_types::vote::{Vote, VoteKind};

/// The Streamlet replica engine.
pub struct StreamletEngine {
    cfg: ProtocolConfig,
    id: ReplicaId,
    beacon: Beacon,
    registry: KeyRegistry,
    /// All received blocks with their chain length (genesis = length 0).
    blocks: HashMap<BlockHash, (Block, u64)>,
    /// Votes per block.
    votes: HashMap<BlockHash, HashMap<u16, Signature>>,
    /// Notarized blocks.
    notarized: HashSet<BlockHash>,
    /// Epoch we are in.
    epoch: u64,
    /// Epochs we have voted in.
    voted_epochs: HashSet<u64>,
    /// Epoch length (the paper's `2Δ`).
    epoch_len: Duration,
    /// Highest committed round (epoch) so far.
    committed_round: Round,
    /// Where block payloads come from.
    source: Box<dyn ProposalSource>,
}

impl std::fmt::Debug for StreamletEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamletEngine")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("committed_round", &self.committed_round)
            .finish_non_exhaustive()
    }
}

impl StreamletEngine {
    /// Creates a replica engine. `epoch_len` should be `2Δ`.
    pub fn new(
        cfg: ProtocolConfig,
        registry: KeyRegistry,
        beacon: Beacon,
        source: Box<dyn ProposalSource>,
        epoch_len: Duration,
    ) -> Self {
        assert_eq!(beacon.n(), cfg.n(), "beacon sized for the cluster");
        let id = ReplicaId(registry.my_index());
        StreamletEngine {
            cfg,
            id,
            beacon,
            registry,
            blocks: HashMap::new(),
            votes: HashMap::new(),
            notarized: HashSet::new(),
            epoch: 0,
            voted_epochs: HashSet::new(),
            epoch_len,
            committed_round: Round::GENESIS,
            source,
        }
    }

    fn quorum(&self) -> usize {
        self.cfg.notarization_quorum()
    }

    fn leader(&self, epoch: u64) -> ReplicaId {
        ReplicaId(self.beacon.leader(epoch.saturating_sub(1)))
    }

    /// Length of the notarized chain ending at `hash` (genesis = 0), or
    /// `None` if the chain is broken or not fully notarized.
    fn notarized_chain_len(&self, hash: &BlockHash) -> Option<u64> {
        if *hash == BlockHash::ZERO {
            return Some(0);
        }
        if !self.notarized.contains(hash) {
            return None;
        }
        let (block, _) = self.blocks.get(hash)?;
        self.notarized_chain_len(&block.parent).map(|l| l + 1)
    }

    /// Tip of a longest notarized chain (genesis if none). Deterministic
    /// tie-break on the hash.
    fn longest_notarized_tip(&self) -> (BlockHash, u64) {
        let mut best = (BlockHash::ZERO, 0u64);
        let mut tips: Vec<&BlockHash> = self.notarized.iter().collect();
        tips.sort();
        for hash in tips {
            if let Some(len) = self.notarized_chain_len(hash) {
                if len > best.1 || (len == best.1 && *hash < best.0) {
                    best = (*hash, len);
                }
            }
        }
        best
    }

    fn start_epoch(&mut self, epoch: u64, now: Time, actions: &mut Actions) {
        self.epoch = epoch;
        // Arm the next epoch boundary.
        actions.arm(
            now + self.epoch_len,
            TimerKind::EpochTick { epoch: epoch + 1 },
        );
        if self.leader(epoch) == self.id {
            let (parent, _) = self.longest_notarized_tip();
            let ctx = self.proposal_context(Round(epoch), parent, now);
            let mut block = Block {
                round: Round(epoch),
                proposer: self.id,
                rank: Rank(0),
                parent,
                proposed_at: now,
                payload: self.source.next_payload(&ctx),
                signature: Signature::zero(),
            };
            let hash = block.hash(self.cfg.payload_chunk);
            block.signature = self.registry.sign(&Block::signing_message(&hash));
            actions.broadcast(Message::Streamlet(StreamletMsg::Proposal {
                block: block.clone(),
            }));
            self.handle_proposal(block, now, actions);
        }
    }

    /// The chain position for the `ProposalSource`: the tip being extended
    /// plus every uncommitted ancestor down to — excluding — the last
    /// committed epoch. Streamlet's commit rule always leaves the newest
    /// notarized block (and often more) uncommitted, the commit lag that
    /// made blind drains re-batch ancestors' requests.
    ///
    /// Invariant: stopping at `committed_round` satisfies the mempool's
    /// "ancestors reach the newest *routed* commit" contract only because
    /// Streamlet proposes exclusively as the first action of an epoch
    /// tick — no commit can precede the drain within one event. A future
    /// propose-from-`on_message` path must snapshot the committed round
    /// at event entry instead (see HotStuff's `routed_committed_round`).
    fn proposal_context(&self, round: Round, parent: BlockHash, now: Time) -> ProposalContext {
        let mut ancestors = Vec::new();
        let mut cursor = parent;
        while cursor != BlockHash::ZERO {
            let Some((block, _)) = self.blocks.get(&cursor) else {
                break;
            };
            if block.round <= self.committed_round {
                break;
            }
            ancestors.push(cursor);
            cursor = block.parent;
        }
        ProposalContext {
            round,
            now,
            parent,
            ancestors,
        }
    }

    fn handle_proposal(&mut self, block: Block, now: Time, actions: &mut Actions) {
        let epoch = block.round.0;
        if epoch == 0 || block.proposer != self.leader(epoch) {
            return;
        }
        let hash = block.hash(self.cfg.payload_chunk);
        if self.blocks.contains_key(&hash) {
            return;
        }
        if self.cfg.verify_signatures
            && !self.registry.table().verify(
                block.proposer.0,
                &Block::signing_message(&hash),
                &block.signature,
            )
        {
            return;
        }
        self.blocks.insert(hash, (block.clone(), 0));

        // Vote if we haven't voted this epoch and the proposal extends a
        // longest notarized chain.
        let (_, longest) = self.longest_notarized_tip();
        let parent_len = self.notarized_chain_len(&block.parent);
        if !self.voted_epochs.contains(&epoch) && epoch >= self.epoch && parent_len == Some(longest)
        {
            self.voted_epochs.insert(epoch);
            let msg = Vote::signing_message(VoteKind::Notarize, block.round, &hash);
            let vote = Vote {
                kind: VoteKind::Notarize,
                round: block.round,
                block: hash,
                voter: self.id,
                signature: self.registry.sign(&msg),
            };
            actions.broadcast(Message::Streamlet(StreamletMsg::Vote(vote)));
            self.handle_vote(vote, now, actions);
        }
    }

    fn handle_vote(&mut self, vote: Vote, now: Time, actions: &mut Actions) {
        if vote.kind != VoteKind::Notarize {
            return;
        }
        if self.cfg.verify_signatures
            && !self
                .registry
                .table()
                .verify(vote.voter.0, &vote.message(), &vote.signature)
        {
            return;
        }
        let entry = self.votes.entry(vote.block).or_default();
        entry.insert(vote.voter.0, vote.signature);
        if entry.len() >= self.quorum() && !self.notarized.contains(&vote.block) {
            self.notarized.insert(vote.block);
            self.try_commit(&vote.block, now, actions);
        }
    }

    /// Commit rule: notarized blocks in three consecutive epochs on one
    /// chain finalize the middle one (and its ancestors).
    fn try_commit(&mut self, tip: &BlockHash, now: Time, actions: &mut Actions) {
        // tip = e3; parent = e2; grandparent = e1. Epochs must be
        // consecutive; then e2 and ancestors commit.
        let Some((b3, _)) = self.blocks.get(tip) else {
            return;
        };
        let e3 = b3.round.0;
        let p2 = b3.parent;
        if p2 == BlockHash::ZERO || !self.notarized.contains(&p2) {
            return;
        }
        let Some((b2, _)) = self.blocks.get(&p2) else {
            return;
        };
        let e2 = b2.round.0;
        let p1 = b2.parent;
        let e1 = if p1 == BlockHash::ZERO {
            // Genesis counts as epoch 0; the rule needs three *blocks*,
            // but Streamlet's standard statement allows committing the
            // second block when the first two epochs are 1,2 on genesis.
            if e2 >= 2 {
                return;
            }
            0
        } else {
            if !self.notarized.contains(&p1) {
                return;
            }
            let Some((b1, _)) = self.blocks.get(&p1) else {
                return;
            };
            b1.round.0
        };
        if e3 != e2 + 1 || (p1 != BlockHash::ZERO && e2 != e1 + 1) {
            return;
        }
        if Round(e2) <= self.committed_round {
            return;
        }
        // Commit b2 and its uncommitted ancestors, oldest first.
        let mut chain = Vec::new();
        let mut cursor = p2;
        while cursor != BlockHash::ZERO {
            let Some((blk, _)) = self.blocks.get(&cursor) else {
                break;
            };
            if blk.round <= self.committed_round {
                break;
            }
            chain.push((
                cursor,
                blk.round,
                blk.proposer,
                blk.payload.clone(),
                blk.proposed_at,
            ));
            cursor = blk.parent;
        }
        chain.reverse();
        let chain_len = chain.len();
        for (i, (hash, round, proposer, payload, proposed_at)) in chain.iter().enumerate() {
            actions.commit(CommitEntry {
                round: *round,
                block: *hash,
                proposer: *proposer,
                payload: payload.clone(),
                proposed_at: *proposed_at,
                committed_at: now,
                fast: false,
                explicit: i == chain_len - 1,
            });
        }
        if let Some((_, round, ..)) = chain.last() {
            self.committed_round = *round;
        }
    }
}

impl Engine for StreamletEngine {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn protocol_name(&self) -> &'static str {
        "streamlet"
    }

    fn on_init(&mut self, now: Time) -> Actions {
        let mut actions = Actions::none();
        self.start_epoch(1, now, &mut actions);
        actions
    }

    fn on_message(&mut self, _from: ReplicaId, msg: Message, now: Time) -> Actions {
        let mut actions = Actions::none();
        match msg {
            Message::Streamlet(StreamletMsg::Proposal { block }) => {
                self.handle_proposal(block, now, &mut actions);
            }
            Message::Streamlet(StreamletMsg::Vote(vote)) => {
                self.handle_vote(vote, now, &mut actions);
            }
            _ => {}
        }
        actions
    }

    fn on_timer(&mut self, kind: TimerKind, now: Time) -> Actions {
        let mut actions = Actions::none();
        if let TimerKind::EpochTick { epoch } = kind {
            if epoch == self.epoch + 1 {
                self.start_epoch(epoch, now, &mut actions);
            }
        }
        actions
    }

    fn current_round(&self) -> Round {
        Round(self.epoch)
    }
}
