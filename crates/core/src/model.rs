//! Analytic latency/requirement model — the paper's **Table 1**.
//!
//! Table 1 compares SMR protocols on four analytic quantities, assuming
//! `n` equals each protocol's lower bound:
//!
//! * block **finalization latency** (in `δ` network delays, or `Δ` bounds
//!   for synchronous protocols);
//! * finalization **requirement** (how many replicas must respond);
//! * block **creation latency** and its requirement;
//! * the replica-count lower bound and rotating-leader support.
//!
//! [`table1`] reproduces the full table; the `table1` bench binary prints
//! it next to the measured step counts from the simulator.

/// Unit for a latency figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyUnit {
    /// Multiples of the true message delay `δ` (responsive protocols).
    Delta,
    /// Multiples of the pessimistic bound `Δ` (synchronous protocols).
    CapitalDelta,
    /// Order-of `Δ` (constants unspecified in the source).
    BigODelta,
}

/// One latency figure, e.g. `2δ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latency {
    /// Multiplier.
    pub steps: u32,
    /// Unit.
    pub unit: LatencyUnit,
}

impl std::fmt::Display for Latency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.unit {
            LatencyUnit::Delta => write!(f, "{}δ", self.steps),
            LatencyUnit::CapitalDelta => write!(f, "{}Δ", self.steps),
            LatencyUnit::BigODelta => write!(f, "O(Δ)"),
        }
    }
}

/// A vote-count requirement expressed in `n`, `f`, `p` (e.g. `2f + 1`).
#[derive(Clone, Copy, Debug)]
pub struct Requirement {
    /// Human-readable formula, exactly as printed in Table 1.
    pub formula: &'static str,
    /// Evaluator over concrete `(f, p)`.
    pub eval: fn(f: usize, p: usize) -> usize,
}

impl Requirement {
    /// Evaluates the requirement for concrete parameters.
    pub fn value(&self, f: usize, p: usize) -> usize {
        (self.eval)(f, p)
    }
}

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct ProtocolRow {
    /// Protocol name.
    pub name: &'static str,
    /// Block finalization latency.
    pub finalization_latency: Latency,
    /// Replicas that must respond to finalize.
    pub finalization_requirement: Requirement,
    /// Block creation latency.
    pub creation_latency: Latency,
    /// Replicas that must respond to create the next block.
    pub creation_requirement: Option<Requirement>,
    /// Replica-count lower bound.
    pub replicas: Requirement,
    /// Supports rotating leaders.
    pub rotating_leaders: bool,
}

const D: LatencyUnit = LatencyUnit::Delta;
const CD: LatencyUnit = LatencyUnit::CapitalDelta;

fn req(formula: &'static str, eval: fn(usize, usize) -> usize) -> Requirement {
    Requirement { formula, eval }
}

/// The paper's Table 1, row by row.
pub fn table1() -> Vec<ProtocolRow> {
    vec![
        ProtocolRow {
            name: "Casper FFG",
            finalization_latency: Latency {
                steps: 1,
                unit: LatencyUnit::BigODelta,
            },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency {
                steps: 1,
                unit: LatencyUnit::BigODelta,
            },
            creation_requirement: None,
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: true,
        },
        ProtocolRow {
            name: "Fast HotStuff",
            finalization_latency: Latency { steps: 5, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: false,
        },
        ProtocolRow {
            name: "Jolteon",
            finalization_latency: Latency { steps: 5, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: false,
        },
        ProtocolRow {
            name: "PaLa",
            finalization_latency: Latency { steps: 4, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: false,
        },
        ProtocolRow {
            name: "Zelma",
            finalization_latency: Latency { steps: 2, unit: D },
            finalization_requirement: req("3f+p+1", |f, p| 3 * f + p + 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+p+1", |f, p| 2 * f + p + 1)),
            replicas: req("3f+2p+1", |f, p| 3 * f + 2 * p + 1),
            rotating_leaders: false,
        },
        ProtocolRow {
            name: "SBFT",
            finalization_latency: Latency { steps: 3, unit: D },
            finalization_requirement: req("3f+p+1", |f, p| 3 * f + p + 1),
            creation_latency: Latency { steps: 3, unit: D },
            creation_requirement: Some(req("2f+p+1", |f, p| 2 * f + p + 1)),
            replicas: req("3f+2p+1", |f, p| 3 * f + 2 * p + 1),
            rotating_leaders: false,
        },
        ProtocolRow {
            name: "Streamlet",
            finalization_latency: Latency { steps: 6, unit: CD },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 2, unit: CD },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: true,
        },
        ProtocolRow {
            name: "Bullshark",
            finalization_latency: Latency { steps: 4, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: true,
        },
        ProtocolRow {
            name: "BBCA-Chain",
            finalization_latency: Latency { steps: 3, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 3, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: true,
        },
        ProtocolRow {
            name: "ICC / Simplex",
            finalization_latency: Latency { steps: 3, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: true,
        },
        ProtocolRow {
            name: "Mysticeti",
            finalization_latency: Latency { steps: 3, unit: D },
            finalization_requirement: req("2f+1", |f, _| 2 * f + 1),
            creation_latency: Latency { steps: 1, unit: D },
            creation_requirement: Some(req("2f+1", |f, _| 2 * f + 1)),
            replicas: req("3f+1", |f, _| 3 * f + 1),
            rotating_leaders: true,
        },
        ProtocolRow {
            name: "Banyan",
            finalization_latency: Latency { steps: 2, unit: D },
            finalization_requirement: req("3f+p*-1", |f, p| 3 * f + p.max(1) - 1),
            creation_latency: Latency { steps: 2, unit: D },
            creation_requirement: Some(req("2f+p*", |f, p| 2 * f + p.max(1))),
            replicas: req("3f+2p*-1", |f, p| 3 * f + 2 * p.max(1) - 1),
            rotating_leaders: true,
        },
    ]
}

/// Renders Table 1 as aligned text (one line per protocol).
pub fn render_table1(f: usize, p: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>10} {:>9}\n",
        "protocol", "fin.lat", "fin.req", "creat.lat", "creat.req", "replicas", "rotating"
    ));
    for row in table1() {
        let fr = format!(
            "{}={}",
            row.finalization_requirement.formula,
            row.finalization_requirement.value(f, p)
        );
        let cr = row
            .creation_requirement
            .map(|r| format!("{}={}", r.formula, r.value(f, p)))
            .unwrap_or_else(|| "N/A".into());
        let nr = format!("{}={}", row.replicas.formula, row.replicas.value(f, p));
        out.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>10} {:>12} {:>10} {:>9}\n",
            row.name,
            row.finalization_latency.to_string(),
            fr,
            row.creation_latency.to_string(),
            cr,
            nr,
            if row.rotating_leaders { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str) -> ProtocolRow {
        table1()
            .into_iter()
            .find(|r| r.name == name)
            .expect("row exists")
    }

    #[test]
    fn banyan_matches_paper_table() {
        let b = row("Banyan");
        assert_eq!(b.finalization_latency.to_string(), "2δ");
        // f = 6, p* = 1: finalization requirement 3f + p − 1 = 18 = n − 1.
        assert_eq!(b.finalization_requirement.value(6, 1), 18);
        // f = 4, p* = 4: 3·4 + 4 − 1 = 15 = n − p.
        assert_eq!(b.finalization_requirement.value(4, 4), 15);
        assert_eq!(b.replicas.value(6, 1), 19);
        assert_eq!(b.replicas.value(4, 4), 19);
        assert!(b.rotating_leaders);
    }

    #[test]
    fn icc_is_3_delta_2f1() {
        let icc = row("ICC / Simplex");
        assert_eq!(icc.finalization_latency.to_string(), "3δ");
        assert_eq!(icc.finalization_requirement.value(6, 0), 13);
        assert_eq!(icc.replicas.value(6, 0), 19);
    }

    #[test]
    fn banyan_strictly_fastest_rotating_leader() {
        // Banyan's 2δ beats every other rotating-leader protocol's
        // finalization latency in the table.
        let banyan = row("Banyan").finalization_latency;
        for r in table1() {
            if r.rotating_leaders
                && r.name != "Banyan"
                && r.finalization_latency.unit == LatencyUnit::Delta
            {
                assert!(
                    r.finalization_latency.steps > banyan.steps,
                    "{} should be slower than Banyan",
                    r.name
                );
            }
        }
    }

    #[test]
    fn render_is_complete() {
        let txt = render_table1(6, 1);
        assert_eq!(txt.lines().count(), 1 + table1().len());
        assert!(txt.contains("Banyan"));
        assert!(txt.contains("Streamlet"));
        assert!(txt.contains("6Δ"));
    }
}
