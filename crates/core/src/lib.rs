//! Consensus engines for the Banyan BFT reproduction.
//!
//! The paper's contribution — **Banyan**, the first rotating-leader SMR
//! protocol finalizing in a single round trip — plus every protocol its
//! evaluation compares against:
//!
//! * [`chained`] — the ICC / Banyan family (one engine, two
//!   [`chained::PathMode`]s), including the Definition 7.6 unlock
//!   machinery and Byzantine behavior knobs;
//! * [`hotstuff`] — chained 3-phase HotStuff with a rotating leader;
//! * [`streamlet`] — Streamlet with fixed 2Δ epochs;
//! * [`store`] — the block tree shared by the chained engines;
//! * [`model`] — the analytic latency/requirement model behind the
//!   paper's Table 1;
//! * [`builder`] — convenience constructors wiring engines, PKI, beacon
//!   and per-replica [`banyan_types::app::ProposalSource`]s together for
//!   clusters.
//!
//! Engines never mint payloads themselves: each one pulls the next block
//! payload from its `ProposalSource` (a mempool, a client queue, or the
//! paper's size-only synthetic workload installed by
//! [`builder::ClusterBuilder::payload_size`]).
//!
//! # Examples
//!
//! Build a 4-replica Banyan cluster and drive it in-process:
//!
//! ```
//! use banyan_core::builder::ClusterBuilder;
//!
//! let engines = ClusterBuilder::new(4, 1, 1)   // n, f, p
//!     .expect("valid parameters")
//!     .payload_size(1024)  // shim: installs a FixedSizeSource per replica
//!     .build_banyan();
//! assert_eq!(engines.len(), 4);
//! ```

pub mod builder;
pub mod chained;
pub mod hotstuff;
pub mod model;
pub mod store;
pub mod streamlet;

pub use builder::{ClusterBuilder, VerifyPlaneConfig};
pub use chained::{ByzantineMode, ChainedEngine, PathMode};
pub use hotstuff::HotStuffEngine;
pub use store::BlockStore;
pub use streamlet::StreamletEngine;
