//! Fast votes and the *unlock* machinery — the heart of Banyan
//! (Definitions 6.2, 7.1–7.7 of the paper).
//!
//! Per round, a replica tracks the **support** `supp(b)` of every block:
//! the set of replicas it received a fast vote from, either individually
//! (broadcast `Votes` messages) or certified inside an [`UnlockProof`].
//! From the support table it evaluates Definition 7.6:
//!
//! 1. a block `b` is **unlocked** when
//!    `|supp(b) ∪ supp(nonLeaderBlocks)| > f + p`;
//! 2. when `|supp(nonMaxBlocks)| > f + p`, **all** current and future
//!    blocks of the round are unlocked (`max` being the best-supported
//!    rank-0 block).
//!
//! The same table yields FP-finalization (`n − p` fast votes for a rank-0
//! block, Addition 4) and unlock-proof construction (Definition 7.7).

use std::collections::{BTreeMap, HashMap};

use banyan_crypto::registry::PublicKeyTable;
use banyan_crypto::{AggregateSignature, Signature, SignerBitmap};
use banyan_types::certs::{UnlockEntry, UnlockProof};
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::vote::{Vote, VoteKind};

/// Per-block support record.
#[derive(Clone, Debug, Default)]
struct Support {
    /// Individually received fast-vote signatures, by voter.
    indiv: BTreeMap<u16, Signature>,
    /// Certified support adopted from unlock proofs / certificates.
    /// Kept pruned: an aggregate subsumed by the union of the others plus
    /// `indiv` is dropped.
    certified: Vec<AggregateSignature>,
}

impl Support {
    /// Union of individual voters and certified bitmaps.
    fn voters(&self, n: usize) -> SignerBitmap {
        let mut bm = SignerBitmap::new(n);
        for &voter in self.indiv.keys() {
            if (voter as usize) < n {
                bm.set(voter);
            }
        }
        for agg in &self.certified {
            for idx in agg.signers.iter() {
                if (idx as usize) < n {
                    bm.set(idx);
                }
            }
        }
        bm
    }
}

/// One round's fast-vote table and unlock status.
#[derive(Clone, Debug)]
pub struct UnlockState {
    round: Round,
    n: usize,
    /// `> threshold` support unlocks (threshold = f + p).
    threshold: usize,
    support: HashMap<BlockHash, Support>,
    /// Rank of each block support refers to (from the block itself or from
    /// proof entries). Blocks with unknown rank are not counted by the
    /// unlock conditions — Definition 7.1 only ranges over received
    /// blocks.
    ranks: HashMap<BlockHash, Rank>,
    /// Sticky flag for condition 2 ("all current and future blocks ...
    /// are unlocked").
    all_unlocked: bool,
}

impl UnlockState {
    /// Fresh table for one round.
    pub fn new(round: Round, n: usize, threshold: usize) -> Self {
        UnlockState {
            round,
            n,
            threshold,
            support: HashMap::new(),
            ranks: HashMap::new(),
            all_unlocked: false,
        }
    }

    /// Records the rank of a block (when the block itself arrives, or when
    /// an unlock-proof entry declares it).
    pub fn observe_block(&mut self, hash: BlockHash, rank: Rank) {
        self.ranks.entry(hash).or_insert(rank);
    }

    /// Adds an individually received fast vote. Returns `true` if new.
    pub fn add_fast_vote(&mut self, block: BlockHash, voter: ReplicaId, sig: Signature) -> bool {
        let entry = self.support.entry(block).or_default();
        entry.indiv.insert(voter.0, sig).is_none()
    }

    /// Adopts certified support (an unlock-proof entry or fast cert).
    pub fn add_certified(&mut self, block: BlockHash, rank: Rank, agg: AggregateSignature) {
        self.observe_block(block, rank);
        let entry = self.support.entry(block).or_default();
        // Skip aggregates that add no new voter.
        let before = entry.voters(self.n).count();
        let mut with: SignerBitmap = entry.voters(self.n);
        for idx in agg.signers.iter() {
            if (idx as usize) < self.n {
                with.set(idx);
            }
        }
        if with.count() > before {
            entry.certified.push(agg);
        }
    }

    /// `|supp(b)|` — distinct replicas supporting `b`.
    pub fn supp(&self, block: &BlockHash) -> usize {
        self.support
            .get(block)
            .map_or(0, |s| s.voters(self.n).count())
    }

    /// Distinct replicas supporting any block in `blocks`.
    fn supp_union<'a>(&self, blocks: impl Iterator<Item = &'a BlockHash>) -> usize {
        let mut bm = SignerBitmap::new(self.n);
        for b in blocks {
            if let Some(s) = self.support.get(b) {
                for idx in s.voters(self.n).iter() {
                    bm.set(idx);
                }
            }
        }
        bm.count()
    }

    /// `max(k)`: among known rank-0 blocks, the one with the largest
    /// support (Definition 7.2). Ties break on the smaller hash so every
    /// replica picks deterministically.
    pub fn max_block(&self) -> Option<BlockHash> {
        self.ranks
            .iter()
            .filter(|(_, r)| r.is_leader())
            .map(|(h, _)| (*h, self.supp(h)))
            .max_by(|(ha, sa), (hb, sb)| sa.cmp(sb).then_with(|| hb.cmp(ha)))
            .map(|(h, _)| h)
    }

    /// Evaluates Definition 7.6 for `block`. `true` if unlocked.
    ///
    /// Condition 2, once satisfied, covers all current **and future**
    /// blocks of the round (the flag is sticky).
    pub fn is_unlocked(&mut self, block: &BlockHash) -> bool {
        if self.all_unlocked {
            return true;
        }
        // Condition 2 first (it may be newly satisfied).
        let max = self.max_block();
        let non_max: Vec<&BlockHash> = self.ranks.keys().filter(|h| Some(**h) != max).collect();
        if self.supp_union(non_max.into_iter()) > self.threshold {
            self.all_unlocked = true;
            return true;
        }
        // Condition 1: supp(b) ∪ supp(nonLeaderBlocks).
        let mut set: Vec<&BlockHash> = self
            .ranks
            .iter()
            .filter(|(_, r)| !r.is_leader())
            .map(|(h, _)| h)
            .collect();
        if self.ranks.contains_key(block) || self.support.contains_key(block) {
            set.push(block);
        }
        self.supp_union(set.into_iter()) > self.threshold
    }

    /// True once condition 2 fired for this round.
    pub fn round_fully_unlocked(&self) -> bool {
        self.all_unlocked
    }

    /// A rank-0 block with at least `quorum` fast votes, if any
    /// (Addition 4: FP-finalization).
    pub fn fast_finalizable(&self, quorum: usize) -> Option<BlockHash> {
        self.ranks
            .iter()
            .filter(|(_, r)| r.is_leader())
            .map(|(h, _)| *h)
            .find(|h| self.supp(h) >= quorum)
    }

    /// Builds an aggregate over the individually held fast votes for
    /// `block` (for FP-finalization certificates).
    pub fn aggregate_indiv(&self, table: &PublicKeyTable, block: &BlockHash) -> AggregateSignature {
        let votes: Vec<(u16, Signature)> = self
            .support
            .get(block)
            .map(|s| s.indiv.iter().map(|(v, sig)| (*v, *sig)).collect())
            .unwrap_or_default();
        table.aggregate(&votes)
    }

    /// Number of individually held fast votes for `block`.
    pub fn indiv_count(&self, block: &BlockHash) -> usize {
        self.support.get(block).map_or(0, |s| s.indiv.len())
    }

    /// Builds an unlock proof covering the whole round's support
    /// (Definition 7.7, naive variant): one entry per (block, source),
    /// individual votes aggregated plus certified aggregates passed
    /// through.
    pub fn build_proof(&self, table: &PublicKeyTable) -> UnlockProof {
        let mut entries = Vec::new();
        // Deterministic order: sort blocks by hash.
        let mut blocks: Vec<&BlockHash> = self.support.keys().collect();
        blocks.sort();
        for hash in blocks {
            let Some(rank) = self.ranks.get(hash) else {
                continue; // support for a block we can't rank is unusable
            };
            let s = &self.support[hash];
            if !s.indiv.is_empty() {
                let votes: Vec<(u16, Signature)> =
                    s.indiv.iter().map(|(v, sig)| (*v, *sig)).collect();
                entries.push(UnlockEntry {
                    block: *hash,
                    rank: *rank,
                    agg: table.aggregate(&votes),
                });
            }
            for agg in &s.certified {
                entries.push(UnlockEntry {
                    block: *hash,
                    rank: *rank,
                    agg: agg.clone(),
                });
            }
        }
        UnlockProof {
            round: self.round,
            entries,
        }
    }

    /// Verifies an unlock proof's aggregates and merges its support into
    /// this table. Returns `false` (without merging anything further) if
    /// any entry fails verification.
    ///
    /// Rank claims for blocks we have received are cross-checked; claims
    /// for unknown blocks are accepted as-is (the paper defers compact
    /// worst-case proofs to future work; a lying rank claim can only
    /// *delay* unlocking, never violate safety, because unlocking gates
    /// extension, not finalization).
    pub fn merge_proof(
        &mut self,
        proof: &UnlockProof,
        table: &PublicKeyTable,
        verify: bool,
    ) -> bool {
        self.merge_proof_with(
            proof,
            verify.then_some(|msg: &[u8], agg: &banyan_crypto::AggregateSignature| {
                table.verify_aggregate(msg, agg)
            }),
        )
    }

    /// [`UnlockState::merge_proof`] with a caller-supplied aggregate
    /// verifier, so engines can route the check through an instrumented
    /// [`banyan_crypto::VerifyBackend`] (batched, cached, counted) instead
    /// of the raw key table. `None` skips validation entirely (signature
    /// checks *and* the rank cross-check), exactly like
    /// `merge_proof(.., verify = false)`.
    pub fn merge_proof_with(
        &mut self,
        proof: &UnlockProof,
        verify_aggregate: Option<impl Fn(&[u8], &banyan_crypto::AggregateSignature) -> bool>,
    ) -> bool {
        if proof.round != self.round {
            return false;
        }
        if let Some(verify_aggregate) = verify_aggregate {
            for entry in &proof.entries {
                let msg = Vote::signing_message(VoteKind::Fast, proof.round, &entry.block);
                if !verify_aggregate(&msg, &entry.agg) {
                    return false;
                }
                if let Some(known) = self.ranks.get(&entry.block) {
                    if *known != entry.rank {
                        return false;
                    }
                }
            }
        }
        for entry in &proof.entries {
            self.add_certified(entry.block, entry.rank, entry.agg.clone());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_crypto::hashsig::HashSig;
    use banyan_crypto::registry::KeyRegistry;
    use std::sync::Arc;

    /// n = 4, f = 1, p = 1 ⇒ threshold f + p = 2, fast quorum n − p = 3.
    fn state() -> UnlockState {
        UnlockState::new(Round(1), 4, 2)
    }

    fn hash(tag: u8) -> BlockHash {
        BlockHash([tag; 32])
    }

    fn registries(n: usize) -> Vec<KeyRegistry> {
        (0..n)
            .map(|i| KeyRegistry::generate(Arc::new(HashSig), 5, n, i as u16))
            .collect()
    }

    fn fast_vote(reg: &KeyRegistry, round: Round, block: BlockHash) -> Vote {
        let msg = Vote::signing_message(VoteKind::Fast, round, &block);
        Vote {
            kind: VoteKind::Fast,
            round,
            block,
            voter: ReplicaId(reg.my_index()),
            signature: reg.sign(&msg),
        }
    }

    #[test]
    fn condition1_unlocks_well_supported_leader_block() {
        let mut s = state();
        let b0 = hash(1);
        s.observe_block(b0, Rank(0));
        // 2 votes: not > 2 yet.
        s.add_fast_vote(b0, ReplicaId(0), Signature::zero());
        s.add_fast_vote(b0, ReplicaId(1), Signature::zero());
        assert!(!s.is_unlocked(&b0));
        // 3rd vote: supp = 3 > 2 → unlocked.
        s.add_fast_vote(b0, ReplicaId(2), Signature::zero());
        assert!(s.is_unlocked(&b0));
        assert!(!s.round_fully_unlocked(), "condition 2 not triggered");
    }

    #[test]
    fn condition1_counts_nonleader_support_for_any_block() {
        // Figure 4, round k: r-0 block with 2 FaV, r-1 block with 1 FaV:
        // supp(b0) ∪ supp(nonLeader) = 3 > 2 → r-0 block unlocked.
        let mut s = state();
        let b0 = hash(1);
        let b1 = hash(2);
        s.observe_block(b0, Rank(0));
        s.observe_block(b1, Rank(1));
        s.add_fast_vote(b0, ReplicaId(0), Signature::zero());
        s.add_fast_vote(b0, ReplicaId(1), Signature::zero());
        s.add_fast_vote(b1, ReplicaId(2), Signature::zero());
        assert!(s.is_unlocked(&b0));
        // The non-leader block only has supp ∪ nonLeader = {2} ∪ {2} = 1.
        // But wait: supp(nonLeaderBlocks) = {2}; supp(b1) ∪ that = {2}.
        assert!(!s.is_unlocked(&b1));
    }

    #[test]
    fn condition2_unlocks_everything_including_future_blocks() {
        // Figure 4, round k+1: two rank-0 blocks (equivocating leader),
        // 2 FaV each. max = one of them; nonMax support = 2... need > 2.
        // Add a third vote on the non-max one.
        let mut s = state();
        let a = hash(1);
        let b = hash(2);
        s.observe_block(a, Rank(0));
        s.observe_block(b, Rank(0));
        s.add_fast_vote(a, ReplicaId(0), Signature::zero());
        s.add_fast_vote(a, ReplicaId(1), Signature::zero());
        s.add_fast_vote(b, ReplicaId(2), Signature::zero());
        s.add_fast_vote(b, ReplicaId(3), Signature::zero());
        // supports equal (2/2): max breaks tie deterministically; nonMax
        // has supp 2, not > 2.
        assert!(!s.is_unlocked(&a) || s.max_block() == Some(a));
        assert!(!s.round_fully_unlocked());
        // Double-voters push BOTH blocks to support 3. Whichever block is
        // `max`, the other (non-max) now has supp 3 > 2 → condition 2.
        s.add_fast_vote(a, ReplicaId(2), Signature::zero());
        s.add_fast_vote(b, ReplicaId(1), Signature::zero());
        assert!(s.is_unlocked(&a));
        assert!(s.is_unlocked(&b));
        assert!(s.round_fully_unlocked());
        // A block that appears later is unlocked immediately.
        let c = hash(9);
        s.observe_block(c, Rank(3));
        assert!(s.is_unlocked(&c));
    }

    #[test]
    fn max_block_prefers_higher_support() {
        let mut s = state();
        let a = hash(1);
        let b = hash(2);
        s.observe_block(a, Rank(0));
        s.observe_block(b, Rank(0));
        s.add_fast_vote(b, ReplicaId(0), Signature::zero());
        assert_eq!(s.max_block(), Some(b));
        s.add_fast_vote(a, ReplicaId(1), Signature::zero());
        s.add_fast_vote(a, ReplicaId(2), Signature::zero());
        assert_eq!(s.max_block(), Some(a));
    }

    #[test]
    fn fast_finalizable_needs_rank0_and_quorum() {
        let mut s = state();
        let b0 = hash(1);
        let b1 = hash(2);
        s.observe_block(b0, Rank(0));
        s.observe_block(b1, Rank(1));
        for i in 0..3 {
            s.add_fast_vote(b1, ReplicaId(i), Signature::zero());
        }
        // b1 has 3 votes but is not rank 0.
        assert_eq!(s.fast_finalizable(3), None);
        for i in 0..2 {
            s.add_fast_vote(b0, ReplicaId(i), Signature::zero());
        }
        assert_eq!(s.fast_finalizable(3), None, "2 < quorum 3");
        s.add_fast_vote(b0, ReplicaId(3), Signature::zero());
        assert_eq!(s.fast_finalizable(3), Some(b0));
    }

    #[test]
    fn duplicate_votes_counted_once() {
        let mut s = state();
        let b = hash(1);
        s.observe_block(b, Rank(0));
        assert!(s.add_fast_vote(b, ReplicaId(0), Signature::zero()));
        assert!(!s.add_fast_vote(b, ReplicaId(0), Signature::zero()));
        assert_eq!(s.supp(&b), 1);
    }

    #[test]
    fn byzantine_double_votes_count_per_block() {
        // A Byzantine replica fast-voting two blocks appears in both
        // supports (Definition 7.1 allows this; Lemma 8.1 relies on it).
        let mut s = state();
        let a = hash(1);
        let b = hash(2);
        s.observe_block(a, Rank(0));
        s.observe_block(b, Rank(0));
        s.add_fast_vote(a, ReplicaId(0), Signature::zero());
        s.add_fast_vote(b, ReplicaId(0), Signature::zero());
        assert_eq!(s.supp(&a), 1);
        assert_eq!(s.supp(&b), 1);
    }

    #[test]
    fn proof_roundtrip_with_real_signatures() {
        let regs = registries(4);
        let table = regs[0].table().clone();
        let round = Round(1);
        let b0 = hash(1);

        // Replica 3 collects 3 real fast votes for the leader block.
        let mut s = state();
        s.observe_block(b0, Rank(0));
        for reg in regs.iter().take(3) {
            let v = fast_vote(reg, round, b0);
            assert!(s.add_fast_vote(v.block, v.voter, v.signature));
        }
        assert!(s.is_unlocked(&b0));
        let proof = s.build_proof(&table);
        assert_eq!(proof.round, round);
        assert_eq!(proof.total_votes(), 3);

        // A fresh replica verifies and merges the proof; the block
        // unlocks for it too.
        let mut fresh = state();
        assert!(fresh.merge_proof(&proof, &table, true));
        assert_eq!(fresh.supp(&b0), 3);
        assert!(fresh.is_unlocked(&b0));
    }

    #[test]
    fn tampered_proof_rejected() {
        let regs = registries(4);
        let table = regs[0].table().clone();
        let round = Round(1);
        let b0 = hash(1);
        let mut s = state();
        s.observe_block(b0, Rank(0));
        for reg in regs.iter().take(3) {
            let v = fast_vote(reg, round, b0);
            s.add_fast_vote(v.block, v.voter, v.signature);
        }
        let mut proof = s.build_proof(&table);
        // Claim an extra signer that never voted.
        proof.entries[0].agg.signers.set(3);
        let mut fresh = state();
        assert!(!fresh.merge_proof(&proof, &table, true));
        assert_eq!(fresh.supp(&b0), 0, "nothing merged from a bad proof");
        // Without verification (trusted channel), merging is allowed.
        assert!(fresh.merge_proof(&proof, &table, false));
    }

    #[test]
    fn proof_for_wrong_round_rejected() {
        let regs = registries(4);
        let table = regs[0].table().clone();
        let s = UnlockState::new(Round(2), 4, 2);
        let proof = s.build_proof(&table);
        let mut other = state(); // round 1
        assert!(!other.merge_proof(&proof, &table, false));
    }

    #[test]
    fn rank_mismatch_rejected_when_block_known() {
        let regs = registries(4);
        let table = regs[0].table().clone();
        let round = Round(1);
        let b0 = hash(1);
        let mut s = state();
        s.observe_block(b0, Rank(0));
        let v = fast_vote(&regs[0], round, b0);
        s.add_fast_vote(v.block, v.voter, v.signature);
        let mut proof = s.build_proof(&table);
        proof.entries[0].rank = Rank(2); // lie about the rank

        let mut fresh = state();
        fresh.observe_block(b0, Rank(0)); // fresh replica has the block
        assert!(!fresh.merge_proof(&proof, &table, true));
    }

    #[test]
    fn certified_support_counts_toward_unlock() {
        let regs = registries(4);
        let table = regs[0].table().clone();
        let round = Round(1);
        let b0 = hash(1);
        let votes: Vec<(u16, Signature)> = regs
            .iter()
            .take(3)
            .map(|r| {
                let v = fast_vote(r, round, b0);
                (v.voter.0, v.signature)
            })
            .collect();
        let agg = table.aggregate(&votes);

        let mut s = state();
        s.add_certified(b0, Rank(0), agg);
        assert_eq!(s.supp(&b0), 3);
        assert!(s.is_unlocked(&b0));
        // Redundant aggregate adding no voters is dropped.
        let small = table.aggregate(&votes[..1]);
        s.add_certified(b0, Rank(0), small);
        assert_eq!(s.supp(&b0), 3);
    }
}
