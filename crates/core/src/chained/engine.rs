//! The ICC / Banyan engine — Algorithms 1 and 2 of the paper.
//!
//! Banyan "is defined by changes to the slow path algorithm (ICC)" (§7):
//! Restrictions 1–2 and Additions 1–4. Both protocols therefore share one
//! engine, parameterized by [`PathMode`]:
//!
//! * [`PathMode::IccOnly`] — pure slow path: no fast votes, no unlock
//!   tracking (every block is trivially unlocked), finalization only via
//!   `⌈(n+f+1)/2⌉` finalization votes.
//! * [`PathMode::Banyan`] — the full protocol: fast votes piggyback on the
//!   first notarization vote (Addition 3), rank-0 proposals carry the
//!   proposer's fast vote (Addition 2), round advancement broadcasts an
//!   unlock proof (Addition 1), and `n − p` fast votes FP-finalize a
//!   rank-0 block (Addition 4). Validity and round advancement respect the
//!   unlock conditions (Restrictions 1–2).
//!
//! The paper's claim that "even if the fast path is not effective, no
//! penalties are incurred" (and Fig. 6d's "when there are failures, the
//! performance of Banyan is exactly the one of ICC") is directly testable
//! here: the two modes differ only in the fast-path hooks.
//!
//! A [`ByzantineMode`] knob turns a replica into one of the adversaries
//! used by the safety test-suite (equivocating leader, silent leader,
//! double fast-voter).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use banyan_crypto::beacon::Beacon;
use banyan_crypto::registry::KeyRegistry;
use banyan_crypto::{DirectVerify, Signature, VerifyBackend, VerifyStats};
use banyan_types::app::{ProposalContext, ProposalSource};
use banyan_types::block::Block;
use banyan_types::certs::{FinalKind, Finalization, Notarization, UnlockProof};
use banyan_types::config::ProtocolConfig;
use banyan_types::engine::{Actions, CommitEntry, Engine, TimerKind};
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{ChainedMsg, Message, SyncMsg};
use banyan_types::time::Time;
use banyan_types::vote::{Vote, VoteKind};

use banyan_types::ChainSnapshot;

use crate::store::{BlockStore, ChainStore};

use super::round::RoundState;

/// Which protocol of the family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathMode {
    /// Internet Computer Consensus: slow path only.
    IccOnly,
    /// Banyan: integrated fast + slow path.
    Banyan,
}

/// Adversarial behaviors for safety/liveness/fairness testing. Honest
/// replicas use [`ByzantineMode::Honest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Follow the protocol.
    Honest,
    /// When leader (rank 0), propose two conflicting blocks, sending each
    /// to half of the peers (with a fast vote on each — the Lemma 8.1
    /// scenario). Otherwise behave honestly.
    EquivocateLeader,
    /// When leader, propose nothing (forces higher ranks to fill the
    /// round). Otherwise behave honestly.
    SilentLeader,
    /// Send fast votes for two different blocks when possible (violates
    /// the one-fast-vote-per-round rule honest replicas follow).
    DoubleFastVote,
    /// Censorship: whenever this replica proposes, it silently drops the
    /// targeted clients' requests from the batch it pulled from its
    /// `ProposalSource` (the block ships without them — protocol-valid,
    /// so no safety machinery triggers; only per-client fairness
    /// degrades). Requests censored this way were already drained from
    /// the local pool, so without client retry or gossip they are lost
    /// outright.
    CensorClients {
        /// The client ids whose requests are dropped.
        clients: Vec<u16>,
    },
    /// When optimistic pipelining is enabled and this replica leads the
    /// next round, it pipelines *two* conflicting optimistic proposals on
    /// the same uncertified parent, sending each to half of the peers.
    /// Otherwise behave honestly.
    EquivocateOptimistic,
}

/// Tuning for Moonshot-style optimistic proposal pipelining
/// ([`ChainedEngine::with_optimistic`]). Pipelining is off unless a
/// config is installed; every defaults-off code path is untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimisticConfig {
    /// Pipeline only on rank-0 (presumptive-winner) parents. Higher-rank
    /// round-`r` blocks rarely win their round, so optimistically
    /// extending them mostly mints abandoned blocks.
    pub leader_parents_only: bool,
}

impl Default for OptimisticConfig {
    fn default() -> Self {
        OptimisticConfig {
            leader_parents_only: true,
        }
    }
}

/// The engine's one in-flight optimistic proposal: a round-`r + 1` block
/// proposed on a received-but-uncertified round-`r` parent. Resolved on
/// round entry by `reconcile_optimistic`.
#[derive(Clone, Copy, Debug)]
struct PendingOptimistic {
    /// The optimistic block's round (`r + 1`).
    round: Round,
    /// The uncertified parent it extends.
    parent: BlockHash,
    /// The optimistic block itself.
    block: BlockHash,
}

/// How many rounds of state to keep behind the finalized tip.
const PRUNE_WINDOW: u64 = 8;

/// The ICC / Banyan replica engine. See the module docs.
pub struct ChainedEngine {
    cfg: ProtocolConfig,
    mode: PathMode,
    byz: ByzantineMode,
    id: ReplicaId,
    beacon: Beacon,
    registry: KeyRegistry,
    /// The verify plane: every signature and certificate check goes
    /// through this backend, so drivers can swap in a batched/cached
    /// (and shared, pre-warmed by transport workers) implementation.
    verify: Arc<dyn VerifyBackend>,
    store: Box<dyn ChainStore>,
    rounds: BTreeMap<Round, RoundState>,
    /// Current round `k`.
    round: Round,
    /// Highest explicitly finalized round (`kMax`).
    k_max: Round,
    /// Retained finalization certificates per round (also a broadcast
    /// dedup: present ⇒ already broadcast).
    finalizations: HashMap<Round, Finalization>,
    /// Finalizations waiting for their block (or ancestors) to arrive.
    pending_finalizations: Vec<Finalization>,
    /// `store.len()` at the last pending-finalization retry: a retry can
    /// only succeed after a missing ancestor arrived, so we skip the walk
    /// until the store grew (keeps the progress fixpoint loop from
    /// re-walking unreachable chains every event during catch-up).
    retry_store_len: usize,
    /// Hashes we already requested via sync (dedup).
    sync_requested: std::collections::HashSet<BlockHash>,
    /// Where block payloads come from (mempool, client queue, or the
    /// paper's size-only synthetic workload).
    source: Box<dyn ProposalSource>,
    /// Moonshot-style optimistic pipelining; `None` = disabled (default).
    optimistic: Option<OptimisticConfig>,
    /// The in-flight optimistic proposal, if any.
    pending_optimistic: Option<PendingOptimistic>,
    /// `k_max` as of the entry into the current engine event. The
    /// optimistic path proposes from `on_message`, where `progress` may
    /// advance `k_max` *within* the event after commits were routed; the
    /// proposal-context ancestor walk must stop at the frontier the
    /// driver has actually routed (see HotStuff's
    /// `routed_committed_round` for the same idiom).
    routed_k_max: Round,
}

impl std::fmt::Debug for ChainedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainedEngine")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("round", &self.round)
            .field("k_max", &self.k_max)
            .finish_non_exhaustive()
    }
}

impl ChainedEngine {
    /// Creates a replica engine.
    ///
    /// # Panics
    ///
    /// Panics if the registry's replica index disagrees with `beacon`'s
    /// cluster size or the configuration's `n`.
    pub fn new(
        cfg: ProtocolConfig,
        mode: PathMode,
        registry: KeyRegistry,
        beacon: Beacon,
        source: Box<dyn ProposalSource>,
    ) -> Self {
        assert_eq!(beacon.n(), cfg.n(), "beacon sized for the cluster");
        assert_eq!(
            registry.table().len(),
            cfg.n(),
            "registry sized for the cluster"
        );
        let id = ReplicaId(registry.my_index());
        let verify: Arc<dyn VerifyBackend> = Arc::new(DirectVerify::new(registry.table().clone()));
        ChainedEngine {
            cfg,
            mode,
            byz: ByzantineMode::Honest,
            id,
            beacon,
            registry,
            verify,
            store: Box::new(BlockStore::new()),
            rounds: BTreeMap::new(),
            round: Round(0),
            k_max: Round::GENESIS,
            finalizations: HashMap::new(),
            pending_finalizations: Vec::new(),
            retry_store_len: 0,
            sync_requested: std::collections::HashSet::new(),
            source,
            optimistic: None,
            pending_optimistic: None,
            routed_k_max: Round::GENESIS,
        }
    }

    /// Builder-style: sets an adversarial behavior.
    pub fn with_byzantine(mut self, byz: ByzantineMode) -> Self {
        self.byz = byz;
        self
    }

    /// Builder-style: enables Moonshot-style optimistic proposal
    /// pipelining — when this replica leads round `r + 1` and receives
    /// the round-`r` block before its certificate, it proposes on top of
    /// it immediately instead of waiting for the notarization.
    pub fn with_optimistic(mut self, cfg: OptimisticConfig) -> Self {
        self.optimistic = Some(cfg);
        self
    }

    /// Whether optimistic pipelining is enabled.
    pub fn optimistic_enabled(&self) -> bool {
        self.optimistic.is_some()
    }

    /// Builder-style: replaces the chain store (e.g. a recovered
    /// `banyan_storage::WalStore`). The finalized frontier is taken from
    /// the store, so a pre-loaded store makes this the crash-recovery
    /// constructor: build, `with_store(recovered)`, then `on_init`
    /// re-enters at the frontier.
    pub fn with_store(mut self, store: Box<dyn ChainStore>) -> Self {
        self.k_max = store.max_finalized_round();
        self.routed_k_max = self.k_max;
        self.store = store;
        self
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The path mode (ICC or Banyan).
    pub fn mode(&self) -> PathMode {
        self.mode
    }

    /// Highest explicitly finalized round.
    pub fn finalized_round(&self) -> Round {
        self.k_max
    }

    /// Read access to the block store (tests, tools).
    pub fn store(&self) -> &dyn ChainStore {
        self.store.as_ref()
    }

    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    fn fast_path(&self) -> bool {
        self.mode == PathMode::Banyan
    }

    fn round_state(&mut self, round: Round) -> &mut RoundState {
        let n = self.cfg.n();
        let thr = self.cfg.unlock_threshold();
        self.rounds
            .entry(round)
            .or_insert_with(|| RoundState::new(round, n, thr))
    }

    fn my_rank(&self, round: Round) -> Rank {
        Rank(self.beacon.rank(round.0, self.id.0))
    }

    fn make_vote(&self, kind: VoteKind, round: Round, block: BlockHash) -> Vote {
        let msg = Vote::signing_message(kind, round, &block);
        Vote {
            kind,
            round,
            block,
            voter: self.id,
            signature: self.registry.sign(&msg),
        }
    }

    fn verify_vote(&self, vote: &Vote) -> bool {
        if !self.cfg.verify_signatures {
            return true;
        }
        self.verify
            .verify(vote.voter.0, &vote.message(), &vote.signature)
    }

    /// Per-vote verdicts for a burst of votes, batched through the verify
    /// backend (one combined exponentiation check for the whole burst
    /// under a batching scheme, with per-item fallback on failure).
    fn verify_votes(&self, votes: &[Vote]) -> Vec<bool> {
        if !self.cfg.verify_signatures {
            return vec![true; votes.len()];
        }
        let msgs: Vec<Vec<u8>> = votes.iter().map(Vote::message).collect();
        let items: Vec<_> = votes
            .iter()
            .zip(&msgs)
            .map(|(v, m)| (v.voter.0, m.as_slice(), &v.signature))
            .collect();
        self.verify.verify_votes(&items)
    }

    /// Is `hash` (a round-`round` block) unlocked for this replica?
    /// In ICC mode every block is; genesis and finalized blocks always are
    /// (Definition 7.6).
    fn is_unlocked(&mut self, round: Round, hash: &BlockHash) -> bool {
        if !self.fast_path() || BlockStore::is_genesis(hash) {
            return true;
        }
        if self.store.is_finalized(round, hash) {
            return true;
        }
        self.round_state(round).unlock.is_unlocked(hash)
    }

    /// Algorithm 2 line 62: `valid(b)` — extends a notarized and unlocked
    /// round `k−1` block, is signed correctly (checked at receipt), and
    /// carries the proposer's fast vote if rank 0 (Banyan).
    fn is_valid(&mut self, hash: &BlockHash) -> bool {
        let Some(block) = self.store.get(hash) else {
            return false;
        };
        let (round, rank, parent) = (block.round, block.rank, block.parent);
        if round == Round::GENESIS {
            return false;
        }
        if round == Round(1) {
            if !BlockStore::is_genesis(&parent) {
                return false;
            }
        } else {
            let Some(parent_block) = self.store.get(&parent) else {
                return false;
            };
            if parent_block.round != round.prev() {
                return false;
            }
        }
        if !self.store.is_notarized(&parent) {
            return false;
        }
        if !self.is_unlocked(round.prev(), &parent) {
            return false;
        }
        if self.fast_path() && rank.is_leader() {
            // Rank-0 blocks must carry the proposer's fast vote.
            if !self.round_state(round).leader_fast_votes.contains_key(hash) {
                return false;
            }
        }
        true
    }

    /// Asks peers for a block we hold certificates for but never received.
    fn request_sync(&mut self, hash: BlockHash, actions: &mut Actions) {
        if self.sync_requested.insert(hash) {
            actions.broadcast(Message::Sync(SyncMsg::Request { hash }));
        }
    }

    // ------------------------------------------------------------------
    // Round lifecycle
    // ------------------------------------------------------------------

    fn enter_round(&mut self, round: Round, now: Time, actions: &mut Actions) {
        self.round = round;
        let rank = self.my_rank(round);
        let prop_delay = self.cfg.proposal_delay(rank.0);
        let rs = self.round_state(round);
        if rs.t0.is_none() {
            rs.t0 = Some(now);
        }
        let skip_proposal =
            rs.proposed || (self.byz == ByzantineMode::SilentLeader && rank.is_leader());
        if !skip_proposal {
            actions.arm(now + prop_delay, TimerKind::Propose { round: round.0 });
        }
        // Retransmission heartbeat: fires only if we are still stuck in
        // this round by then (recovery from message loss).
        actions.arm(
            now + self.cfg.heartbeat,
            TimerKind::RoundTimeout { round: round.0 },
        );
        // Bounded memory: drop state far behind the finalized tip.
        if round.0.is_multiple_of(16) && self.k_max.0 > PRUNE_WINDOW {
            let cutoff = Round(self.k_max.0 - PRUNE_WINDOW);
            self.store.prune_below(cutoff);
            self.rounds.retain(|r, _| *r >= cutoff);
            self.finalizations.retain(|r, _| *r >= cutoff);
        }
    }

    /// Algorithm 1 lines 23–31: propose a block for `round`.
    fn propose(&mut self, round: Round, now: Time, actions: &mut Actions) {
        if round != self.round {
            return; // stale timer
        }
        if self.round_state(round).proposed {
            return;
        }
        // Parent: a notarized (and unlocked) block of round − 1; prefer the
        // finalized one, then lowest rank, then smallest hash.
        let parent = self.pick_parent(round);
        let Some(parent) = parent else {
            return; // nothing extendable yet; a later event will retry via timers
        };
        self.round_state(round).proposed = true;

        let rank = self.my_rank(round);
        match self.byz {
            ByzantineMode::EquivocateLeader if rank.is_leader() => {
                self.propose_equivocating(round, parent, now, actions);
            }
            _ => {
                let (hash, block, fast_vote) = self.build_block(round, rank, parent, now, true);
                let msg = self.proposal_message(&block, &parent, fast_vote.as_ref());
                self.adopt_block(hash, block, fast_vote, now, actions);
                actions.broadcast(msg);
            }
        }
    }

    fn pick_parent(&mut self, round: Round) -> Option<BlockHash> {
        let prev = round.prev();
        if prev == Round::GENESIS {
            return Some(BlockHash::ZERO);
        }
        if let Some(finalized) = self.store.finalized(prev) {
            return Some(finalized);
        }
        let mut best: Option<(Rank, BlockHash)> = None;
        for hash in self.store.round_blocks(prev).to_vec() {
            if !self.store.is_notarized(&hash) || !self.is_unlocked(prev, &hash) {
                continue;
            }
            let rank = self
                .store
                .get(&hash)
                .map(|b| b.rank)
                .unwrap_or(Rank(u16::MAX));
            let candidate = (rank, hash);
            best = Some(match best {
                None => candidate,
                Some(cur) if candidate < cur => candidate,
                Some(cur) => cur,
            });
        }
        best.map(|(_, h)| h)
    }

    /// The censoring adversary's hook: drops targeted clients' requests
    /// from a freshly pulled batch, re-encoding the remainder. Non-batch
    /// payloads (synthetic, empty) and honest modes pass through
    /// untouched.
    fn censor(&self, payload: banyan_types::Payload) -> banyan_types::Payload {
        let ByzantineMode::CensorClients { clients } = &self.byz else {
            return payload;
        };
        let Some(mut batch) = banyan_mempool::WorkloadBatch::decode(&payload) else {
            return payload;
        };
        batch.requests.retain(|r| !clients.contains(&r.client));
        if batch.requests.is_empty() {
            banyan_types::Payload::empty()
        } else {
            batch.into_payload()
        }
    }

    /// The chain position handed to the `ProposalSource`: the parent plus
    /// the uncommitted ancestor chain (parent first, down to — excluding —
    /// the newest finalized block). An inclusion-aware source uses it to
    /// skip requests a live ancestor already carries; the engine itself
    /// never decodes a payload.
    ///
    /// Invariant: the walk stops at `routed_k_max` — the finalized
    /// frontier as of event entry — not the live `k_max`, because the
    /// mempool's contract is "ancestors reach the newest *routed*
    /// commit". The timer-driven `propose` runs before `progress`, so
    /// there the two are equal; the optimistic path proposes from
    /// `on_message` after `handle_proposal` may have finalized, and only
    /// the snapshot is safe (see HotStuff's `routed_committed_round`).
    fn proposal_context(&self, round: Round, parent: BlockHash, now: Time) -> ProposalContext {
        let mut ancestors = Vec::new();
        let mut cursor = parent;
        while !BlockStore::is_genesis(&cursor) {
            let Some(block) = self.store.get(&cursor) else {
                break; // missing ancestor (sync in flight): report what we hold
            };
            if block.round <= self.routed_k_max {
                break; // the finalized chain starts here
            }
            ancestors.push(cursor);
            cursor = block.parent;
        }
        ProposalContext {
            round,
            now,
            parent,
            ancestors,
        }
    }

    fn build_block(
        &mut self,
        round: Round,
        rank: Rank,
        parent: BlockHash,
        now: Time,
        attach_fast: bool,
    ) -> (BlockHash, Block, Option<Vote>) {
        let ctx = self.proposal_context(round, parent, now);
        let payload = self.source.next_payload(&ctx);
        let mut block = Block {
            round,
            proposer: self.id,
            rank,
            parent,
            proposed_at: now,
            payload: self.censor(payload),
            signature: Signature::zero(),
        };
        let hash = block.hash(self.cfg.payload_chunk);
        block.signature = self.registry.sign(&Block::signing_message(&hash));
        // Addition 2 / Algorithm 1 line 28: rank-0 proposals carry the
        // proposer's fast vote. The optimistic path withholds it until
        // the parent certifies (`attach_fast = false`), keeping the
        // one-fast-vote-per-round budget unspent while the parent's fate
        // is open.
        let fast_vote = (attach_fast && self.fast_path() && rank.is_leader())
            .then(|| self.make_vote(VoteKind::Fast, round, hash));
        (hash, block, fast_vote)
    }

    fn proposal_message(
        &mut self,
        block: &Block,
        parent: &BlockHash,
        fast_vote: Option<&Vote>,
    ) -> Message {
        let parent_notarization = self.store.notarization(parent).cloned();
        let parent_unlock = (self.fast_path() && block.round > Round(1)).then(|| {
            let table = self.registry.table().clone();
            self.round_state(block.round.prev())
                .unlock
                .build_proof(&table)
        });
        Message::Chained(ChainedMsg::Proposal {
            block: block.clone(),
            parent_notarization,
            parent_unlock,
            fast_vote: fast_vote.cloned(),
        })
    }

    /// Applies our own (or a received) block to local state.
    fn adopt_block(
        &mut self,
        hash: BlockHash,
        block: Block,
        fast_vote: Option<Vote>,
        _now: Time,
        _actions: &mut Actions,
    ) {
        let round = block.round;
        let rank = block.rank;
        let me = self.id;
        self.store.insert(hash, block);
        let rs = self.round_state(round);
        rs.unlock.observe_block(hash, rank);
        if let Some(v) = fast_vote {
            rs.leader_fast_votes.insert(hash, v);
            rs.unlock.add_fast_vote(hash, v.voter, v.signature);
            if v.voter == me {
                rs.fast_vote_sent = true;
                rs.our_votes.push(v);
            }
        }
    }

    /// Byzantine: two conflicting rank-0 proposals, one per half of the
    /// cluster.
    fn propose_equivocating(
        &mut self,
        round: Round,
        parent: BlockHash,
        now: Time,
        actions: &mut Actions,
    ) {
        let rank = self.my_rank(round);
        let (hash_a, block_a, fast_a) = self.build_block(round, rank, parent, now, true);
        let (hash_b, block_b, fast_b) = self.build_block(round, rank, parent, now, true);
        if hash_a == hash_b {
            // The source minted identical payloads (e.g. an empty mempool
            // twice): no equivocation is possible, so propose honestly.
            let msg = self.proposal_message(&block_a, &parent, fast_a.as_ref());
            self.adopt_block(hash_a, block_a, fast_a, now, actions);
            actions.broadcast(msg);
            return;
        }
        let msg_a = self.proposal_message(&block_a, &parent, fast_a.as_ref());
        let msg_b = self.proposal_message(&block_b, &parent, fast_b.as_ref());
        // Keep block A locally; also track B so we can serve sync requests.
        self.adopt_block(hash_a, block_a, fast_a, now, actions);
        self.adopt_block(hash_b, block_b, fast_b, now, actions);
        let n = self.cfg.n() as u16;
        for peer in 0..n {
            if peer == self.id.0 {
                continue;
            }
            let msg = if peer % 2 == 0 {
                msg_a.clone()
            } else {
                msg_b.clone()
            };
            actions.send(ReplicaId(peer), msg);
        }
    }

    // ------------------------------------------------------------------
    // Optimistic pipelining (Moonshot-style)
    // ------------------------------------------------------------------

    /// If we lead round `r + 1` and just received this round's (rank-0)
    /// block, propose on top of it immediately instead of waiting for
    /// its certificate — the block payload's broadcast then overlaps
    /// with the parent's certification.
    ///
    /// The proposal ships without a parent notarization (none exists
    /// yet) and, in Banyan mode, without our fast vote: the fast vote is
    /// withheld until the parent actually certifies (see
    /// `reconcile_optimistic`), so an abandoned optimistic block never
    /// spends our one-fast-vote-per-round budget and the fallback
    /// re-proposal is a fully valid rank-0 block.
    fn maybe_propose_optimistic(&mut self, received: BlockHash, now: Time, actions: &mut Actions) {
        let Some(ocfg) = self.optimistic else {
            return;
        };
        if self.pending_optimistic.is_some() {
            return;
        }
        let Some(block) = self.store.get(&received) else {
            return;
        };
        let (b_round, b_rank) = (block.round, block.rank);
        if b_round != self.round {
            return;
        }
        if ocfg.leader_parents_only && !b_rank.is_leader() {
            return;
        }
        let next = b_round.next();
        if !self.my_rank(next).is_leader() {
            return;
        }
        if self.round_state(next).proposed {
            return;
        }
        if self.store.is_notarized(&received) {
            return; // already certified: the normal propose path handles it
        }
        if !self.is_valid(&received) {
            return; // only extend a block we could ourselves vote for
        }
        self.round_state(next).proposed = true;
        let rank = self.my_rank(next);
        if self.byz == ByzantineMode::EquivocateOptimistic {
            let (hash_a, block_a, _) = self.build_block(next, rank, received, now, false);
            let (hash_b, block_b, _) = self.build_block(next, rank, received, now, false);
            if hash_a != hash_b {
                let msg_a = self.proposal_message(&block_a, &received, None);
                let msg_b = self.proposal_message(&block_b, &received, None);
                self.adopt_block(hash_a, block_a, None, now, actions);
                self.adopt_block(hash_b, block_b, None, now, actions);
                let n = self.cfg.n() as u16;
                for peer in 0..n {
                    if peer == self.id.0 {
                        continue;
                    }
                    let msg = if peer % 2 == 0 {
                        msg_a.clone()
                    } else {
                        msg_b.clone()
                    };
                    actions.send(ReplicaId(peer), msg);
                }
                self.pending_optimistic = Some(PendingOptimistic {
                    round: next,
                    parent: received,
                    block: hash_a,
                });
                return;
            }
            // Identical payloads: no equivocation possible, pipeline
            // honestly below.
        }
        let (hash, block, _) = self.build_block(next, rank, received, now, false);
        let msg = self.proposal_message(&block, &received, None);
        self.adopt_block(hash, block, None, now, actions);
        actions.broadcast(msg);
        self.pending_optimistic = Some(PendingOptimistic {
            round: next,
            parent: received,
            block: hash,
        });
    }

    /// Resolves the pending optimistic proposal when we are about to
    /// enter round `next`.
    ///
    /// * Parent certified (notarized + unlocked): the pipeline won. In
    ///   Banyan mode we now release the withheld fast vote for the
    ///   optimistic block — peers already hold its body, so this small
    ///   message is all that gates their votes.
    /// * Parent never certified: abandon. Clearing the round's
    ///   `proposed` flag re-arms the `Propose` timer on round entry, so
    ///   the normal path re-proposes on the certified parent (the
    ///   fallback). The abandoned block's drained requests come back via
    ///   the mempool's certificate-conflict lease release.
    fn reconcile_optimistic(&mut self, next: Round, actions: &mut Actions) {
        let Some(po) = self.pending_optimistic else {
            return;
        };
        if po.round > next {
            return; // not due yet
        }
        self.pending_optimistic = None;
        let parent_certified =
            self.store.is_notarized(&po.parent) && self.is_unlocked(po.round.prev(), &po.parent);
        if !parent_certified {
            self.round_state(po.round).proposed = false;
            return;
        }
        if po.round == next && self.fast_path() && !self.round_state(po.round).fast_vote_sent {
            let fast = self.make_vote(VoteKind::Fast, po.round, po.block);
            let me = self.id;
            let rs = self.round_state(po.round);
            rs.leader_fast_votes.insert(po.block, fast);
            rs.unlock.add_fast_vote(po.block, me, fast.signature);
            rs.fast_vote_sent = true;
            rs.our_votes.push(fast);
            actions.broadcast(Message::Chained(ChainedMsg::Votes(vec![fast])));
        }
    }

    // ------------------------------------------------------------------
    // Message intake
    // ------------------------------------------------------------------

    fn handle_proposal(
        &mut self,
        block: Block,
        parent_notarization: Option<Notarization>,
        parent_unlock: Option<UnlockProof>,
        fast_vote: Option<Vote>,
        now: Time,
        actions: &mut Actions,
    ) {
        // Attached evidence helps regardless of block validity.
        if let Some(cert) = parent_notarization {
            self.handle_notarization(cert, actions);
        }
        if let Some(proof) = parent_unlock {
            self.merge_unlock_proof(proof);
        }

        if block.round == Round::GENESIS {
            return;
        }
        let hash = block.hash(self.cfg.payload_chunk);
        // Rank must match the beacon's permutation for the round.
        let expected = Rank(self.beacon.rank(block.round.0, block.proposer.0));
        if block.rank != expected {
            return;
        }
        if self.cfg.verify_signatures
            && !self.verify.verify(
                block.proposer.0,
                &Block::signing_message(&hash),
                &block.signature,
            )
        {
            return;
        }
        // The attached fast vote must be the proposer's, for this block.
        let fast_vote = fast_vote.filter(|v| {
            v.kind == VoteKind::Fast
                && v.round == block.round
                && v.block == hash
                && v.voter == block.proposer
                && self.verify_vote(v)
        });
        self.adopt_block(hash, block, fast_vote, now, actions);
        self.sync_requested.remove(&hash);
        self.maybe_propose_optimistic(hash, now, actions);
        self.progress(now, actions);
    }

    fn handle_votes(&mut self, votes: Vec<Vote>, now: Time, actions: &mut Actions) {
        // One batched check for the whole burst instead of a verification
        // per vote; verdicts come back per-item either way.
        let verdicts = self.verify_votes(&votes);
        for (vote, ok) in votes.into_iter().zip(verdicts) {
            if !ok {
                continue;
            }
            // Optimistic pipelining ships rank-0 proposals without the
            // proposer's fast vote and releases it separately once the
            // parent certifies. A proposer's fast vote for its own
            // stored rank-0 block is the exact evidence Addition 2
            // demands, so accept it for validity through this channel
            // too (gated: defaults-off runs are bit-identical).
            let proposer_fast = self.optimistic.is_some()
                && vote.kind == VoteKind::Fast
                && self.store.get(&vote.block).is_some_and(|b| {
                    b.proposer == vote.voter && b.round == vote.round && b.rank.is_leader()
                });
            let rs = self.round_state(vote.round);
            match vote.kind {
                VoteKind::Notarize => {
                    rs.notarize_votes
                        .add(vote.block, vote.voter, vote.signature);
                }
                VoteKind::Finalize => {
                    rs.finalize_votes
                        .add(vote.block, vote.voter, vote.signature);
                }
                VoteKind::Fast => {
                    rs.unlock
                        .add_fast_vote(vote.block, vote.voter, vote.signature);
                    if proposer_fast {
                        rs.leader_fast_votes.entry(vote.block).or_insert(vote);
                    }
                }
            }
        }
        self.progress(now, actions);
    }

    fn handle_notarization(&mut self, cert: Notarization, actions: &mut Actions) {
        if self.store.is_notarized(&cert.block) {
            return;
        }
        // Gate on popcount before touching signatures: an empty or
        // below-quorum aggregate verifies trivially under every scheme.
        if !cert.meets_quorum(self.cfg.notarization_quorum()) {
            return;
        }
        if self.cfg.verify_signatures {
            let msg = Vote::signing_message(VoteKind::Notarize, cert.round, &cert.block);
            if !self.verify.verify_aggregate(&msg, &cert.agg) {
                return;
            }
            if let Some(fast_agg) = &cert.fast_agg {
                // Remark 7.8: the second multi-signature covers fast votes.
                let msg = Vote::signing_message(VoteKind::Fast, cert.round, &cert.block);
                if !self.verify.verify_aggregate(&msg, fast_agg) {
                    return;
                }
            }
        }
        // The fast votes inside a two-signature notarization are genuine
        // fast votes: feed them to the unlock machinery too.
        if let Some(fast_agg) = cert.fast_agg.clone() {
            if self.fast_path() {
                if let Some(rank) = self.store.get(&cert.block).map(|b| b.rank) {
                    self.round_state(cert.round)
                        .unlock
                        .add_certified(cert.block, rank, fast_agg);
                }
            }
        }
        let block = cert.block;
        self.store.mark_notarized(block, Some(cert));
        if !self.store.contains(&block) {
            self.request_sync(block, actions);
        }
    }

    fn merge_unlock_proof(&mut self, proof: UnlockProof) {
        if !self.fast_path() {
            return;
        }
        let backend = self.verify.clone();
        let verifier = self.cfg.verify_signatures.then_some(
            move |msg: &[u8], agg: &banyan_crypto::AggregateSignature| {
                backend.verify_aggregate(msg, agg)
            },
        );
        self.round_state(proof.round)
            .unlock
            .merge_proof_with(&proof, verifier);
    }

    fn handle_finalization(&mut self, cert: Finalization, now: Time, actions: &mut Actions) {
        if self.store.finalized(cert.round).is_some() {
            return;
        }
        let quorum = match cert.kind {
            FinalKind::Slow => self.cfg.finalization_quorum(),
            FinalKind::Fast => self.cfg.fast_quorum(),
        };
        // Popcount gate first — see `handle_notarization`.
        if !cert.meets_quorum(quorum) {
            return;
        }
        if cert.kind == FinalKind::Fast && !self.fast_path() {
            return;
        }
        if self.cfg.verify_signatures {
            let kind = match cert.kind {
                FinalKind::Slow => VoteKind::Finalize,
                FinalKind::Fast => VoteKind::Fast,
            };
            let msg = Vote::signing_message(kind, cert.round, &cert.block);
            if !self.verify.verify_aggregate(&msg, &cert.agg) {
                return;
            }
        }
        // Fast finalizations are only valid for rank-0 blocks; check if we
        // hold the block, defer otherwise.
        if let Some(block) = self.store.get(&cert.block) {
            if cert.kind == FinalKind::Fast && !block.rank.is_leader() {
                return;
            }
        }
        self.apply_finalization(cert, now, actions);
        self.progress(now, actions);
    }

    /// Finalizes `cert.block` and its ancestors; or defers if blocks are
    /// missing.
    /// Returns `true` iff the chain below `cert` was actually committed.
    /// A deferred cert (missing ancestors, parked in
    /// `pending_finalizations`) is *not* progress: reporting it as such
    /// would let the finalize rules re-find the same quorum candidate and
    /// spin the progress fixpoint loop forever during catch-up.
    fn apply_finalization(&mut self, cert: Finalization, now: Time, actions: &mut Actions) -> bool {
        if cert.round <= self.k_max {
            return false;
        }
        let chain = match self.store.chain_to(&cert.block, self.k_max) {
            Some(chain) => chain
                .into_iter()
                .map(|(h, b)| {
                    (
                        h,
                        b.round,
                        b.proposer,
                        b.payload.clone(),
                        b.proposed_at,
                        b.rank,
                    )
                })
                .collect::<Vec<_>>(),
            None => {
                // Missing ancestor(s): fetch and retry when they arrive
                // (at most one parked cert per certified block).
                self.request_sync(cert.block, actions);
                if !self
                    .pending_finalizations
                    .iter()
                    .any(|c| c.round == cert.round && c.block == cert.block)
                {
                    self.pending_finalizations.push(cert);
                }
                return false;
            }
        };
        if chain.is_empty() {
            return false;
        }
        // Sanity: the chain must end at the certified block and start just
        // above kMax.
        debug_assert_eq!(chain.last().expect("non-empty").0, cert.block);

        for (hash, round, proposer, payload, proposed_at, _rank) in chain {
            let explicit = hash == cert.block;
            self.store.mark_finalized(round, hash);
            actions.commit(CommitEntry {
                round,
                block: hash,
                proposer,
                payload,
                proposed_at,
                committed_at: now,
                fast: explicit && cert.kind == FinalKind::Fast,
                explicit,
            });
        }
        self.k_max = cert.round;
        // Broadcast the certificate once (Algorithm 2 line 58).
        if let std::collections::hash_map::Entry::Vacant(slot) =
            self.finalizations.entry(cert.round)
        {
            actions.broadcast(Message::Chained(ChainedMsg::Final(cert.clone())));
            slot.insert(cert);
        }
        true
    }

    fn handle_sync(&mut self, from: ReplicaId, msg: SyncMsg, now: Time, actions: &mut Actions) {
        match msg {
            SyncMsg::Request { hash } => {
                if let Some(block) = self.store.get(&hash).cloned() {
                    let fast_vote = self
                        .rounds
                        .get(&block.round)
                        .and_then(|rs| rs.leader_fast_votes.get(&hash))
                        .copied();
                    let parent = block.parent;
                    let msg = self.proposal_message(&block, &parent, fast_vote.as_ref());
                    actions.send(from, msg);
                }
            }
            SyncMsg::Response { block } => {
                self.handle_proposal(block, None, None, None, now, actions);
            }
            SyncMsg::RequestRange {
                from_round,
                to_round,
            } => {
                self.serve_range(from, from_round, to_round, actions);
            }
            SyncMsg::ResponseBatch {
                blocks,
                notarizations,
            } => {
                for block in blocks {
                    self.handle_proposal(block, None, None, None, now, actions);
                }
                for cert in notarizations {
                    self.handle_notarization(cert, actions);
                }
                self.progress(now, actions);
            }
            SyncMsg::FrontierProbe => {
                // Drivers normally answer probes without engine delivery;
                // answering here too keeps blindly-forwarding drivers
                // correct (the reply is a pure function of state).
                actions.send(
                    from,
                    Message::Sync(SyncMsg::FrontierInfo {
                        finalized: self.k_max,
                    }),
                );
            }
            SyncMsg::FrontierInfo { .. } => {
                // Consumed by the driver's CatchUpState; nothing for the
                // engine to do.
            }
        }
    }

    /// Serves a ranged catch-up fetch: the finalized chain (blocks +
    /// retained notarizations) for `from..=to`, capped, plus our newest
    /// finalization certificate so the requester can actually finalize
    /// what it fetched.
    fn serve_range(
        &mut self,
        from: ReplicaId,
        from_round: Round,
        to_round: Round,
        actions: &mut Actions,
    ) {
        /// Rounds served per request (bounds response size).
        const MAX_RANGE: u64 = 64;
        let lo = from_round.0.max(1);
        let hi = to_round
            .0
            .min(self.k_max.0)
            .min(lo.saturating_add(MAX_RANGE - 1));
        let mut blocks = Vec::new();
        let mut notarizations = Vec::new();
        for r in lo..=hi {
            let Some(h) = self.store.finalized(Round(r)) else {
                continue;
            };
            if let Some(b) = self.store.get(&h) {
                blocks.push(b.clone());
            }
            if let Some(cert) = self.store.notarization(&h) {
                notarizations.push(cert.clone());
            }
        }
        if !blocks.is_empty() || !notarizations.is_empty() {
            actions.send(
                from,
                Message::Sync(SyncMsg::ResponseBatch {
                    blocks,
                    notarizations,
                }),
            );
        }
        if let Some(cert) = self.finalizations.get(&self.k_max) {
            actions.send(from, Message::Chained(ChainedMsg::Final(cert.clone())));
        }
    }

    // ------------------------------------------------------------------
    // Progress: the `upon` rules, run to fixpoint
    // ------------------------------------------------------------------

    fn progress(&mut self, now: Time, actions: &mut Actions) {
        // Bounded fixpoint loop: every iteration that reports `changed`
        // strictly advances a monotone quantity (votes cast, notarizations
        // assembled, kMax, the current round), so the loop terminates once
        // buffered state is exhausted. A handful of iterations suffice in
        // steady state, but a recovering replica draining a ranged-sync
        // batch (or the buffered live traffic arriving right after it)
        // legitimately chains one enabling per recovered round; the cap
        // only guards against a genuine oscillation bug.
        const PROGRESS_CAP: usize = 100_000;
        for _ in 0..PROGRESS_CAP {
            let mut changed = false;
            changed |= self.try_assemble_notarizations(actions);
            changed |= self.try_fast_finalize(now, actions);
            changed |= self.try_slow_finalize(now, actions);
            changed |= self.retry_pending_finalizations(now, actions);
            changed |= self.try_vote(now, actions);
            changed |= self.try_advance(now, actions);
            if !changed {
                return;
            }
        }
        debug_assert!(false, "progress loop did not converge");
    }

    /// True when Remark 7.8 piggyback counting is active.
    fn piggyback(&self) -> bool {
        self.fast_path() && self.cfg.piggyback_fast_votes
    }

    /// Distinct replicas backing `hash`'s notarization: notarization votes
    /// alone, or — under Remark 7.8 — their union with fast votes.
    fn notarize_support(&self, round: Round, hash: &BlockHash) -> usize {
        let Some(rs) = self.rounds.get(&round) else {
            return 0;
        };
        if !self.piggyback() {
            return rs.notarize_votes.count(hash);
        }
        let n = self.cfg.n();
        let mut bm = banyan_crypto::SignerBitmap::new(n);
        for (voter, _) in rs.notarize_votes.votes_for(hash) {
            bm.set(voter);
        }
        let table = self.registry.table().clone();
        for idx in rs.unlock.aggregate_indiv(&table, hash).signers.iter() {
            bm.set(idx);
        }
        bm.count()
    }

    /// Assembles a notarization certificate from locally held votes.
    /// Under Remark 7.8 the certificate carries both multi-signatures.
    fn build_notarization(&self, round: Round, hash: BlockHash) -> Notarization {
        let votes = self.rounds[&round].notarize_votes.votes_for(&hash);
        let agg = self.registry.table().aggregate(&votes);
        let fast_agg = self.piggyback().then(|| {
            let table = self.registry.table().clone();
            self.rounds[&round].unlock.aggregate_indiv(&table, &hash)
        });
        Notarization {
            round,
            block: hash,
            agg,
            fast_agg,
        }
    }

    /// Algorithm 2 line 45: combine `⌈(n+f+1)/2⌉` notarization votes
    /// (distinct union with fast votes under Remark 7.8).
    fn try_assemble_notarizations(&mut self, actions: &mut Actions) -> bool {
        let quorum = self.cfg.notarization_quorum();
        let mut newly: Vec<(Round, BlockHash)> = Vec::new();
        for (round, rs) in &self.rounds {
            // Candidates: anything with at least one notarization vote,
            // plus (piggyback mode) every received block of the round.
            let mut candidates = rs.notarize_votes.with_quorum(1);
            if self.piggyback() {
                candidates.extend(self.store.round_blocks(*round).iter().copied());
                candidates.sort();
                candidates.dedup();
            }
            for hash in candidates {
                if !self.store.is_notarized(&hash) && self.notarize_support(*round, &hash) >= quorum
                {
                    newly.push((*round, hash));
                }
            }
        }
        let changed = !newly.is_empty();
        for (round, hash) in newly {
            let cert = self.build_notarization(round, hash);
            self.store.mark_notarized(hash, Some(cert));
            if !self.store.contains(&hash) {
                self.request_sync(hash, actions);
            }
        }
        changed
    }

    /// Addition 4 / Algorithm 2 line 56 (fast case): `n − p` fast votes
    /// for a rank-0 block FP-finalize it.
    fn try_fast_finalize(&mut self, now: Time, actions: &mut Actions) -> bool {
        if !self.fast_path() {
            return false;
        }
        let quorum = self.cfg.fast_quorum();
        let candidates: Vec<(Round, BlockHash)> = self
            .rounds
            .range(self.k_max.next()..)
            .filter_map(|(round, rs)| rs.unlock.fast_finalizable(quorum).map(|h| (*round, h)))
            .collect();
        let mut changed = false;
        for (round, hash) in candidates {
            if self.store.finalized(round).is_some() {
                continue;
            }
            // Already certified but waiting on missing ancestors: the
            // retry path owns it from here.
            if self
                .pending_finalizations
                .iter()
                .any(|c| c.round == round && c.block == hash)
            {
                continue;
            }
            // Build the certificate from individually held votes; if we
            // only know the support through certified aggregates we wait
            // for the explicit certificate instead.
            let rs = &self.rounds[&round];
            if rs.unlock.indiv_count(&hash) < quorum {
                continue;
            }
            let table = self.registry.table().clone();
            let agg = rs.unlock.aggregate_indiv(&table, &hash);
            let cert = Finalization {
                round,
                block: hash,
                kind: FinalKind::Fast,
                agg,
            };
            changed |= self.apply_finalization(cert, now, actions);
        }
        changed
    }

    /// Algorithm 2 line 56 (slow case): `⌈(n+f+1)/2⌉` finalization votes.
    fn try_slow_finalize(&mut self, now: Time, actions: &mut Actions) -> bool {
        let quorum = self.cfg.finalization_quorum();
        let candidates: Vec<(Round, BlockHash)> = self
            .rounds
            .range(self.k_max.next()..)
            .flat_map(|(round, rs)| {
                rs.finalize_votes
                    .with_quorum(quorum)
                    .into_iter()
                    .map(move |h| (*round, h))
            })
            .collect();
        let mut changed = false;
        for (round, hash) in candidates {
            if self.store.finalized(round).is_some() {
                continue;
            }
            // Already certified but waiting on missing ancestors: the
            // retry path owns it from here.
            if self
                .pending_finalizations
                .iter()
                .any(|c| c.round == round && c.block == hash)
            {
                continue;
            }
            let votes = self.rounds[&round].finalize_votes.votes_for(&hash);
            let agg = self.registry.table().aggregate(&votes);
            let cert = Finalization {
                round,
                block: hash,
                kind: FinalKind::Slow,
                agg,
            };
            changed |= self.apply_finalization(cert, now, actions);
        }
        changed
    }

    fn retry_pending_finalizations(&mut self, now: Time, actions: &mut Actions) -> bool {
        if self.pending_finalizations.is_empty() {
            return false;
        }
        // A parked cert can only become applicable after a missing
        // ancestor arrived in the store, so skip the chain walk entirely
        // until the store has grown since the last retry.
        let store_len = self.store.len();
        if store_len == self.retry_store_len {
            return false;
        }
        self.retry_store_len = store_len;
        let pending = std::mem::take(&mut self.pending_finalizations);
        let mut changed = false;
        for cert in pending {
            if cert.round > self.k_max {
                changed |= self.apply_finalization(cert, now, actions);
            }
        }
        changed
    }

    /// Algorithm 1 lines 33–43: notarization-vote for the lowest-ranked
    /// valid block whose notarization delay has expired; piggyback the
    /// round's fast vote on the first one (Addition 3).
    fn try_vote(&mut self, now: Time, actions: &mut Actions) -> bool {
        let round = self.round;
        let Some(t0) = self.round_state(round).t0 else {
            return false;
        };
        // All valid blocks of the round, with ranks.
        let hashes = self.store.round_blocks(round).to_vec();
        let mut valid: Vec<(Rank, BlockHash)> = Vec::new();
        for hash in hashes {
            if self.is_valid(&hash) {
                let rank = self.store.get(&hash).expect("valid implies stored").rank;
                valid.push((rank, hash));
            }
        }
        if valid.is_empty() {
            return false;
        }
        valid.sort();
        let min_rank = valid[0].0;
        let deadline = t0 + self.cfg.notarization_delay(min_rank.0);
        if now < deadline {
            // Arm (once) the timer for this rank's delay.
            let rs = self.round_state(round);
            if rs.notarize_timers.insert(min_rank.0) {
                actions.arm(
                    deadline,
                    TimerKind::NotarizeRank {
                        round: round.0,
                        rank: min_rank.0,
                    },
                );
            }
            return false;
        }
        // Vote for every not-yet-voted valid block of minimal rank (there
        // can be several under leader equivocation).
        let candidates: Vec<BlockHash> = valid
            .iter()
            .filter(|(r, h)| *r == min_rank && !self.rounds[&round].notarize_voted.contains(h))
            .map(|(_, h)| *h)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let mut changed = false;
        for hash in candidates {
            changed = true;
            let fast_needed = self.fast_path() && !self.round_state(round).fast_vote_sent;
            // Remark 7.8: a fast vote for this block makes the notarization
            // vote redundant (it counts toward the quorum itself) — whether
            // that fast vote goes out now or already went out (the leader's
            // own proposal carries one).
            let my_fast_target = self
                .round_state(round)
                .our_votes
                .iter()
                .find(|v| v.kind == VoteKind::Fast)
                .map(|v| v.block);
            let omit_notarize = self.piggyback() && (fast_needed || my_fast_target == Some(hash));
            let mut bundle = if omit_notarize {
                Vec::new()
            } else {
                vec![self.make_vote(VoteKind::Notarize, round, hash)]
            };
            if fast_needed {
                bundle.push(self.make_vote(VoteKind::Fast, round, hash));
                if self.byz == ByzantineMode::DoubleFastVote {
                    // Also fast-vote some other block of the round, if any.
                    if let Some(other) = self
                        .store
                        .round_blocks(round)
                        .iter()
                        .find(|h| **h != hash)
                        .copied()
                    {
                        bundle.push(self.make_vote(VoteKind::Fast, round, other));
                    }
                }
            }
            // Apply our own votes locally (no self-delivery on the wire).
            {
                let me = self.id;
                let rs = self.round_state(round);
                rs.notarize_voted.insert(hash);
                for v in &bundle {
                    match v.kind {
                        VoteKind::Notarize => {
                            rs.notarize_votes.add(v.block, me, v.signature);
                        }
                        VoteKind::Fast => {
                            rs.unlock.add_fast_vote(v.block, me, v.signature);
                            rs.fast_vote_sent = true;
                        }
                        VoteKind::Finalize => unreachable!("not built here"),
                    }
                }
                rs.our_votes.extend(bundle.iter().copied());
            }
            if !bundle.is_empty() {
                actions.broadcast(Message::Chained(ChainedMsg::Votes(bundle)));
            }

            // Algorithm 1 lines 34–36: relay the block (with its parent's
            // certificates) when it is not our own proposal.
            let proposer = self.store.get(&hash).expect("stored").proposer;
            if self.cfg.forward_blocks
                && proposer != self.id
                && self.round_state(round).relayed.insert(hash)
            {
                let block = self.store.get(&hash).expect("stored").clone();
                let parent = block.parent;
                let fast_vote = self
                    .round_state(round)
                    .leader_fast_votes
                    .get(&hash)
                    .copied();
                let msg = self.proposal_message(&block, &parent, fast_vote.as_ref());
                actions.broadcast(msg);
            }
        }
        changed
    }

    /// Algorithm 2 lines 48–54 (Restriction 2 + Addition 1): advance to
    /// round `k + 1` once a notarized **and unlocked** block exists and our
    /// fast vote is out; broadcast the notarization + unlock proof; send
    /// the finalization vote if we voted for nothing else.
    fn try_advance(&mut self, now: Time, actions: &mut Actions) -> bool {
        // Finalization-driven catch-up: never linger at or below kMax.
        if self.round <= self.k_max {
            let next = self.k_max.next();
            self.reconcile_optimistic(next, actions);
            self.enter_round(next, now, actions);
            return true;
        }
        let round = self.round;
        if self.round_state(round).t0.is_none() {
            return false;
        }
        // Find a notarized + unlocked block of the current round.
        let mut candidates: Vec<(Rank, BlockHash)> = Vec::new();
        for hash in self.store.round_blocks(round).to_vec() {
            if self.store.is_notarized(&hash) && self.is_unlocked(round, &hash) {
                let rank = self.store.get(&hash).expect("stored").rank;
                candidates.push((rank, hash));
            }
        }
        candidates.sort();
        let Some((_, chosen)) = candidates.first().copied() else {
            return false;
        };

        // Restriction 2 requires our fast vote to be out. If the block is
        // valid and we simply have not voted yet (catch-up), vote now —
        // the network has already converged on it, so the notarization
        // delay serves no purpose (see DESIGN.md §4).
        if self.fast_path() && !self.round_state(round).fast_vote_sent {
            if self.is_valid(&chosen) && !self.rounds[&round].notarize_voted.contains(&chosen) {
                let notarize = self.make_vote(VoteKind::Notarize, round, chosen);
                let fast = self.make_vote(VoteKind::Fast, round, chosen);
                let me = self.id;
                let rs = self.round_state(round);
                rs.notarize_voted.insert(chosen);
                rs.notarize_votes.add(chosen, me, notarize.signature);
                rs.unlock.add_fast_vote(chosen, me, fast.signature);
                rs.fast_vote_sent = true;
                rs.our_votes.push(notarize);
                rs.our_votes.push(fast);
                actions.broadcast(Message::Chained(ChainedMsg::Votes(vec![notarize, fast])));
            } else if self.is_valid(&chosen) {
                // We notarize-voted it earlier without a fast vote: just
                // emit the fast vote.
                let fast = self.make_vote(VoteKind::Fast, round, chosen);
                let me = self.id;
                let rs = self.round_state(round);
                rs.unlock.add_fast_vote(chosen, me, fast.signature);
                rs.fast_vote_sent = true;
                rs.our_votes.push(fast);
                actions.broadcast(Message::Chained(ChainedMsg::Votes(vec![fast])));
            }
            // If the block is not even valid for us (missing ancestry), we
            // advance without a fast vote: a notarization quorum proves the
            // network moved on (documented deviation for catch-up).
        }

        // Addition 1 / line 50: broadcast notarization + unlock proof.
        if let Some(cert) = self.store.notarization(&chosen).cloned() {
            let unlock = self.fast_path().then(|| {
                let table = self.registry.table().clone();
                self.round_state(round).unlock.build_proof(&table)
            });
            actions.broadcast(Message::Chained(ChainedMsg::Advance {
                notarization: cert,
                unlock,
            }));
        }

        // Lines 51–53: finalization vote if we voted for nothing else.
        let send_final = {
            let rs = self.round_state(round);
            rs.voted_only_for(&chosen) && !rs.finalize_vote_sent && !rs.notarize_voted.is_empty()
        };
        if send_final {
            let vote = self.make_vote(VoteKind::Finalize, round, chosen);
            let me = self.id;
            let rs = self.round_state(round);
            rs.finalize_vote_sent = true;
            rs.finalize_votes.add(chosen, me, vote.signature);
            rs.our_votes.push(vote);
            actions.broadcast(Message::Chained(ChainedMsg::Votes(vec![vote])));
        }

        self.round_state(round).advanced = true;
        self.reconcile_optimistic(round.next(), actions);
        self.enter_round(round.next(), now, actions);
        true
    }

    /// Stuck-round retransmission: links in the model are reliable, but a
    /// real network (or a healed hard partition) loses messages.
    /// Production ICC continuously re-gossips its artifact pool; we
    /// re-broadcast our proposal, our votes and the previous round's
    /// certificates, then re-arm the heartbeat.
    fn heartbeat(&mut self, round: Round, now: Time, actions: &mut Actions) {
        if round != self.round || self.round_state(round).advanced {
            return; // we moved on; nothing is stuck
        }
        // Our votes for this round.
        let votes = self.round_state(round).our_votes.clone();
        if !votes.is_empty() {
            actions.broadcast(Message::Chained(ChainedMsg::Votes(votes)));
        }
        // Our own proposal, if any.
        let own_proposal = self
            .store
            .round_blocks(round)
            .iter()
            .find(|h| self.store.get(h).is_some_and(|b| b.proposer == self.id))
            .copied();
        if let Some(hash) = own_proposal {
            let block = self.store.get(&hash).expect("stored").clone();
            let parent = block.parent;
            let fast_vote = self
                .round_state(round)
                .leader_fast_votes
                .get(&hash)
                .copied();
            let msg = self.proposal_message(&block, &parent, fast_vote.as_ref());
            actions.broadcast(msg);
        }
        // A pending optimistic proposal for the next round (its parent's
        // certificate is what we are stuck waiting for): re-offer it.
        if let Some(po) = self.pending_optimistic {
            if po.round == round.next() {
                if let Some(block) = self.store.get(&po.block).cloned() {
                    let parent = block.parent;
                    let msg = self.proposal_message(&block, &parent, None);
                    actions.broadcast(msg);
                }
            }
        }
        // Previous round's certificate (catch-up aid for peers behind us).
        let prev = round.prev();
        if prev > Round::GENESIS {
            let cert = self
                .store
                .round_blocks(prev)
                .iter()
                .find_map(|h| self.store.notarization(h).cloned());
            if let Some(cert) = cert {
                let unlock = self.fast_path().then(|| {
                    let table = self.registry.table().clone();
                    self.round_state(prev).unlock.build_proof(&table)
                });
                actions.broadcast(Message::Chained(ChainedMsg::Advance {
                    notarization: cert,
                    unlock,
                }));
            }
        }
        // Latest finalization certificate (lets peers jump to kMax).
        if let Some(cert) = self.finalizations.get(&self.k_max).cloned() {
            actions.broadcast(Message::Chained(ChainedMsg::Final(cert)));
        }
        actions.arm(
            now + self.cfg.heartbeat,
            TimerKind::RoundTimeout { round: round.0 },
        );
    }
}

impl Engine for ChainedEngine {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn protocol_name(&self) -> &'static str {
        match self.mode {
            PathMode::IccOnly => "icc",
            PathMode::Banyan => "banyan",
        }
    }

    fn on_init(&mut self, now: Time) -> Actions {
        self.routed_k_max = self.k_max;
        let mut actions = Actions::none();
        // Fresh replicas have `k_max = GENESIS`, so this is round 1; a
        // recovered replica re-enters just above its restored frontier.
        self.enter_round(self.k_max.next(), now, &mut actions);
        self.progress(now, &mut actions);
        actions
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, now: Time) -> Actions {
        self.routed_k_max = self.k_max;
        let mut actions = Actions::none();
        match msg {
            Message::Chained(ChainedMsg::Proposal {
                block,
                parent_notarization,
                parent_unlock,
                fast_vote,
            }) => {
                self.handle_proposal(
                    block,
                    parent_notarization,
                    parent_unlock,
                    fast_vote,
                    now,
                    &mut actions,
                );
            }
            Message::Chained(ChainedMsg::Votes(votes)) => {
                self.handle_votes(votes, now, &mut actions);
            }
            Message::Chained(ChainedMsg::Advance {
                notarization,
                unlock,
            }) => {
                self.handle_notarization(notarization, &mut actions);
                if let Some(proof) = unlock {
                    self.merge_unlock_proof(proof);
                }
                self.progress(now, &mut actions);
            }
            Message::Chained(ChainedMsg::Final(cert)) => {
                self.handle_finalization(cert, now, &mut actions);
            }
            Message::Sync(sync) => {
                self.handle_sync(from, sync, now, &mut actions);
            }
            // Foreign protocol families — and dissemination traffic,
            // which belongs to the driver layer, not an engine — are
            // ignored.
            Message::HotStuff(_) | Message::Streamlet(_) | Message::Dissemination(_) => {}
        }
        actions
    }

    fn on_timer(&mut self, kind: TimerKind, now: Time) -> Actions {
        self.routed_k_max = self.k_max;
        let mut actions = Actions::none();
        match kind {
            TimerKind::Propose { round } => {
                self.propose(Round(round), now, &mut actions);
                self.progress(now, &mut actions);
            }
            TimerKind::NotarizeRank { round, .. } if Round(round) == self.round => {
                self.progress(now, &mut actions);
            }
            TimerKind::RoundTimeout { round } => {
                self.heartbeat(Round(round), now, &mut actions);
            }
            _ => {}
        }
        actions
    }

    fn current_round(&self) -> Round {
        self.round
    }

    fn finalized_round(&self) -> Round {
        self.k_max
    }

    fn snapshot(&self) -> ChainSnapshot {
        let mut snap = self.store.snapshot();
        snap.committed_round = self.k_max;
        snap.normalize();
        snap
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) {
        self.store.restore(snapshot);
        self.k_max = snapshot.max_finalized_round();
        self.routed_k_max = self.k_max;
        // Optimistic state is volatile: a recovered replica starts from
        // the certified frontier.
        self.pending_optimistic = None;
        // Force the next pending-finalization retry to walk: the store
        // contents just changed wholesale.
        self.retry_store_len = usize::MAX;
    }

    fn wal_bytes(&self) -> u64 {
        self.store.wal_bytes()
    }

    fn verify_stats(&self) -> VerifyStats {
        self.verify.stats()
    }

    fn set_verify_backend(&mut self, backend: Arc<dyn VerifyBackend>) {
        self.verify = backend;
    }
}
