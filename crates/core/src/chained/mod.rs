//! The ICC / Banyan protocol family (§4–§7 of the paper).
//!
//! * [`engine::ChainedEngine`] — the replica state machine, in
//!   [`engine::PathMode::IccOnly`] (slow path, the ICC baseline) or
//!   [`engine::PathMode::Banyan`] (integrated fast path) flavor.
//! * [`unlock`] — fast-vote support tracking and the Definition 7.6
//!   unlock conditions.
//! * [`round`] — per-round vote tables and flags.

pub mod engine;
pub mod round;
pub mod unlock;

pub use engine::{ByzantineMode, ChainedEngine, OptimisticConfig, PathMode};
pub use unlock::UnlockState;
