//! Per-round bookkeeping for the ICC/Banyan engine.
//!
//! One [`RoundState`] exists per round a replica has heard anything about.
//! It owns the round's vote tables (notarization / finalization) and the
//! fast-vote [`UnlockState`], plus the flags the pseudocode keeps per
//! round: `proposed`, `fastVoteSent`, the `N` set of blocks we
//! notarization-voted for, and whether we already advanced out of the
//! round.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use banyan_crypto::Signature;
use banyan_types::ids::{BlockHash, ReplicaId, Round};
use banyan_types::time::Time;

use super::unlock::UnlockState;

/// Vote accumulator: per block, the individual signatures by voter.
#[derive(Clone, Debug, Default)]
pub struct VoteTable {
    votes: HashMap<BlockHash, BTreeMap<u16, Signature>>,
}

impl VoteTable {
    /// Records a vote; returns `true` if it was new.
    pub fn add(&mut self, block: BlockHash, voter: ReplicaId, sig: Signature) -> bool {
        self.votes
            .entry(block)
            .or_default()
            .insert(voter.0, sig)
            .is_none()
    }

    /// Number of distinct voters for `block`.
    pub fn count(&self, block: &BlockHash) -> usize {
        self.votes.get(block).map_or(0, BTreeMap::len)
    }

    /// The votes for `block` as `(voter, signature)` pairs.
    pub fn votes_for(&self, block: &BlockHash) -> Vec<(u16, Signature)> {
        self.votes
            .get(block)
            .map(|m| m.iter().map(|(v, s)| (*v, *s)).collect())
            .unwrap_or_default()
    }

    /// Blocks with at least `quorum` votes.
    pub fn with_quorum(&self, quorum: usize) -> Vec<BlockHash> {
        let mut out: Vec<BlockHash> = self
            .votes
            .iter()
            .filter(|(_, m)| m.len() >= quorum)
            .map(|(h, _)| *h)
            .collect();
        out.sort();
        out
    }
}

/// Everything a replica tracks about one round.
#[derive(Clone, Debug)]
pub struct RoundState {
    /// Fast-vote support and unlock status (Banyan).
    pub unlock: UnlockState,
    /// Notarization votes received.
    pub notarize_votes: VoteTable,
    /// Finalization votes received.
    pub finalize_votes: VoteTable,
    /// `N`: blocks this replica notarization-voted for (Algorithm 1
    /// line 21).
    pub notarize_voted: BTreeSet<BlockHash>,
    /// `fastVoteSent` (Algorithm 1 line 18).
    pub fast_vote_sent: bool,
    /// `proposed` (Algorithm 1 line 19).
    pub proposed: bool,
    /// Round start time `t0` at this replica; `None` until the round is
    /// entered (messages for future rounds buffer in a stateless way).
    pub t0: Option<Time>,
    /// Ranks for which a `NotarizeRank` timer is already armed.
    pub notarize_timers: HashSet<u16>,
    /// Whether we already sent our finalization vote this round.
    pub finalize_vote_sent: bool,
    /// The proposer's own fast vote attached to each rank-0 block —
    /// required for rank-0 validity in Banyan (Algorithm 2 line 63) and
    /// preserved when relaying the proposal.
    pub leader_fast_votes: HashMap<BlockHash, banyan_types::vote::Vote>,
    /// Blocks this replica has already relayed (tip forwarding dedup).
    pub relayed: HashSet<BlockHash>,
    /// Round has been advanced out of (we moved to round + 1).
    pub advanced: bool,
    /// Every vote this replica broadcast in this round, for heartbeat
    /// retransmission (the engines' recovery path from message loss).
    pub our_votes: Vec<banyan_types::vote::Vote>,
}

impl RoundState {
    /// Fresh state for `round` with unlock threshold `f + p` over `n`
    /// replicas.
    pub fn new(round: Round, n: usize, unlock_threshold: usize) -> Self {
        RoundState {
            unlock: UnlockState::new(round, n, unlock_threshold),
            notarize_votes: VoteTable::default(),
            finalize_votes: VoteTable::default(),
            notarize_voted: BTreeSet::new(),
            fast_vote_sent: false,
            proposed: false,
            t0: None,
            notarize_timers: HashSet::new(),
            finalize_vote_sent: false,
            leader_fast_votes: HashMap::new(),
            relayed: HashSet::new(),
            advanced: false,
            our_votes: Vec::new(),
        }
    }

    /// `N ⊆ {b}` — the finalization-vote condition (Algorithm 2 line 51):
    /// we voted for no block other than `b`.
    pub fn voted_only_for(&self, block: &BlockHash) -> bool {
        self.notarize_voted.iter().all(|h| h == block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash(tag: u8) -> BlockHash {
        BlockHash([tag; 32])
    }

    #[test]
    fn vote_table_counts_distinct_voters() {
        let mut t = VoteTable::default();
        assert!(t.add(hash(1), ReplicaId(0), Signature::zero()));
        assert!(!t.add(hash(1), ReplicaId(0), Signature::zero()));
        assert!(t.add(hash(1), ReplicaId(1), Signature::zero()));
        assert_eq!(t.count(&hash(1)), 2);
        assert_eq!(t.count(&hash(2)), 0);
        assert_eq!(t.votes_for(&hash(1)).len(), 2);
    }

    #[test]
    fn with_quorum_filters_and_sorts() {
        let mut t = VoteTable::default();
        for i in 0..3 {
            t.add(hash(2), ReplicaId(i), Signature::zero());
        }
        t.add(hash(1), ReplicaId(0), Signature::zero());
        assert_eq!(t.with_quorum(3), vec![hash(2)]);
        assert_eq!(t.with_quorum(1), vec![hash(1), hash(2)]);
        assert!(t.with_quorum(4).is_empty());
    }

    #[test]
    fn voted_only_for_is_subset_check() {
        let mut rs = RoundState::new(Round(1), 4, 2);
        // Empty N: vacuously true for any block.
        assert!(rs.voted_only_for(&hash(1)));
        rs.notarize_voted.insert(hash(1));
        assert!(rs.voted_only_for(&hash(1)));
        rs.notarize_voted.insert(hash(2));
        assert!(!rs.voted_only_for(&hash(1)));
    }
}
