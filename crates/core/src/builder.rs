//! Cluster construction: wire engines, PKI and beacon together.
//!
//! Everything the harnesses and tests need to stand up an `n`-replica
//! cluster of any of the four protocols with one call chain.

use std::sync::Arc;

use banyan_crypto::beacon::{Beacon, BeaconMode};
use banyan_crypto::hashsig::HashSig;
use banyan_crypto::registry::{KeyRegistry, PublicKeyTable};
use banyan_crypto::sig::SignatureScheme;
use banyan_crypto::{CachedVerify, DirectVerify, VerifyBackend};
use banyan_types::app::{FixedSizeSource, ProposalSource};
use banyan_types::config::{ConfigError, ProtocolConfig};
use banyan_types::engine::Engine;
use banyan_types::time::Duration;

/// Per-replica [`ProposalSource`] factory: called once per replica index
/// when a cluster is built, so each engine gets its own boxed source.
pub type SourceFactory = Arc<dyn Fn(u16) -> Box<dyn ProposalSource> + Send + Sync>;

use crate::chained::{ByzantineMode, ChainedEngine, OptimisticConfig, PathMode};
use crate::hotstuff::HotStuffEngine;
use crate::store::ChainStore;
use crate::streamlet::StreamletEngine;

/// Per-replica [`ChainStore`] factory (chained engines only): called once
/// per replica index when a cluster is built, so each engine gets its own
/// backing store — e.g. a `WalStore` opened on that replica's directory.
pub type StoreFactory = Arc<dyn Fn(u16) -> Box<dyn ChainStore> + Send + Sync>;

/// Configuration of the engines' verify plane (the measured-crypto setup):
/// how vote bursts and certificates are cryptographically checked.
///
/// Installed with [`ClusterBuilder::verify_plane`]; when absent, engines
/// keep their built-in un-batched, un-cached backend — byte-identical
/// behavior and counters to clusters built before the verify plane
/// existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyPlaneConfig {
    /// Batch vote bursts through the scheme's combined check (one
    /// random-linear-combination equation per burst instead of one
    /// exponentiation pair per vote, for schemes that support it).
    pub batch_votes: bool,
    /// Capacity of the certificate-verdict LRU cache; `0` disables
    /// caching. A nonzero capacity implies batching (the cached backend
    /// always batches).
    pub cert_cache: usize,
}

impl Default for VerifyPlaneConfig {
    fn default() -> Self {
        VerifyPlaneConfig {
            batch_votes: true,
            cert_cache: 1024,
        }
    }
}

/// Fluent builder for homogeneous clusters.
///
/// # Examples
///
/// ```
/// use banyan_core::builder::ClusterBuilder;
/// use banyan_types::time::Duration;
///
/// let engines = ClusterBuilder::new(19, 6, 1)?
///     .delta(Duration::from_millis(120))
///     .payload_size(400_000)
///     .build_banyan();
/// assert_eq!(engines.len(), 19);
/// # Ok::<(), banyan_types::config::ConfigError>(())
/// ```
#[derive(Clone)]
pub struct ClusterBuilder {
    cfg: ProtocolConfig,
    scheme: Arc<dyn SignatureScheme>,
    cluster_seed: u64,
    beacon_mode: BeaconMode,
    sources: SourceFactory,
    /// View/epoch timeout for the baseline protocols.
    baseline_timeout: Duration,
    /// Per-replica Byzantine behaviors (chained engines only).
    byzantine: Vec<(u16, ByzantineMode)>,
    /// Per-replica chain-store factory (chained engines only); `None`
    /// keeps the default in-memory `BlockStore`.
    stores: Option<StoreFactory>,
    /// Optimistic proposal pipelining (chained engines only); `None`
    /// keeps the feature off.
    optimistic: Option<OptimisticConfig>,
    /// Verify plane (batched/cached verification); `None` keeps each
    /// engine's built-in direct backend.
    verify_plane: Option<VerifyPlaneConfig>,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("n", &self.cfg.n())
            .field("f", &self.cfg.f())
            .field("p", &self.cfg.p())
            .finish_non_exhaustive()
    }
}

impl ClusterBuilder {
    /// Starts a builder for an `(n, f, p)` cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the parameters violate
    /// `n ≥ max(3f + 2p − 1, 3f + 1)` or `p > f`.
    pub fn new(n: usize, f: usize, p: usize) -> Result<Self, ConfigError> {
        Ok(ClusterBuilder {
            cfg: ProtocolConfig::new(n, f, p)?,
            scheme: Arc::new(HashSig),
            cluster_seed: 42,
            beacon_mode: BeaconMode::RoundRobin,
            sources: Arc::new(|i| Box::new(FixedSizeSource::new(0, i))),
            baseline_timeout: Duration::from_secs(3),
            byzantine: Vec::new(),
            stores: None,
            optimistic: None,
            verify_plane: None,
        })
    }

    /// Replaces the whole protocol configuration (advanced use).
    pub fn config(mut self, cfg: ProtocolConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the `Δ` bound used in proposal/notarization delays.
    pub fn delta(mut self, delta: Duration) -> Self {
        self.cfg = self.cfg.clone().with_delta(delta);
        self
    }

    /// **Migration shim** — equivalent to
    /// [`proposal_sources`](Self::proposal_sources) with a per-replica
    /// [`FixedSizeSource`] of `bytes`. Engines do not attach payloads
    /// themselves; they pull every payload from their `ProposalSource`.
    /// This shim reproduces the historical leader-minted synthetic
    /// workload (the paper's §9.2 setup) bit-for-bit so old call sites
    /// keep working; anything workload-driven — mempools, open- or
    /// closed-loop clients — goes through `proposal_sources` instead.
    pub fn payload_size(self, bytes: u64) -> Self {
        self.proposal_sources(move |i| Box::new(FixedSizeSource::new(bytes, i)))
    }

    /// Installs a per-replica [`ProposalSource`] factory: `factory(i)` is
    /// called once for replica `i` whenever a cluster is built. This is
    /// how a mempool or client queue is threaded into the engines; the
    /// default is `FixedSizeSource::new(0, i)` (empty synthetic payloads).
    pub fn proposal_sources(
        mut self,
        factory: impl Fn(u16) -> Box<dyn ProposalSource> + Send + Sync + 'static,
    ) -> Self {
        self.sources = Arc::new(factory);
        self
    }

    /// Toggles tip forwarding (paper §9.1).
    pub fn forwarding(mut self, on: bool) -> Self {
        self.cfg = self.cfg.clone().with_forwarding(on);
        self
    }

    /// Toggles signature verification.
    pub fn verify_signatures(mut self, on: bool) -> Self {
        self.cfg = self.cfg.clone().with_signature_verification(on);
        self
    }

    /// Enables the Remark 7.8 fast-vote piggyback (Banyan only): omit the
    /// notarization vote when a fast vote is sent; notarizations carry two
    /// multi-signatures.
    pub fn piggyback(mut self, on: bool) -> Self {
        self.cfg = self.cfg.clone().with_piggyback(on);
        self
    }

    /// Uses the seeded random-beacon permutation instead of round-robin.
    pub fn seeded_beacon(mut self, seed: u64) -> Self {
        self.beacon_mode = BeaconMode::Seeded { seed };
        self
    }

    /// Sets the PKI cluster seed.
    pub fn cluster_seed(mut self, seed: u64) -> Self {
        self.cluster_seed = seed;
        self
    }

    /// Uses a different signature scheme (default: `HashSig`).
    pub fn scheme(mut self, scheme: Arc<dyn SignatureScheme>) -> Self {
        self.scheme = scheme;
        self
    }

    /// View/epoch timeout for HotStuff/Streamlet (default 3 s, the paper's
    /// §9.4 setting).
    pub fn baseline_timeout(mut self, timeout: Duration) -> Self {
        self.baseline_timeout = timeout;
        self
    }

    /// Marks `replica` as Byzantine with the given behavior (chained
    /// engines only).
    pub fn byzantine(mut self, replica: u16, mode: ByzantineMode) -> Self {
        self.byzantine.push((replica, mode));
        self
    }

    /// Installs a per-replica [`ChainStore`] factory for the chained
    /// engines: `factory(i)` is called once for replica `i` whenever that
    /// engine is built, replacing the default in-memory `BlockStore`. This
    /// is how a `WalStore` (crash recovery) is threaded in; the engine
    /// resumes from whatever finalized frontier the store recovered.
    pub fn chain_stores(
        mut self,
        factory: impl Fn(u16) -> Box<dyn ChainStore> + Send + Sync + 'static,
    ) -> Self {
        self.stores = Some(Arc::new(factory));
        self
    }

    /// Enables Moonshot-style optimistic proposal pipelining for the
    /// chained engines: the leader of round `r + 1` proposes on a
    /// received-but-uncertified round-`r` block instead of waiting for
    /// its certificate. Building a HotStuff or Streamlet cluster with
    /// this set panics — HotStuff is already optimistically responsive
    /// (a formed QC triggers the next proposal), and Streamlet's
    /// epoch-clocked proposals leave nothing to overlap.
    pub fn optimistic(mut self, cfg: OptimisticConfig) -> Self {
        self.optimistic = Some(cfg);
        self
    }

    /// Installs a verify plane: every engine built afterwards gets a
    /// per-replica batched (and, with a nonzero `cert_cache`, cached)
    /// verify backend instead of its built-in direct one.
    pub fn verify_plane(mut self, cfg: VerifyPlaneConfig) -> Self {
        self.verify_plane = Some(cfg);
        self
    }

    /// Builds one verify backend matching the configured plane (direct
    /// when no plane is installed). Drivers that run transport-level
    /// verify workers construct the backend themselves with this, install
    /// it via `Engine::set_verify_backend`, and hand clones of the `Arc`
    /// to the workers — sharing the counters and certificate cache.
    pub fn make_verify_backend(&self) -> Arc<dyn VerifyBackend> {
        let table = PublicKeyTable::generate(self.scheme.clone(), self.cluster_seed, self.cfg.n());
        match self.verify_plane {
            Some(vp) if vp.cert_cache > 0 => Arc::new(CachedVerify::new(table, vp.cert_cache)),
            Some(vp) => Arc::new(DirectVerify::new(table).with_batching(vp.batch_votes)),
            None => Arc::new(DirectVerify::new(table)),
        }
    }

    /// Installs the configured verify plane on a freshly built engine.
    fn install_verify(&self, engine: &mut dyn Engine) {
        if self.verify_plane.is_some() {
            engine.set_verify_backend(self.make_verify_backend());
        }
    }

    /// The validated configuration.
    pub fn protocol_config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    fn beacon(&self) -> Beacon {
        Beacon::new(self.beacon_mode, self.cfg.n())
    }

    fn registry(&self, i: u16) -> KeyRegistry {
        KeyRegistry::generate(self.scheme.clone(), self.cluster_seed, self.cfg.n(), i)
    }

    fn byz_mode(&self, i: u16) -> ByzantineMode {
        self.byzantine
            .iter()
            .find(|(r, _)| *r == i)
            .map(|(_, m)| m.clone())
            .unwrap_or(ByzantineMode::Honest)
    }

    fn build_chained_replica(&self, mode: PathMode, i: u16) -> Box<dyn Engine> {
        let mut engine = ChainedEngine::new(
            self.cfg.clone(),
            mode,
            self.registry(i),
            self.beacon(),
            (self.sources)(i),
        )
        .with_byzantine(self.byz_mode(i));
        if let Some(stores) = &self.stores {
            engine = engine.with_store(stores(i));
        }
        if let Some(ocfg) = self.optimistic {
            engine = engine.with_optimistic(ocfg);
        }
        self.install_verify(&mut engine);
        Box::new(engine)
    }

    /// Guard: optimistic pipelining exists only for the chained engines.
    fn assert_no_optimistic(&self, protocol: &str) {
        assert!(
            self.optimistic.is_none(),
            "optimistic pipelining is not supported for {protocol}; \
             it is a chained-engine (banyan/icc) feature"
        );
    }

    fn build_chained(&self, mode: PathMode) -> Vec<Box<dyn Engine>> {
        (0..self.cfg.n() as u16)
            .map(|i| self.build_chained_replica(mode, i))
            .collect()
    }

    /// Builds an `n`-replica Banyan cluster.
    pub fn build_banyan(&self) -> Vec<Box<dyn Engine>> {
        self.build_chained(PathMode::Banyan)
    }

    /// Builds an `n`-replica ICC (slow-path-only) cluster.
    pub fn build_icc(&self) -> Vec<Box<dyn Engine>> {
        self.build_chained(PathMode::IccOnly)
    }

    /// Builds an `n`-replica chained-HotStuff cluster.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::optimistic`] was set: HotStuff is already
    /// optimistically responsive (a formed QC immediately triggers the
    /// next leader's proposal), so the chained engines' pipelining knob
    /// does not apply.
    pub fn build_hotstuff(&self) -> Vec<Box<dyn Engine>> {
        self.assert_no_optimistic("hotstuff");
        (0..self.cfg.n() as u16)
            .map(|i| {
                let mut engine = HotStuffEngine::new(
                    self.cfg.clone(),
                    self.registry(i),
                    self.beacon(),
                    (self.sources)(i),
                    self.baseline_timeout,
                );
                self.install_verify(&mut engine);
                Box::new(engine) as Box<dyn Engine>
            })
            .collect()
    }

    /// Builds an `n`-replica Streamlet cluster. The epoch length is `2Δ`.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::optimistic`] was set: Streamlet proposals are
    /// clocked by the epoch timer, not by certificate arrival, so there
    /// is no certification wait to overlap.
    pub fn build_streamlet(&self) -> Vec<Box<dyn Engine>> {
        self.assert_no_optimistic("streamlet");
        let epoch_len = self.cfg.delta.saturating_mul(2);
        (0..self.cfg.n() as u16)
            .map(|i| {
                let mut engine = StreamletEngine::new(
                    self.cfg.clone(),
                    self.registry(i),
                    self.beacon(),
                    (self.sources)(i),
                    epoch_len,
                );
                self.install_verify(&mut engine);
                Box::new(engine) as Box<dyn Engine>
            })
            .collect()
    }

    /// Builds a cluster by protocol name ("banyan", "icc", "hotstuff",
    /// "streamlet").
    ///
    /// # Panics
    ///
    /// Panics on an unknown protocol name.
    pub fn build(&self, protocol: &str) -> Vec<Box<dyn Engine>> {
        match protocol {
            "banyan" => self.build_banyan(),
            "icc" => self.build_icc(),
            "hotstuff" => self.build_hotstuff(),
            "streamlet" => self.build_streamlet(),
            other => panic!("unknown protocol {other:?}"),
        }
    }

    /// Builds a single replica's engine — the crash-recovery path: a
    /// restarting replica rebuilds exactly its own engine (same PKI,
    /// beacon, sources, and — via [`Self::chain_stores`] — its reopened
    /// store), then `Engine::restore`s a snapshot before `on_init`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown protocol name or out-of-range index.
    pub fn build_replica(&self, protocol: &str, i: u16) -> Box<dyn Engine> {
        assert!(
            (i as usize) < self.cfg.n(),
            "replica index {i} out of range"
        );
        match protocol {
            "banyan" => self.build_chained_replica(PathMode::Banyan, i),
            "icc" => self.build_chained_replica(PathMode::IccOnly, i),
            "hotstuff" => {
                self.assert_no_optimistic("hotstuff");
                let mut engine = HotStuffEngine::new(
                    self.cfg.clone(),
                    self.registry(i),
                    self.beacon(),
                    (self.sources)(i),
                    self.baseline_timeout,
                );
                self.install_verify(&mut engine);
                Box::new(engine)
            }
            "streamlet" => {
                self.assert_no_optimistic("streamlet");
                let mut engine = StreamletEngine::new(
                    self.cfg.clone(),
                    self.registry(i),
                    self.beacon(),
                    (self.sources)(i),
                    self.cfg.delta.saturating_mul(2),
                );
                self.install_verify(&mut engine);
                Box::new(engine)
            }
            other => panic!("unknown protocol {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_protocols() {
        let b = ClusterBuilder::new(4, 1, 1).unwrap().payload_size(100);
        for proto in ["banyan", "icc", "hotstuff", "streamlet"] {
            let engines = b.build(proto);
            assert_eq!(engines.len(), 4, "{proto}");
            assert_eq!(engines[2].id().0, 2);
            assert_eq!(engines[0].protocol_name(), proto);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(ClusterBuilder::new(3, 1, 1).is_err());
        assert!(ClusterBuilder::new(4, 1, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown protocol")]
    fn unknown_protocol_panics() {
        let _ = ClusterBuilder::new(4, 1, 1).unwrap().build("pbft");
    }

    #[test]
    fn optimistic_builds_chained_engines() {
        let b = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .payload_size(100)
            .optimistic(OptimisticConfig::default());
        for proto in ["banyan", "icc"] {
            assert_eq!(b.build(proto).len(), 4, "{proto}");
        }
    }

    #[test]
    #[should_panic(expected = "not supported for hotstuff")]
    fn optimistic_hotstuff_is_rejected() {
        let _ = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .optimistic(OptimisticConfig::default())
            .build("hotstuff");
    }

    #[test]
    #[should_panic(expected = "not supported for streamlet")]
    fn optimistic_streamlet_is_rejected() {
        let _ = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .optimistic(OptimisticConfig::default())
            .build_streamlet();
    }
}
