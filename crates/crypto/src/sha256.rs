//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! The Banyan paper assumes collision-resistant hash functions for block
//! identities and vote payloads (§3). This module provides the primitive
//! without pulling an external dependency; it is validated against the
//! official NIST test vectors in the unit tests below.
//!
//! Both a one-shot convenience function ([`sha256`]) and an incremental
//! hasher ([`Sha256`]) are provided. The incremental form is used by the
//! wire codec to hash blocks without materializing a contiguous buffer.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// SHA-256 block size in bytes (also the HMAC block size).
pub const BLOCK_LEN: usize = 64;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use banyan_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
///
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (drives the length suffix in padding).
    len: u64,
    /// Partially filled block.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        self.len = self.len.wrapping_add(data.len() as u64);

        // Fill a partial block first, if any.
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut arr = [0u8; BLOCK_LEN];
            arr.copy_from_slice(block);
            self.compress(&arr);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);

        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.buf[self.buf_len] = 0x80;
        let mut i = self.buf_len + 1;
        if i > BLOCK_LEN - 8 {
            for b in self.buf[i..].iter_mut() {
                *b = 0;
            }
            let block = self.buf;
            self.compress(&block);
            i = 0;
        }
        for b in self.buf[i..BLOCK_LEN - 8].iter_mut() {
            *b = 0;
        }
        self.buf[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One compression-function invocation over a 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Examples
///
/// ```
/// let d = banyan_crypto::sha256::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte slices, without allocating.
pub fn sha256_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// NIST FIPS 180-4 / de-facto standard test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(hex(&sha256(input)), *expect, "input: {input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let whole = sha256(&data);
        for split in 0..=data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn concat_matches_single_buffer() {
        let a = b"hello ".as_slice();
        let b = b"banyan ".as_slice();
        let c = b"world".as_slice();
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        joined.extend_from_slice(c);
        assert_eq!(sha256_concat(&[a, b, c]), sha256(&joined));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths straddling the 55/56/64-byte padding boundaries all differ
        // and hash deterministically.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let d = sha256(&data);
            assert_eq!(d, sha256(&data));
            assert!(seen.insert(d), "collision at length {len}");
        }
    }
}
