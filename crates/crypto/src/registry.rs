//! Key registry: the PKI assumed by the paper (§3).
//!
//! A [`KeyRegistry`] holds the public keys of all `n` replicas plus this
//! replica's own secret key, and offers the vote-level operations the
//! engines use: sign a digest, verify a peer's vote, aggregate a quorum,
//! verify a certificate. Engines never touch raw keys.

use std::sync::Arc;

use crate::sig::{
    AggregateSignature, BatchItem, PublicKey, SecretKey, Signature, SignatureScheme, SignerIndex,
};

/// Deterministically derives the key seed for replica `index` from a cluster
/// seed. All replicas of a test cluster derive the same PKI this way.
pub fn derive_seed(cluster_seed: u64, index: SignerIndex) -> [u8; 32] {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&cluster_seed.to_le_bytes());
    seed[8..10].copy_from_slice(&index.to_le_bytes());
    crate::sha256::sha256(&seed)
}

/// The shared, immutable part of a cluster PKI: every replica's public key.
#[derive(Clone, Debug)]
pub struct PublicKeyTable {
    scheme: Arc<dyn SignatureScheme>,
    pks: Vec<PublicKey>,
}

impl PublicKeyTable {
    /// Builds the table for an `n`-replica cluster from a cluster seed.
    pub fn generate(scheme: Arc<dyn SignatureScheme>, cluster_seed: u64, n: usize) -> Self {
        let pks = (0..n)
            .map(|i| {
                scheme
                    .keygen(&derive_seed(cluster_seed, i as SignerIndex))
                    .1
            })
            .collect();
        PublicKeyTable { scheme, pks }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.pks.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pks.is_empty()
    }

    /// Public key of replica `index`, if in range.
    pub fn public_key(&self, index: SignerIndex) -> Option<&PublicKey> {
        self.pks.get(index as usize)
    }

    /// Verifies a single replica's signature over `msg`.
    pub fn verify(&self, index: SignerIndex, msg: &[u8], sig: &Signature) -> bool {
        match self.public_key(index) {
            Some(pk) => self.scheme.verify(pk, msg, sig),
            None => false,
        }
    }

    /// Verifies an aggregate certificate over `msg`.
    pub fn verify_aggregate(&self, msg: &[u8], agg: &AggregateSignature) -> bool {
        self.scheme.verify_aggregate(&self.pks, msg, agg)
    }

    /// Verifies a batch of `(signer, message, signature)` triples in one
    /// combined check when the scheme supports it, returning per-item
    /// verdicts. An out-of-range signer index yields `false` for that item
    /// without poisoning the rest of the batch.
    pub fn verify_batch(&self, items: &[(SignerIndex, &[u8], &Signature)]) -> Vec<bool> {
        let mut batch = Vec::with_capacity(items.len());
        let mut in_range = Vec::with_capacity(items.len());
        for &(idx, msg, sig) in items {
            if let Some(pk) = self.public_key(idx) {
                in_range.push(batch.len());
                batch.push(BatchItem { pk, msg, sig });
            } else {
                in_range.push(usize::MAX);
            }
        }
        let verdicts = self.scheme.verify_batch(&batch);
        in_range
            .into_iter()
            .map(|slot| slot != usize::MAX && verdicts[slot])
            .collect()
    }

    /// Aggregates individual votes into a certificate.
    pub fn aggregate(&self, sigs: &[(SignerIndex, Signature)]) -> AggregateSignature {
        self.scheme.aggregate(self.pks.len(), sigs)
    }

    /// The scheme in use.
    pub fn scheme(&self) -> &Arc<dyn SignatureScheme> {
        &self.scheme
    }
}

/// One replica's view of the PKI: the shared table plus its own secret key.
#[derive(Clone, Debug)]
pub struct KeyRegistry {
    table: PublicKeyTable,
    my_index: SignerIndex,
    my_sk: SecretKey,
}

impl KeyRegistry {
    /// Creates the registry for replica `my_index` of an `n`-replica cluster.
    ///
    /// # Panics
    ///
    /// Panics if `my_index` is out of range for the table.
    pub fn generate(
        scheme: Arc<dyn SignatureScheme>,
        cluster_seed: u64,
        n: usize,
        my_index: SignerIndex,
    ) -> Self {
        assert!(
            (my_index as usize) < n,
            "replica index {my_index} out of range (n = {n})"
        );
        let table = PublicKeyTable::generate(scheme.clone(), cluster_seed, n);
        let (my_sk, _) = scheme.keygen(&derive_seed(cluster_seed, my_index));
        KeyRegistry {
            table,
            my_index,
            my_sk,
        }
    }

    /// This replica's index.
    pub fn my_index(&self) -> SignerIndex {
        self.my_index
    }

    /// Signs `msg` with this replica's secret key.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.table.scheme.sign(&self.my_sk, msg)
    }

    /// The shared public-key table.
    pub fn table(&self) -> &PublicKeyTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashsig::HashSig;
    use crate::schnorr::ToySchnorr;

    fn schemes() -> Vec<Arc<dyn SignatureScheme>> {
        vec![Arc::new(HashSig), Arc::new(ToySchnorr::new())]
    }

    #[test]
    fn cluster_members_can_verify_each_other() {
        for scheme in schemes() {
            let n = 7;
            let regs: Vec<_> = (0..n)
                .map(|i| KeyRegistry::generate(scheme.clone(), 42, n, i as SignerIndex))
                .collect();
            let msg = b"notarization vote / round 3 / block abc";
            for (i, reg) in regs.iter().enumerate() {
                let sig = reg.sign(msg);
                for other in &regs {
                    assert!(
                        other.table().verify(i as SignerIndex, msg, &sig),
                        "scheme {} replica {i}",
                        scheme.name()
                    );
                }
                assert!(!regs[0]
                    .table()
                    .verify(((i + 1) % n) as SignerIndex, msg, &sig));
            }
        }
    }

    #[test]
    fn quorum_aggregation_roundtrip() {
        for scheme in schemes() {
            let n = 19;
            let regs: Vec<_> = (0..n)
                .map(|i| KeyRegistry::generate(scheme.clone(), 7, n, i as SignerIndex))
                .collect();
            let msg = b"fast vote";
            let votes: Vec<_> = regs
                .iter()
                .take(13)
                .enumerate()
                .map(|(i, r)| (i as SignerIndex, r.sign(msg)))
                .collect();
            let cert = regs[0].table().aggregate(&votes);
            assert_eq!(cert.count(), 13);
            assert!(regs[18].table().verify_aggregate(msg, &cert));
            assert!(!regs[18].table().verify_aggregate(b"other", &cert));
        }
    }

    #[test]
    fn different_cluster_seeds_give_disjoint_pki() {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(HashSig);
        let a = KeyRegistry::generate(scheme.clone(), 1, 4, 0);
        let b = KeyRegistry::generate(scheme.clone(), 2, 4, 0);
        let sig = a.sign(b"m");
        assert!(!b.table().verify(0, b"m", &sig));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(HashSig);
        let _ = KeyRegistry::generate(scheme, 1, 4, 4);
    }

    #[test]
    fn derive_seed_is_injective_over_small_domain() {
        let mut seen = std::collections::HashSet::new();
        for cluster in 0..4u64 {
            for idx in 0..32u16 {
                assert!(seen.insert(derive_seed(cluster, idx)));
            }
        }
    }
}
