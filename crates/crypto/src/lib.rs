//! Cryptographic substrate for the Banyan BFT reproduction.
//!
//! The Banyan paper (MIDDLEWARE 2024) assumes a PKI, secure digital
//! signatures, collision-resistant hash functions and a shared-randomness
//! beacon (§3), and uses BLS multi-signatures to aggregate votes (§4,
//! Def. 7.7). This crate provides all of that from scratch, using only the
//! approved offline dependency set:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, validated against NIST vectors.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104/4231).
//! * [`merkle`] — RFC-6962-style Merkle trees for payload commitments.
//! * [`sig`] — the [`sig::SignatureScheme`] trait: sign / verify /
//!   aggregate / verify-aggregate, exactly the surface BLS provides.
//! * [`hashsig`] — HMAC-based scheme with constant-size aggregates
//!   (BLS stand-in for simulation; see module docs for the threat model).
//! * [`schnorr`] — publicly verifiable Schnorr over a toy 62-bit group.
//! * [`registry`] — per-replica key registry (the PKI).
//! * [`verify`] — the verify plane: [`verify::VerifyBackend`] with batched
//!   vote verification and an LRU certificate-verdict cache.
//! * [`beacon`] — round-robin and seeded-permutation leader beacons.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use banyan_crypto::registry::KeyRegistry;
//! use banyan_crypto::hashsig::HashSig;
//!
//! // A 4-replica cluster PKI; this process is replica 2.
//! let reg = KeyRegistry::generate(Arc::new(HashSig), /*cluster_seed*/ 1, 4, 2);
//! let sig = reg.sign(b"notarization vote");
//! assert!(reg.table().verify(2, b"notarization vote", &sig));
//! ```

pub mod beacon;
pub mod hashsig;
pub mod hmac;
pub mod merkle;
pub mod registry;
pub mod schnorr;
pub mod sha256;
pub mod sig;
pub mod verify;

pub use beacon::{Beacon, BeaconMode};
pub use hashsig::HashSig;
pub use merkle::{MerkleProof, MerkleTree};
pub use registry::{KeyRegistry, PublicKeyTable};
pub use schnorr::ToySchnorr;
pub use sig::{
    AggregateSignature, BatchItem, PublicKey, SecretKey, Signature, SignatureScheme, SignerBitmap,
    SignerIndex,
};
pub use verify::{CachedVerify, DirectVerify, VerifyBackend, VerifyStats};
