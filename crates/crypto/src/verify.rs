//! The verify plane: every signature check a consensus engine performs is
//! routed through a [`VerifyBackend`], so the *policy* (batch vote bursts?
//! cache certificate verdicts? run on the consensus thread or in the
//! pipeline's verify workers?) is decided once, outside the protocol logic.
//!
//! Two implementations:
//!
//! * [`DirectVerify`] — verifies against the [`PublicKeyTable`] inline,
//!   optionally batching vote bursts through the scheme's combined check
//!   ([`crate::sig::SignatureScheme::verify_batch`]).
//! * [`CachedVerify`] — [`DirectVerify`] plus a bounded LRU cache of
//!   certificate verdicts keyed by cert hash: a quorum certificate
//!   rebroadcast by `f + 1` peers (heartbeats, piggybacked parents,
//!   catch-up replies) is verified cryptographically once.
//!
//! All counters are atomics, so one backend can be shared (`Arc`) between a
//! consensus thread and the staged pipeline's verify workers; the counts
//! themselves depend only on the call sequence, which keeps simulation runs
//! bit-reproducible.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::PublicKeyTable;
use crate::sha256::Sha256;
use crate::sig::{AggregateSignature, Signature, SignerIndex};

/// Snapshot of a backend's verification counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Individual signatures cryptographically checked (batched or not).
    pub sigs_verified: u64,
    /// The subset of [`sigs_verified`](Self::sigs_verified) checked through
    /// a combined (batched) equation rather than one at a time. Cost models
    /// discount these: a batched signature costs a fraction of an
    /// individual one.
    pub sigs_batched: u64,
    /// Vote bursts checked with one combined (batched) equation.
    pub verify_batches: u64,
    /// Certificate verifications answered from the LRU cache.
    pub cert_cache_hits: u64,
    /// Wall-clock nanoseconds spent inside verification calls. Meaningful
    /// for real (TCP) runs; the simulator ignores it and charges calibrated
    /// virtual costs instead, so sim metrics stay bit-reproducible.
    pub verify_cpu_ns: u64,
}

impl VerifyStats {
    /// Wall-clock milliseconds spent verifying.
    pub fn verify_cpu_ms(&self) -> u64 {
        self.verify_cpu_ns / 1_000_000
    }

    /// Counter increments since an earlier snapshot.
    pub fn delta_since(&self, earlier: &VerifyStats) -> VerifyStats {
        VerifyStats {
            sigs_verified: self.sigs_verified - earlier.sigs_verified,
            sigs_batched: self.sigs_batched - earlier.sigs_batched,
            verify_batches: self.verify_batches - earlier.verify_batches,
            cert_cache_hits: self.cert_cache_hits - earlier.cert_cache_hits,
            verify_cpu_ns: self.verify_cpu_ns - earlier.verify_cpu_ns,
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn merge(&mut self, other: &VerifyStats) {
        self.sigs_verified += other.sigs_verified;
        self.sigs_batched += other.sigs_batched;
        self.verify_batches += other.verify_batches;
        self.cert_cache_hits += other.cert_cache_hits;
        self.verify_cpu_ns += other.verify_cpu_ns;
    }
}

/// Where the engines send every signature check.
///
/// Implementations must be deterministic in their *verdicts and counters*
/// for a given call sequence (wall-clock `verify_cpu_ns` excepted).
pub trait VerifyBackend: Send + Sync + std::fmt::Debug {
    /// Verifies one replica's signature over `msg`.
    fn verify(&self, index: SignerIndex, msg: &[u8], sig: &Signature) -> bool;

    /// Verifies a burst of votes, batched through the scheme's combined
    /// check when enabled; returns per-item verdicts matching what
    /// [`Self::verify`] would say.
    fn verify_votes(&self, votes: &[(SignerIndex, &[u8], &Signature)]) -> Vec<bool>;

    /// Verifies an aggregate certificate over `msg`.
    fn verify_aggregate(&self, msg: &[u8], agg: &AggregateSignature) -> bool;

    /// Current counter snapshot.
    fn stats(&self) -> VerifyStats;

    /// The public-key table this backend verifies against.
    fn table(&self) -> &PublicKeyTable;
}

#[derive(Debug, Default)]
struct Counters {
    sigs: AtomicU64,
    batched_sigs: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cpu_ns: AtomicU64,
}

impl Counters {
    fn snapshot(&self, extra_hits: u64) -> VerifyStats {
        VerifyStats {
            sigs_verified: self.sigs.load(Ordering::Relaxed),
            sigs_batched: self.batched_sigs.load(Ordering::Relaxed),
            verify_batches: self.batches.load(Ordering::Relaxed),
            cert_cache_hits: self.cache_hits.load(Ordering::Relaxed) + extra_hits,
            verify_cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
        }
    }
}

/// Inline verification against the key table, with optional vote batching.
#[derive(Debug)]
pub struct DirectVerify {
    table: PublicKeyTable,
    batching: bool,
    counters: Counters,
}

impl DirectVerify {
    /// Backend over `table` with batching disabled (each vote verified
    /// individually) — the behavior engines had before the verify plane.
    pub fn new(table: PublicKeyTable) -> Self {
        DirectVerify {
            table,
            batching: false,
            counters: Counters::default(),
        }
    }

    /// Enables or disables batched vote verification.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }
}

impl VerifyBackend for DirectVerify {
    fn verify(&self, index: SignerIndex, msg: &[u8], sig: &Signature) -> bool {
        let start = Instant::now();
        let ok = self.table.verify(index, msg, sig);
        self.counters.sigs.fetch_add(1, Ordering::Relaxed);
        self.counters
            .cpu_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        ok
    }

    fn verify_votes(&self, votes: &[(SignerIndex, &[u8], &Signature)]) -> Vec<bool> {
        if !self.batching || votes.len() < 2 {
            return votes
                .iter()
                .map(|&(idx, msg, sig)| self.verify(idx, msg, sig))
                .collect();
        }
        let start = Instant::now();
        let verdicts = self.table.verify_batch(votes);
        self.counters
            .sigs
            .fetch_add(votes.len() as u64, Ordering::Relaxed);
        self.counters
            .batched_sigs
            .fetch_add(votes.len() as u64, Ordering::Relaxed);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .cpu_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        verdicts
    }

    fn verify_aggregate(&self, msg: &[u8], agg: &AggregateSignature) -> bool {
        let start = Instant::now();
        let ok = self.table.verify_aggregate(msg, agg);
        // Count the members actually checked: an aggregate is a
        // multi-signature over `count` signers.
        self.counters
            .sigs
            .fetch_add(agg.count() as u64, Ordering::Relaxed);
        if self.batching && agg.count() >= 2 {
            // A multi-signature check is one combined equation over its
            // members, so the members count as batched work.
            self.counters
                .batched_sigs
                .fetch_add(agg.count() as u64, Ordering::Relaxed);
            self.counters.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.counters
            .cpu_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        ok
    }

    fn stats(&self) -> VerifyStats {
        self.counters.snapshot(0)
    }

    fn table(&self) -> &PublicKeyTable {
        &self.table
    }
}

/// Bounded LRU set of certificate-hash keys, with lazy deletion.
#[derive(Debug)]
struct CertCache {
    cap: usize,
    tick: u64,
    live: HashMap<[u8; 32], u64>,
    queue: VecDeque<([u8; 32], u64)>,
}

impl CertCache {
    fn new(cap: usize) -> Self {
        CertCache {
            cap: cap.max(1),
            tick: 0,
            live: HashMap::new(),
            queue: VecDeque::new(),
        }
    }

    /// True (and recency refreshed) if `key` is cached.
    fn hit(&mut self, key: &[u8; 32]) -> bool {
        if let Some(t) = self.live.get_mut(key) {
            self.tick += 1;
            *t = self.tick;
            self.queue.push_back((*key, self.tick));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: [u8; 32]) {
        self.tick += 1;
        self.live.insert(key, self.tick);
        self.queue.push_back((key, self.tick));
        // Evict least-recently-used entries past capacity; queue entries
        // whose tick is stale are leftovers from refreshes, not live.
        while self.live.len() > self.cap {
            match self.queue.pop_front() {
                Some((k, t)) => {
                    if self.live.get(&k) == Some(&t) {
                        self.live.remove(&k);
                    }
                }
                None => break,
            }
        }
        // Keep the lazy-deletion queue proportional to the live set.
        while self.queue.len() > self.live.len() * 2 + 8 {
            match self.queue.front() {
                Some(&(k, t)) if self.live.get(&k) != Some(&t) => {
                    self.queue.pop_front();
                }
                _ => break,
            }
        }
    }
}

/// [`DirectVerify`] plus a bounded LRU certificate-verdict cache.
///
/// Only *successful* verifications are cached — a forged certificate is
/// re-checked (and re-rejected) every time, so the cache can never launder
/// a bad cert into a good one.
#[derive(Debug)]
pub struct CachedVerify {
    inner: DirectVerify,
    cache: Mutex<CertCache>,
}

impl CachedVerify {
    /// Caching backend over `table` holding up to `cap` cert verdicts.
    pub fn new(table: PublicKeyTable, cap: usize) -> Self {
        CachedVerify {
            inner: DirectVerify::new(table).with_batching(true),
            cache: Mutex::new(CertCache::new(cap)),
        }
    }

    /// Cache key: hash of everything that defines the verification —
    /// message, signer bitmap, and aggregate payload (length-prefixed).
    fn cert_key(msg: &[u8], agg: &AggregateSignature) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&(msg.len() as u64).to_le_bytes());
        h.update(msg);
        h.update(&(agg.signers.len() as u64).to_le_bytes());
        for w in agg.signers.words() {
            h.update(&w.to_le_bytes());
        }
        h.update(&agg.data);
        h.finalize()
    }
}

impl VerifyBackend for CachedVerify {
    fn verify(&self, index: SignerIndex, msg: &[u8], sig: &Signature) -> bool {
        self.inner.verify(index, msg, sig)
    }

    fn verify_votes(&self, votes: &[(SignerIndex, &[u8], &Signature)]) -> Vec<bool> {
        self.inner.verify_votes(votes)
    }

    fn verify_aggregate(&self, msg: &[u8], agg: &AggregateSignature) -> bool {
        let key = Self::cert_key(msg, agg);
        if self.cache.lock().expect("cert cache poisoned").hit(&key) {
            self.inner
                .counters
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let ok = self.inner.verify_aggregate(msg, agg);
        if ok {
            self.cache.lock().expect("cert cache poisoned").insert(key);
        }
        ok
    }

    fn stats(&self) -> VerifyStats {
        self.inner.stats()
    }

    fn table(&self) -> &PublicKeyTable {
        self.inner.table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::KeyRegistry;
    use crate::schnorr::ToySchnorr;
    use crate::sig::SignatureScheme;
    use std::sync::Arc;

    fn regs(n: usize) -> Vec<KeyRegistry> {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(ToySchnorr::compact());
        (0..n)
            .map(|i| KeyRegistry::generate(scheme.clone(), 5, n, i as SignerIndex))
            .collect()
    }

    #[test]
    fn direct_counts_singles_and_batches() {
        let regs = regs(4);
        let backend = DirectVerify::new(regs[0].table().clone()).with_batching(true);
        let sig = regs[1].sign(b"v");
        assert!(backend.verify(1, b"v", &sig));
        let sigs: Vec<_> = regs.iter().map(|r| r.sign(b"v")).collect();
        let votes: Vec<(SignerIndex, &[u8], &Signature)> = sigs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as SignerIndex, b"v".as_slice(), s))
            .collect();
        assert_eq!(backend.verify_votes(&votes), vec![true; 4]);
        let st = backend.stats();
        assert_eq!(st.sigs_verified, 5);
        assert_eq!(st.verify_batches, 1);
        assert_eq!(st.cert_cache_hits, 0);
    }

    #[test]
    fn batched_votes_match_individual_verdicts() {
        let regs = regs(5);
        let backend = DirectVerify::new(regs[0].table().clone()).with_batching(true);
        let mut sigs: Vec<_> = regs.iter().map(|r| r.sign(b"v")).collect();
        sigs[2].0[4] ^= 1; // corrupt one vote
        let votes: Vec<(SignerIndex, &[u8], &Signature)> = sigs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as SignerIndex, b"v".as_slice(), s))
            .collect();
        assert_eq!(
            backend.verify_votes(&votes),
            vec![true, true, false, true, true]
        );
    }

    #[test]
    fn cert_cache_hits_after_first_verification() {
        let regs = regs(4);
        let backend = CachedVerify::new(regs[0].table().clone(), 16);
        let votes: Vec<_> = regs
            .iter()
            .enumerate()
            .map(|(i, r)| (i as SignerIndex, r.sign(b"cert")))
            .collect();
        let agg = regs[0].table().aggregate(&votes);
        assert!(backend.verify_aggregate(b"cert", &agg));
        assert!(backend.verify_aggregate(b"cert", &agg));
        assert!(backend.verify_aggregate(b"cert", &agg));
        let st = backend.stats();
        assert_eq!(st.cert_cache_hits, 2);
        assert_eq!(st.sigs_verified, agg.count() as u64);
    }

    #[test]
    fn failed_certs_are_never_cached() {
        let regs = regs(4);
        let backend = CachedVerify::new(regs[0].table().clone(), 16);
        let votes: Vec<_> = regs
            .iter()
            .enumerate()
            .map(|(i, r)| (i as SignerIndex, r.sign(b"cert")))
            .collect();
        let agg = regs[0].table().aggregate(&votes);
        assert!(!backend.verify_aggregate(b"other", &agg));
        assert!(!backend.verify_aggregate(b"other", &agg));
        assert_eq!(backend.stats().cert_cache_hits, 0);
    }

    #[test]
    fn lru_evicts_oldest_certificate() {
        let regs = regs(4);
        let backend = CachedVerify::new(regs[0].table().clone(), 2);
        let agg_for = |msg: &[u8]| {
            let votes: Vec<_> = regs
                .iter()
                .enumerate()
                .map(|(i, r)| (i as SignerIndex, r.sign(msg)))
                .collect();
            regs[0].table().aggregate(&votes)
        };
        let (a, b, c) = (agg_for(b"a"), agg_for(b"b"), agg_for(b"c"));
        assert!(backend.verify_aggregate(b"a", &a));
        assert!(backend.verify_aggregate(b"b", &b));
        assert!(backend.verify_aggregate(b"a", &a)); // refresh a
        assert!(backend.verify_aggregate(b"c", &c)); // evicts b (LRU)
        assert!(backend.verify_aggregate(b"a", &a)); // still cached
        assert!(backend.verify_aggregate(b"b", &b)); // re-verified
        let st = backend.stats();
        assert_eq!(st.cert_cache_hits, 2);
    }
}
