//! `HashSig`: an HMAC-based stand-in for BLS multi-signatures.
//!
//! # Threat model — read this
//!
//! The Banyan paper uses BLS multi-signatures [Boneh–Drijvers–Neven 2018] so
//! votes aggregate into one compact, publicly verifiable certificate. BLS
//! needs pairing curves, which we deliberately do not hand-roll (substitution
//! **R2** in `DESIGN.md`). `HashSig` reproduces the *API and message flow* of
//! BLS exactly — fixed-size signatures, constant-size aggregates carrying a
//! signer bitmap, aggregate verification against the public-key table — but
//! it is **not secure against an adversary outside the process**: the
//! "public key" doubles as the MAC key, so anyone holding the key table can
//! forge. That is acceptable in a single-process simulation or a trusted
//! benchmark cluster, which is where the paper's latency measurements live;
//! use [`crate::schnorr::ToySchnorr`] when public verifiability matters
//! structurally.
//!
//! Aggregation XORs the 32-byte member tags together, so the aggregate is
//! constant-size no matter how many replicas signed — the same asymptotics
//! as a BLS multi-signature.

use crate::hmac::{ct_eq, hmac_sha256};
use crate::sha256::sha256_concat;
use crate::sig::{
    AggregateSignature, PublicKey, SecretKey, Signature, SignatureScheme, SignerBitmap,
    SignerIndex, SCHEME_ID_HASHSIG,
};

/// Domain-separation prefix for key derivation.
const KEYGEN_DOMAIN: &[u8] = b"banyan/hashsig/v1/keygen";
/// Domain-separation prefix for signing.
const SIGN_DOMAIN: &[u8] = b"banyan/hashsig/v1/sign";

/// The HMAC-based multi-signature scheme. Stateless; construct freely.
///
/// # Examples
///
/// ```
/// use banyan_crypto::hashsig::HashSig;
/// use banyan_crypto::sig::SignatureScheme;
///
/// let scheme = HashSig;
/// let (sk, pk) = scheme.keygen(&[7u8; 32]);
/// let sig = scheme.sign(&sk, b"block");
/// assert!(scheme.verify(&pk, b"block", &sig));
/// assert!(!scheme.verify(&pk, b"other", &sig));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct HashSig;

impl HashSig {
    fn tag(pk_material: &[u8; 32], msg: &[u8]) -> [u8; 32] {
        let mut keyed = [0u8; 64];
        keyed[..32].copy_from_slice(pk_material);
        keyed[32..].copy_from_slice(&sha256_concat(&[SIGN_DOMAIN, pk_material]));
        hmac_sha256(&keyed, msg)
    }
}

impl SignatureScheme for HashSig {
    fn name(&self) -> &'static str {
        "hashsig"
    }

    fn scheme_id(&self) -> u8 {
        SCHEME_ID_HASHSIG
    }

    fn keygen(&self, seed: &[u8; 32]) -> (SecretKey, PublicKey) {
        // sk and pk share the derived material: symmetric by design (see
        // module docs). Deriving from the seed (rather than using it raw)
        // keeps distinct domains for distinct schemes sharing one seed.
        let material = sha256_concat(&[KEYGEN_DOMAIN, seed]);
        (SecretKey::from_bytes(material), PublicKey(material))
    }

    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Signature {
        let tag = Self::tag(sk.as_bytes(), msg);
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&tag);
        // Upper half binds the signer key so two replicas' signatures over
        // the same message differ visibly even in traces.
        out[32..].copy_from_slice(&sha256_concat(&[&tag, sk.as_bytes()]));
        Signature(out)
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let expect = Self::tag(&pk.0, msg);
        ct_eq(&sig.0[..32], &expect)
    }

    fn aggregate(&self, n: usize, sigs: &[(SignerIndex, Signature)]) -> AggregateSignature {
        let mut signers = SignerBitmap::new(n);
        let mut acc = [0u8; 32];
        for (idx, sig) in sigs {
            if signers.contains(*idx) {
                continue; // duplicates contribute once, like BLS de-dup
            }
            signers.set(*idx);
            for (a, b) in acc.iter_mut().zip(sig.0[..32].iter()) {
                *a ^= b;
            }
        }
        AggregateSignature {
            signers,
            data: acc.to_vec(),
        }
    }

    fn verify_aggregate(&self, pks: &[PublicKey], msg: &[u8], agg: &AggregateSignature) -> bool {
        if agg.data.len() != 32 {
            return false;
        }
        let mut acc = [0u8; 32];
        for idx in agg.signers.iter() {
            let Some(pk) = pks.get(idx as usize) else {
                return false;
            };
            let tag = Self::tag(&pk.0, msg);
            for (a, b) in acc.iter_mut().zip(tag.iter()) {
                *a ^= b;
            }
        }
        ct_eq(&acc, &agg.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> (Vec<SecretKey>, Vec<PublicKey>) {
        let scheme = HashSig;
        (0..n)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[0] = i as u8;
                scheme.keygen(&seed)
            })
            .unzip()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let scheme = HashSig;
        let (sks, pks) = keys(4);
        for (i, sk) in sks.iter().enumerate() {
            let sig = scheme.sign(sk, b"round-7-block");
            assert!(scheme.verify(&pks[i], b"round-7-block", &sig));
            assert!(!scheme.verify(&pks[i], b"round-7-block!", &sig));
            // Wrong key fails.
            assert!(!scheme.verify(&pks[(i + 1) % 4], b"round-7-block", &sig));
        }
    }

    #[test]
    fn signing_is_deterministic() {
        let scheme = HashSig;
        let (sk, _) = scheme.keygen(&[9u8; 32]);
        assert_eq!(scheme.sign(&sk, b"m").0, scheme.sign(&sk, b"m").0);
    }

    #[test]
    fn aggregate_verifies_and_is_constant_size() {
        let scheme = HashSig;
        let (sks, pks) = keys(19);
        let msg = b"notarize block 42";
        let sigs: Vec<_> = sks
            .iter()
            .enumerate()
            .take(13)
            .map(|(i, sk)| (i as SignerIndex, scheme.sign(sk, msg)))
            .collect();
        let agg = scheme.aggregate(19, &sigs);
        assert_eq!(agg.count(), 13);
        assert_eq!(
            agg.data.len(),
            32,
            "aggregate must be constant-size like BLS"
        );
        assert!(scheme.verify_aggregate(&pks, msg, &agg));
    }

    #[test]
    fn aggregate_rejects_wrong_message() {
        let scheme = HashSig;
        let (sks, pks) = keys(4);
        let sigs: Vec<_> = sks
            .iter()
            .enumerate()
            .map(|(i, sk)| (i as SignerIndex, scheme.sign(sk, b"a")))
            .collect();
        let agg = scheme.aggregate(4, &sigs);
        assert!(!scheme.verify_aggregate(&pks, b"b", &agg));
    }

    #[test]
    fn aggregate_rejects_tampered_bitmap() {
        let scheme = HashSig;
        let (sks, pks) = keys(4);
        let msg = b"m";
        let sigs: Vec<_> = (0..3)
            .map(|i| (i as SignerIndex, scheme.sign(&sks[i], msg)))
            .collect();
        let mut agg = scheme.aggregate(4, &sigs);
        // Claim a fourth signer that never signed.
        agg.signers.set(3);
        assert!(!scheme.verify_aggregate(&pks, msg, &agg));
    }

    #[test]
    fn aggregate_deduplicates_signers() {
        let scheme = HashSig;
        let (sks, pks) = keys(4);
        let msg = b"m";
        let s0 = scheme.sign(&sks[0], msg);
        let agg = scheme.aggregate(4, &[(0, s0), (0, s0), (0, s0)]);
        assert_eq!(agg.count(), 1);
        assert!(scheme.verify_aggregate(&pks, msg, &agg));
    }

    #[test]
    fn aggregate_with_unknown_signer_index_fails_verification() {
        let scheme = HashSig;
        let (sks, pks) = keys(2);
        let msg = b"m";
        let sigs = vec![(5 as SignerIndex, scheme.sign(&sks[0], msg))];
        let agg = scheme.aggregate(8, &sigs);
        // pks table only has 2 entries; index 5 is unknown.
        assert!(!scheme.verify_aggregate(&pks, msg, &agg));
    }

    #[test]
    fn empty_aggregate_verifies_trivially() {
        // An empty aggregate attests nothing and XORs to zero. This is a
        // footgun if callers treat `verify_aggregate` as a quorum check:
        // every engine must gate on bitmap popcount ≥ quorum *before*
        // verifying (the engine-boundary regression tests in banyan-core
        // pin that).
        let scheme = HashSig;
        let (_, pks) = keys(4);
        let agg = scheme.aggregate(4, &[]);
        assert_eq!(agg.count(), 0);
        assert!(scheme.verify_aggregate(&pks, b"m", &agg));
    }
}
