//! Random beacon: the shared-randomness source assumed by the paper (§3).
//!
//! ICC/Banyan use a random beacon to derive, for every round, a permutation
//! of the replicas that fixes each replica's *rank* (rank 0 = leader, §4).
//! A production deployment would run a threshold-BLS beacon; the paper's own
//! evaluation replaces it with round-robin rotation "to increase
//! predictability and transparency" (§9.1). We provide both behind one type:
//!
//! * [`BeaconMode::RoundRobin`] — rank of replica `u` in round `k` is
//!   `(u − k) mod n`; the leader of round `k` is `k mod n`. This is what the
//!   paper benchmarks, and what our figure harnesses use.
//! * [`BeaconMode::Seeded`] — a deterministic hash-chain beacon: round `k`'s
//!   output is `SHA-256(seed ‖ k)`, expanded into a Fisher–Yates permutation.
//!   Deterministic, unpredictable-looking, and identical at every replica —
//!   exactly the interface a real beacon provides (substitution **R3** in
//!   `DESIGN.md`).

use crate::sha256::sha256_concat;

/// Which beacon flavor to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeaconMode {
    /// Deterministic rotation (used in the paper's evaluation).
    RoundRobin,
    /// Seeded hash-chain permutation (models a real random beacon).
    Seeded {
        /// Shared beacon seed; all replicas must agree on it.
        seed: u64,
    },
}

/// Per-round rank oracle shared by all replicas.
///
/// # Examples
///
/// ```
/// use banyan_crypto::beacon::{Beacon, BeaconMode};
///
/// let b = Beacon::new(BeaconMode::RoundRobin, 4);
/// assert_eq!(b.leader(0), 0);
/// assert_eq!(b.leader(5), 1);
/// assert_eq!(b.rank(5, 1), 0); // replica 1 leads round 5
/// ```
#[derive(Clone, Debug)]
pub struct Beacon {
    mode: BeaconMode,
    n: usize,
}

impl Beacon {
    /// Creates a beacon for an `n`-replica cluster.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(mode: BeaconMode, n: usize) -> Self {
        assert!(n > 0, "beacon requires at least one replica");
        Beacon { mode, n }
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full rank permutation for `round`: `perm[rank] = replica`.
    pub fn permutation(&self, round: u64) -> Vec<u16> {
        match self.mode {
            BeaconMode::RoundRobin => {
                let n = self.n as u64;
                (0..n).map(|r| ((round + r) % n) as u16).collect()
            }
            BeaconMode::Seeded { seed } => {
                let mut perm: Vec<u16> = (0..self.n as u16).collect();
                // Fisher–Yates driven by a per-round hash-chain PRG.
                let mut counter = 0u64;
                let mut pool: Vec<u8> = Vec::new();
                let draw_u64 = |pool: &mut Vec<u8>, counter: &mut u64| -> u64 {
                    if pool.len() < 8 {
                        let block = sha256_concat(&[
                            b"banyan/beacon/v1",
                            &seed.to_le_bytes(),
                            &round.to_le_bytes(),
                            &counter.to_le_bytes(),
                        ]);
                        *counter += 1;
                        pool.extend_from_slice(&block);
                    }
                    let bytes: [u8; 8] = pool[..8].try_into().expect("8 bytes");
                    pool.drain(..8);
                    u64::from_le_bytes(bytes)
                };
                for i in (1..perm.len()).rev() {
                    // Rejection-free modulo bias is negligible for n ≤ 2^16.
                    let j = (draw_u64(&mut pool, &mut counter) % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                perm
            }
        }
    }

    /// The leader (rank-0 replica) of `round`.
    pub fn leader(&self, round: u64) -> u16 {
        match self.mode {
            BeaconMode::RoundRobin => (round % self.n as u64) as u16,
            BeaconMode::Seeded { .. } => self.permutation(round)[0],
        }
    }

    /// The rank of `replica` in `round` (0 = leader).
    pub fn rank(&self, round: u64, replica: u16) -> u16 {
        match self.mode {
            BeaconMode::RoundRobin => {
                let n = self.n as u64;
                (((replica as u64 + n) - (round % n)) % n) as u16
            }
            BeaconMode::Seeded { .. } => {
                let perm = self.permutation(round);
                perm.iter()
                    .position(|&r| r == replica)
                    .expect("replica in permutation") as u16
            }
        }
    }

    /// The replica holding `rank` in `round`.
    pub fn replica_at_rank(&self, round: u64, rank: u16) -> u16 {
        match self.mode {
            BeaconMode::RoundRobin => ((round + rank as u64) % self.n as u64) as u16,
            BeaconMode::Seeded { .. } => self.permutation(round)[rank as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let b = Beacon::new(BeaconMode::RoundRobin, 4);
        assert_eq!(b.leader(0), 0);
        assert_eq!(b.leader(1), 1);
        assert_eq!(b.leader(4), 0);
        // In round 1 replica 1 has rank 0, replica 0 has rank 3.
        assert_eq!(b.rank(1, 1), 0);
        assert_eq!(b.rank(1, 0), 3);
        assert_eq!(b.replica_at_rank(1, 3), 0);
    }

    #[test]
    fn rank_and_replica_at_rank_are_inverse() {
        for mode in [BeaconMode::RoundRobin, BeaconMode::Seeded { seed: 99 }] {
            let b = Beacon::new(mode, 19);
            for round in 0..50u64 {
                for replica in 0..19u16 {
                    let rank = b.rank(round, replica);
                    assert_eq!(b.replica_at_rank(round, rank), replica);
                }
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        for mode in [BeaconMode::RoundRobin, BeaconMode::Seeded { seed: 1 }] {
            let b = Beacon::new(mode, 13);
            for round in 0..20u64 {
                let mut perm = b.permutation(round);
                perm.sort_unstable();
                assert_eq!(perm, (0..13u16).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn seeded_beacon_is_deterministic_and_seed_sensitive() {
        let a = Beacon::new(BeaconMode::Seeded { seed: 7 }, 19);
        let b = Beacon::new(BeaconMode::Seeded { seed: 7 }, 19);
        let c = Beacon::new(BeaconMode::Seeded { seed: 8 }, 19);
        assert_eq!(a.permutation(12), b.permutation(12));
        let diff = (0..40u64).any(|k| a.permutation(k) != c.permutation(k));
        assert!(diff, "different seeds should produce different schedules");
    }

    #[test]
    fn seeded_leaders_are_spread() {
        // Over many rounds every replica leads at least once (sanity, not a
        // statistical test).
        let b = Beacon::new(BeaconMode::Seeded { seed: 3 }, 8);
        let mut led = [false; 8];
        for k in 0..200u64 {
            led[b.leader(k) as usize] = true;
        }
        assert!(led.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = Beacon::new(BeaconMode::RoundRobin, 0);
    }
}
