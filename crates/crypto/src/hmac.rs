//! HMAC-SHA-256 (RFC 2104), built on the local [`crate::sha256`] module.
//!
//! Used by the [`crate::hashsig`] signature scheme and by deterministic
//! nonce derivation in [`crate::schnorr`]. Validated against RFC 4231 test
//! vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte SHA-256 block are hashed first, per RFC 2104.
///
/// # Examples
///
/// ```
/// let tag = banyan_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA-256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer-pad key block, applied at finalization.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time equality check for fixed-size tags.
///
/// Avoids early-exit timing leaks when comparing MACs or signatures.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test cases 1, 2, 3, 6 (covering short keys, long keys).
    #[test]
    fn rfc4231_vectors() {
        // Case 1
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Case 2
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Case 3
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Case 6: key larger than block size
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"round-key";
        let msg = b"the quick brown fox jumps over the lazy dog";
        let mut mac = HmacSha256::new(key);
        mac.update(&msg[..10]);
        mac.update(&msg[10..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn ct_eq_behaves() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
