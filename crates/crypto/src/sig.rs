//! Signature-scheme abstraction used by every consensus engine.
//!
//! The Banyan paper assumes a PKI with digital signatures and uses **BLS
//! multi-signatures** so that `n − f` notarization votes (or `n − p` fast
//! votes) can be aggregated into one compact certificate (§4, Def. 7.7).
//!
//! BLS needs pairing-friendly curves, which are out of scope for a
//! from-scratch reproduction limited to the approved dependency set. Instead
//! this module defines the exact API surface the protocol needs — sign,
//! verify, aggregate-k-votes, verify-aggregate-against-signer-set — and two
//! interchangeable implementations:
//!
//! * [`crate::hashsig::HashSig`]: an HMAC-based scheme whose aggregate is a
//!   constant-size XOR tag plus a signer bitmap, mirroring the shape and
//!   message flow of BLS aggregates. Zero cryptographic security against an
//!   adversary who can read process memory (fine inside a simulation; see
//!   the module docs for the threat-model discussion).
//! * [`crate::schnorr::ToySchnorr`]: a structurally real, publicly
//!   verifiable Schnorr scheme over a 62-bit Schnorr group. Toy parameters —
//!   honest-majority experiments only, not secure against real attackers.
//!
//! The substitution is recorded as **R2** in `DESIGN.md`.

use std::fmt;

/// Index of a signer within the fixed replica set (the paper's replica id).
pub type SignerIndex = u16;

/// Registry-negotiated scheme id for [`crate::hashsig::HashSig`] aggregates.
pub const SCHEME_ID_HASHSIG: u8 = 1;
/// Registry-negotiated scheme id for naive (per-member) Schnorr aggregates.
pub const SCHEME_ID_SCHNORR_NAIVE: u8 = 2;
/// Registry-negotiated scheme id for compact (half-aggregated) Schnorr
/// certificates.
pub const SCHEME_ID_SCHNORR_COMPACT: u8 = 3;

/// One `(public key, message, signature)` triple submitted to batch
/// verification.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The claimed signer's public key.
    pub pk: &'a PublicKey,
    /// The signed message.
    pub msg: &'a [u8],
    /// The signature to check.
    pub sig: &'a Signature,
}

/// A secret signing key. Opaque 32 bytes; semantics are scheme-specific.
#[derive(Clone)]
pub struct SecretKey(pub(crate) [u8; 32]);

impl SecretKey {
    /// Constructs a secret key from raw bytes (e.g. loaded from a keystore).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    /// Raw byte view, for serialization into keystores.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

/// A public verification key. Opaque 32 bytes; semantics are scheme-specific.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; 32]);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PublicKey({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A single signature. Fixed 64-byte encoding across schemes so that wire
/// message sizes are scheme-independent (BLS signatures are 48–96 bytes;
/// 64 is a faithful middle ground).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 64]);

impl Signature {
    /// The all-zero signature, useful as a placeholder in tests.
    pub fn zero() -> Self {
        Signature([0u8; 64])
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl Default for Signature {
    fn default() -> Self {
        Self::zero()
    }
}

/// Compact bitmap recording which replicas contributed to an aggregate.
///
/// Real BLS certificates carry exactly this (the multi-signature plus the
/// signer set); quorum checks count bits here.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SignerBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SignerBitmap {
    /// An empty bitmap sized for `n` potential signers.
    pub fn new(n: usize) -> Self {
        SignerBitmap {
            words: vec![0u64; n.div_ceil(64)],
            len: n,
        }
    }

    /// Number of potential signers this bitmap covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero signers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks signer `i` as present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: SignerIndex) {
        let i = i as usize;
        assert!(
            i < self.len,
            "signer index {i} out of range (n = {})",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// True if signer `i` is present.
    pub fn contains(&self, i: SignerIndex) -> bool {
        let i = i as usize;
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of signers present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over present signer indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SignerIndex> + '_ {
        (0..self.len as u16).filter(move |&i| self.contains(i))
    }

    /// Raw words, for serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a bitmap from serialized words.
    ///
    /// Bits beyond `len` are cleared so that equality and counting stay
    /// well-defined regardless of wire padding.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        let mut bm = SignerBitmap { words, len };
        bm.words.resize(len.div_ceil(64), 0);
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = bm.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        bm
    }
}

impl fmt::Debug for SignerBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignerBitmap[")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "]")
    }
}

/// An aggregated multi-signature: the signer set plus scheme-specific data.
///
/// For [`crate::hashsig::HashSig`] the data is a constant 32 bytes (the XOR
/// of the member tags) like a BLS aggregate; for
/// [`crate::schnorr::ToySchnorr`] it is the concatenation of member
/// signatures (naive aggregation — the paper's Def. 7.7 explicitly allows
/// this for unlock proofs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AggregateSignature {
    /// Which replicas signed.
    pub signers: SignerBitmap,
    /// Scheme-specific aggregate payload.
    pub data: Vec<u8>,
}

impl AggregateSignature {
    /// Number of contributing signers.
    pub fn count(&self) -> usize {
        self.signers.count()
    }
}

/// A multi-signature scheme: everything the consensus engines need from
/// cryptography.
///
/// Implementations must be deterministic: signing the same message with the
/// same key yields the same signature (both provided schemes derive nonces
/// deterministically), so simulation runs are bit-reproducible.
pub trait SignatureScheme: fmt::Debug + Send + Sync {
    /// Human-readable scheme name (appears in bench output).
    fn name(&self) -> &'static str;

    /// Stable id of the aggregate format this scheme emits (see the
    /// `SCHEME_ID_*` constants). All replicas of a cluster derive the same
    /// scheme from the registry, so this is the negotiated certificate
    /// format for the cluster. `0` means unspecified.
    fn scheme_id(&self) -> u8 {
        0
    }

    /// Verifies a batch of triples, returning each item's verdict — the
    /// result must match calling [`Self::verify`] per item.
    ///
    /// The default is the individual loop; schemes with a cheaper combined
    /// check (e.g. [`crate::schnorr::ToySchnorr`]'s random-linear-combination
    /// equation) override this.
    fn verify_batch(&self, items: &[BatchItem<'_>]) -> Vec<bool> {
        items
            .iter()
            .map(|it| self.verify(it.pk, it.msg, it.sig))
            .collect()
    }

    /// Derives a keypair from a 32-byte seed.
    fn keygen(&self, seed: &[u8; 32]) -> (SecretKey, PublicKey);

    /// Signs `msg` with `sk`.
    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Signature;

    /// Verifies a single signature.
    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool;

    /// Aggregates signatures from distinct signers over the **same** message.
    ///
    /// `n` is the total replica count (bitmap width). Duplicate signer
    /// indices are ignored (first occurrence wins).
    fn aggregate(&self, n: usize, sigs: &[(SignerIndex, Signature)]) -> AggregateSignature;

    /// Verifies an aggregate against the full public-key table (indexed by
    /// signer index) and the common message.
    fn verify_aggregate(&self, pks: &[PublicKey], msg: &[u8], agg: &AggregateSignature) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_and_count() {
        let mut bm = SignerBitmap::new(19);
        assert_eq!(bm.count(), 0);
        bm.set(0);
        bm.set(7);
        bm.set(18);
        assert_eq!(bm.count(), 3);
        assert!(bm.contains(0));
        assert!(bm.contains(7));
        assert!(bm.contains(18));
        assert!(!bm.contains(1));
        assert_eq!(bm.iter().collect::<Vec<_>>(), vec![0, 7, 18]);
    }

    #[test]
    fn bitmap_out_of_range_contains_is_false() {
        let bm = SignerBitmap::new(4);
        assert!(!bm.contains(4));
        assert!(!bm.contains(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_set_out_of_range_panics() {
        let mut bm = SignerBitmap::new(4);
        bm.set(4);
    }

    #[test]
    fn bitmap_roundtrip_through_words() {
        let mut bm = SignerBitmap::new(130);
        for i in [0u16, 63, 64, 65, 128, 129] {
            bm.set(i);
        }
        let back = SignerBitmap::from_words(bm.words().to_vec(), 130);
        assert_eq!(back, bm);
        assert_eq!(back.count(), 6);
    }

    #[test]
    fn bitmap_from_words_clears_padding_bits() {
        // Stray bits above `len` must not affect equality or counting.
        let dirty = vec![u64::MAX];
        let bm = SignerBitmap::from_words(dirty, 5);
        assert_eq!(bm.count(), 5);
        let mut clean = SignerBitmap::new(5);
        for i in 0..5 {
            clean.set(i);
        }
        assert_eq!(bm, clean);
    }

    #[test]
    fn secret_key_debug_hides_material() {
        let sk = SecretKey::from_bytes([42u8; 32]);
        assert_eq!(format!("{sk:?}"), "SecretKey(..)");
    }
}
