//! Binary Merkle trees over payload chunks.
//!
//! Blocks in the evaluation carry multi-megabyte payloads (§9.2). Committing
//! to the payload with a Merkle root lets votes sign a 32-byte digest while
//! still supporting per-chunk inclusion proofs (useful for light clients and
//! for the transport layer to fetch payloads out of band).
//!
//! Second-preimage resistance across levels uses the standard leaf/node
//! domain separation (`0x00` / `0x01` prefixes, as in RFC 6962).

use crate::sha256::{sha256_concat, Sha256, DIGEST_LEN};

/// Prefix byte for leaf hashing (RFC 6962 style domain separation).
const LEAF_PREFIX: [u8; 1] = [0x00];
/// Prefix byte for internal-node hashing.
const NODE_PREFIX: [u8; 1] = [0x01];

/// A 32-byte Merkle digest.
pub type Digest = [u8; DIGEST_LEN];

/// Hashes a leaf chunk.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_concat(&[&LEAF_PREFIX, data])
}

/// Hashes two child digests into a parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[&NODE_PREFIX, left, right])
}

/// A fully materialized Merkle tree.
///
/// Odd nodes are promoted (Bitcoin-style duplication is avoided: an unpaired
/// node moves up unchanged, which keeps proofs unambiguous).
///
/// # Examples
///
/// ```
/// use banyan_crypto::merkle::MerkleTree;
///
/// let tree = MerkleTree::from_chunks([b"tx1".as_slice(), b"tx2", b"tx3"]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&tree.root(), b"tx2"));
/// assert!(!proof.verify(&tree.root(), b"tx9"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests, last level = `[root]`. Empty tree has a
    /// single conventional level containing the empty-tree root.
    levels: Vec<Vec<Digest>>,
    /// Number of real leaves (0 for the empty tree — the sentinel level
    /// does not count; note a single *empty chunk* hashes to the same
    /// digest as the sentinel, so this cannot be inferred from `levels`).
    n_leaves: usize,
}

/// Root digest of the empty tree: SHA-256 of the empty string under the
/// leaf domain, fixed by convention.
pub fn empty_root() -> Digest {
    leaf_hash(b"")
}

impl MerkleTree {
    /// Builds a tree over an iterator of byte chunks.
    pub fn from_chunks<I, T>(chunks: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let leaves: Vec<Digest> = chunks.into_iter().map(|c| leaf_hash(c.as_ref())).collect();
        Self::from_leaves(leaves)
    }

    /// Builds a tree from precomputed leaf digests.
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![empty_root()]],
                n_leaves: 0,
            };
        }
        let n_leaves = leaves.len();
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    [l] => next.push(*l), // unpaired node promotes unchanged
                    _ => unreachable!("chunks(2) yields 1 or 2 elements"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels, n_leaves }
    }

    /// The root commitment.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.n_leaves
    }

    /// Builds an inclusion proof for leaf `index`, or `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = i ^ 1;
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_on_left: sibling < i,
                });
            }
            // When there is no sibling (unpaired node), the node promotes:
            // no step is recorded, and the index halves as usual.
            i /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }
}

/// One step of a Merkle inclusion proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// Digest of the sibling node.
    pub sibling: Digest,
    /// Whether the sibling sits on the left of the running hash.
    pub sibling_on_left: bool,
}

/// A Merkle inclusion proof for a single leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Bottom-up sibling path.
    pub path: Vec<ProofStep>,
}

impl MerkleProof {
    /// Checks the proof against a root and the claimed leaf data.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        let mut acc = leaf_hash(leaf_data);
        for step in &self.path {
            acc = if step.sibling_on_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == *root
    }
}

/// Convenience: Merkle root of a payload split into fixed-size chunks.
///
/// This is how block payloads are committed: the payload bytes are split
/// into `chunk_size` pieces and the root covers all of them. A zero
/// `chunk_size` is clamped to 1.
pub fn payload_root(payload: &[u8], chunk_size: usize) -> Digest {
    let chunk_size = chunk_size.max(1);
    if payload.is_empty() {
        return empty_root();
    }
    let mut hasher_leaves = Vec::with_capacity(payload.len().div_ceil(chunk_size));
    for chunk in payload.chunks(chunk_size) {
        let mut h = Sha256::new();
        h.update(&LEAF_PREFIX);
        h.update(chunk);
        hasher_leaves.push(h.finalize());
    }
    MerkleTree::from_leaves(hasher_leaves).root()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_chunks([b"only"]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_conventional_root() {
        let tree = MerkleTree::from_chunks(Vec::<&[u8]>::new());
        assert_eq!(tree.root(), empty_root());
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn proofs_verify_for_all_leaves_and_sizes() {
        for n in 1..=17usize {
            let chunks: Vec<Vec<u8>> = (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect();
            let tree = MerkleTree::from_chunks(&chunks);
            for (i, chunk) in chunks.iter().enumerate() {
                let proof = tree.prove(i).unwrap_or_else(|| panic!("proof for {i}/{n}"));
                assert!(proof.verify(&tree.root(), chunk), "leaf {i} of {n}");
                assert!(
                    !proof.verify(&tree.root(), b"wrong"),
                    "forged leaf {i} of {n}"
                );
            }
            assert!(tree.prove(n).is_none());
        }
    }

    #[test]
    fn proof_fails_against_other_tree() {
        let t1 = MerkleTree::from_chunks([b"a".as_slice(), b"b", b"c"]);
        let t2 = MerkleTree::from_chunks([b"a".as_slice(), b"b", b"d"]);
        let proof = t1.prove(0).unwrap();
        assert!(proof.verify(&t1.root(), b"a"));
        assert!(!proof.verify(&t2.root(), b"a"));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf containing exactly the encoding of an internal node must not
        // collide with that node.
        let l = leaf_hash(b"x");
        let r = leaf_hash(b"y");
        let parent = node_hash(&l, &r);
        let mut fake_leaf = Vec::new();
        fake_leaf.extend_from_slice(&l);
        fake_leaf.extend_from_slice(&r);
        assert_ne!(leaf_hash(&fake_leaf), parent);
    }

    #[test]
    fn payload_root_changes_with_content_and_chunking() {
        let payload = vec![7u8; 10_000];
        let r1 = payload_root(&payload, 1024);
        let mut tweaked = payload.clone();
        tweaked[9_999] ^= 1;
        assert_ne!(payload_root(&tweaked, 1024), r1);
        // Different chunking → different tree shape → different root.
        assert_ne!(payload_root(&payload, 512), r1);
        // Deterministic.
        assert_eq!(payload_root(&payload, 1024), r1);
    }

    #[test]
    fn payload_root_zero_chunk_size_is_clamped() {
        let payload = b"abc";
        assert_eq!(payload_root(payload, 0), payload_root(payload, 1));
    }
}
