//! Property tests for the cryptographic substrate.

use std::sync::Arc;

use proptest::prelude::*;

use banyan_crypto::hashsig::HashSig;
use banyan_crypto::merkle::MerkleTree;
use banyan_crypto::schnorr::{is_prime_u64, mulmod, powmod, ToySchnorr};
use banyan_crypto::sha256::{sha256, Sha256};
use banyan_crypto::sig::{SignatureScheme, SignerIndex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental hashing over arbitrary chunkings equals one-shot.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            if rest.is_empty() { break; }
            let cut = (s as usize) % rest.len();
            let (a, b) = rest.split_at(cut);
            h.update(a);
            rest = b;
        }
        h.update(rest);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Distinct inputs hash distinctly (collision sanity, not a proof).
    #[test]
    fn sha256_injective_on_small_domain(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a.to_le_bytes()), sha256(&b.to_le_bytes()));
    }

    /// Every leaf of every random tree proves against the root and no
    /// other content.
    #[test]
    fn merkle_proofs_verify(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..20),
        probe in any::<u8>(),
    ) {
        let tree = MerkleTree::from_chunks(&chunks);
        let idx = (probe as usize) % chunks.len();
        let proof = tree.prove(idx).expect("in range");
        prop_assert!(proof.verify(&tree.root(), &chunks[idx]));
        let mut forged = chunks[idx].clone();
        forged.push(0xFF);
        prop_assert!(!proof.verify(&tree.root(), &forged));
    }

    /// Schnorr sign/verify over arbitrary seeds and messages; wrong
    /// message always rejected.
    #[test]
    fn schnorr_roundtrip(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let scheme = ToySchnorr::new();
        let (sk, pk) = scheme.keygen(&seed);
        let sig = scheme.sign(&sk, &msg);
        prop_assert!(scheme.verify(&pk, &msg, &sig));
        let mut other = msg.clone();
        other.push(1);
        prop_assert!(!scheme.verify(&pk, &other, &sig));
    }

    /// HashSig aggregates over arbitrary signer subsets verify; adding a
    /// non-signer to the bitmap breaks them.
    #[test]
    fn hashsig_aggregate_subsets(
        subset in proptest::collection::btree_set(0u16..12, 1..12),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let scheme = HashSig;
        let scheme_arc: Arc<dyn SignatureScheme> = Arc::new(HashSig);
        let keys: Vec<_> = (0..12u8).map(|i| scheme_arc.keygen(&[i; 32])).collect();
        let pks: Vec<_> = keys.iter().map(|(_, pk)| *pk).collect();
        let votes: Vec<(SignerIndex, _)> = subset
            .iter()
            .map(|&i| (i, scheme.sign(&keys[i as usize].0, &msg)))
            .collect();
        let agg = scheme.aggregate(12, &votes);
        prop_assert_eq!(agg.count(), subset.len());
        prop_assert!(scheme.verify_aggregate(&pks, &msg, &agg));

        if let Some(outsider) = (0..12u16).find(|i| !subset.contains(i)) {
            let mut tampered = agg.clone();
            tampered.signers.set(outsider);
            prop_assert!(!scheme.verify_aggregate(&pks, &msg, &tampered));
        }
    }

    /// RLC batch verification returns exactly the verdicts individual
    /// verification would, under arbitrary tampering: signers swapped to
    /// the wrong key, messages substituted, signatures bit-flipped. The
    /// combined equation may only be an *optimization* — never a change
    /// in what is accepted.
    #[test]
    fn schnorr_batch_matches_individual_under_tampering(
        k in 2usize..24,
        tampers in proptest::collection::vec((any::<u8>(), 0u8..3, any::<u8>()), 0..6),
    ) {
        use banyan_crypto::sig::BatchItem;
        let scheme = ToySchnorr::new();
        let keys: Vec<_> = (0..k)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[0] = i as u8;
                scheme.keygen(&seed)
            })
            .collect();
        let mut pks: Vec<_> = keys.iter().map(|(_, pk)| *pk).collect();
        let mut msgs: Vec<Vec<u8>> = (0..k).map(|i| vec![b'm', i as u8]).collect();
        let mut sigs: Vec<_> = keys
            .iter()
            .zip(&msgs)
            .map(|((sk, _), m)| scheme.sign(sk, m))
            .collect();
        for &(pos, kind, byte) in &tampers {
            let i = pos as usize % k;
            match kind {
                // Wrong key: attribute the signature to another signer.
                0 => pks[i] = keys[(i + 1) % k].1,
                // Wrong message: first byte differs from every honest one.
                1 => msgs[i] = vec![b'x', byte],
                // Bit-flip somewhere in the signature bytes.
                _ => {
                    let len = sigs[i].0.len();
                    sigs[i].0[byte as usize % len] ^= 0x20;
                }
            }
        }
        let items: Vec<BatchItem<'_>> = (0..k)
            .map(|i| BatchItem { pk: &pks[i], msg: &msgs[i], sig: &sigs[i] })
            .collect();
        let individual: Vec<bool> = (0..k)
            .map(|i| scheme.verify(&pks[i], &msgs[i], &sigs[i]))
            .collect();
        prop_assert_eq!(scheme.batch_verify(&items), individual.clone());
        if tampers.is_empty() {
            prop_assert!(individual.into_iter().all(|ok| ok));
        }
    }

    /// Modular arithmetic identities used by the Schnorr scheme.
    #[test]
    fn powmod_laws(base in 1u64..1_000_000, e1 in 0u64..64, e2 in 0u64..64) {
        let p = 4_611_686_018_427_386_309u64; // the toy group modulus
        // g^(a+b) = g^a · g^b mod p
        let lhs = powmod(base, e1 + e2, p);
        let rhs = mulmod(powmod(base, e1, p), powmod(base, e2, p), p);
        prop_assert_eq!(lhs, rhs);
    }

    /// Miller–Rabin agrees with trial division on random small inputs.
    #[test]
    fn primality_matches_trial_division(n in 2u64..100_000) {
        let trial = (2..).take_while(|d| d * d <= n).all(|d| n % d != 0);
        prop_assert_eq!(is_prime_u64(n), trial);
    }
}
