//! Core identifier newtypes: replicas, rounds, ranks, block hashes.
//!
//! Newtypes keep the protocol code honest: a round can never be passed where
//! a rank is expected, and block hashes render as short hex in traces.

use std::fmt;

/// Identity of a replica: its index in the fixed replica set `[0, n)`.
///
/// Matches [`banyan_crypto::sig::SignerIndex`] so a replica's id doubles as
/// its key-table index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(pub u16);

impl ReplicaId {
    /// The replica's position as a usize (for indexing tables).
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u16> for ReplicaId {
    fn from(v: u16) -> Self {
        ReplicaId(v)
    }
}

/// A protocol round (equivalently: block-tree height, since each round adds
/// exactly one level — §4 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(pub u64);

impl Round {
    /// The genesis round.
    pub const GENESIS: Round = Round(0);

    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The previous round, saturating at genesis.
    pub fn prev(self) -> Round {
        Round(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Round(v)
    }
}

/// A replica's rank within a round: 0 is the leader; higher ranks propose
/// later (`Δ_prop(r) = 2Δ·r`, §4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u16);

impl Rank {
    /// The leader rank.
    pub const LEADER: Rank = Rank(0);

    /// True for the rank-0 (leader) slot.
    pub fn is_leader(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u16> for Rank {
    fn from(v: u16) -> Self {
        Rank(v)
    }
}

/// SHA-256 identity of a block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockHash(pub [u8; 32]);

impl BlockHash {
    /// The conventional parent hash of the genesis block (all zeros).
    pub const ZERO: BlockHash = BlockHash([0u8; 32]);

    /// Short hex prefix (8 chars) for logs.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short())
    }
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_next_prev() {
        assert_eq!(Round(0).next(), Round(1));
        assert_eq!(Round(5).prev(), Round(4));
        assert_eq!(Round::GENESIS.prev(), Round::GENESIS);
    }

    #[test]
    fn rank_leader() {
        assert!(Rank::LEADER.is_leader());
        assert!(!Rank(1).is_leader());
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", ReplicaId(3)), "r3");
        assert_eq!(format!("{:?}", Round(9)), "k9");
        assert_eq!(format!("{:?}", Rank(2)), "rank2");
        let h = BlockHash([0xab; 32]);
        assert_eq!(format!("{h:?}"), "#abababab");
    }

    #[test]
    fn ids_order_naturally() {
        assert!(ReplicaId(1) < ReplicaId(2));
        assert!(Round(1) < Round(2));
        assert!(Rank(0) < Rank(1));
    }
}
