//! Protocol data model for the Banyan BFT reproduction.
//!
//! Everything the engines, simulator, transport and benches share:
//!
//! * [`ids`] — replica / round / rank / block-hash newtypes;
//! * [`time`] — nanosecond instants and durations (virtual or wall);
//! * [`config`] — `(n, f, p)` validation and the paper's quorum arithmetic;
//! * [`payload`] — inline and synthetic (size-only) block payloads;
//! * [`block`] — block headers and identity hashing;
//! * [`vote`] — notarization / finalization / fast votes;
//! * [`certs`] — notarizations, finalizations, unlock proofs, QCs;
//! * [`message`] — the unified wire message enum;
//! * [`codec`] — the hand-rolled binary wire format;
//! * [`engine`] — the [`engine::Engine`] state-machine abstraction;
//! * [`app`] — the service interface: [`app::ProposalSource`] feeds block
//!   payloads to proposers, [`app::App`] receives finalized blocks.
//!
//! # Examples
//!
//! ```
//! use banyan_types::config::ProtocolConfig;
//!
//! // The paper's n = 19 scenario with f = 6, p = 1 (§9.2).
//! let cfg = ProtocolConfig::new(19, 6, 1)?;
//! assert_eq!(cfg.notarization_quorum(), 13);
//! assert_eq!(cfg.fast_quorum(), 18);
//! # Ok::<(), banyan_types::config::ConfigError>(())
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod block;
pub mod certs;
pub mod codec;
pub mod config;
pub mod engine;
pub mod ids;
pub mod message;
pub mod payload;
pub mod snapshot;
pub mod time;
pub mod vote;

pub use app::{App, FixedSizeSource, NullApp, ProposalContext, ProposalSource, SharedApp};
pub use block::Block;
pub use certs::{FinalKind, Finalization, Notarization, QuorumCert, UnlockEntry, UnlockProof};
pub use codec::{CodecError, Wire};
pub use config::{ConfigError, ProtocolConfig};
pub use engine::{Actions, CommitEntry, Engine, Outbound, TimerKind, TimerRequest};
pub use ids::{BlockHash, Rank, ReplicaId, Round};
pub use message::{
    ChainedMsg, DisseminationMsg, HotStuffMsg, Message, PendingRequest, StreamletMsg, SyncMsg,
};
pub use payload::Payload;
pub use snapshot::ChainSnapshot;
pub use time::{Duration, Time};
pub use vote::{Vote, VoteKind};
