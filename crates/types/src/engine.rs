//! The engine abstraction: consensus protocols as pure state machines.
//!
//! An [`Engine`] never performs I/O and never reads a clock. It is driven by
//! three entry points — `on_init`, `on_message`, `on_timer` — each taking
//! the current time and returning [`Actions`]: messages to transmit, timers
//! to arm, and blocks that became final. The discrete-event simulator
//! (`banyan-simnet`) and the TCP runner (`banyan-transport`) both drive the
//! same engines, which is what makes simulation results transferable and
//! every run reproducible from a seed.

use std::sync::Arc;

use banyan_crypto::{VerifyBackend, VerifyStats};

use crate::ids::{BlockHash, ReplicaId, Round};
use crate::message::Message;
use crate::payload::Payload;
use crate::snapshot::ChainSnapshot;
use crate::time::Time;

/// Why a timer was armed. Engines receive the same value back when the
/// timer fires; stale timers (for rounds already left) are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Time to propose our own block for `round` (after `Δ_prop(rank)`).
    Propose {
        /// The round to propose in.
        round: u64,
    },
    /// Time to consider notarization votes for blocks of `rank` in `round`
    /// (after `Δ_notary(rank)`).
    NotarizeRank {
        /// The round in question.
        round: u64,
        /// The rank whose notarization delay expired.
        rank: u16,
    },
    /// Generic per-round progress timeout (crash recovery).
    RoundTimeout {
        /// The round that may be stuck.
        round: u64,
    },
    /// Streamlet's fixed-length epoch boundary.
    EpochTick {
        /// The epoch that begins at this tick.
        epoch: u64,
    },
    /// HotStuff pacemaker view timeout.
    ViewTimeout {
        /// The view that timed out.
        view: u64,
    },
}

impl TimerKind {
    /// The round (view, epoch) this timer belongs to. Drivers use this for
    /// stale-timer filtering: every engine treats a timer whose scope round
    /// is below its [`Engine::current_round`] as a no-op (the round was
    /// abandoned), so such timers can be dropped without delivery.
    pub fn scope_round(&self) -> u64 {
        match *self {
            TimerKind::Propose { round } => round,
            TimerKind::NotarizeRank { round, .. } => round,
            TimerKind::RoundTimeout { round } => round,
            TimerKind::EpochTick { epoch } => epoch,
            TimerKind::ViewTimeout { view } => view,
        }
    }
}

/// A request to be woken at `at` with `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerRequest {
    /// Absolute wake-up time.
    pub at: Time,
    /// Payload returned to the engine on firing.
    pub kind: TimerKind,
}

/// An outbound transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outbound {
    /// Send to every other replica (not to self).
    Broadcast(Message),
    /// Send to one peer.
    Send(ReplicaId, Message),
}

/// A block that became final at this replica, with everything the metrics
/// pipeline needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitEntry {
    /// Round (= height) of the committed block.
    pub round: Round,
    /// The committed block.
    pub block: BlockHash,
    /// Who proposed it.
    pub proposer: ReplicaId,
    /// The committed payload: content for [`App`](crate::app::App)
    /// delivery, logical length for throughput metrics. Synthetic payloads
    /// keep this a 16-byte descriptor.
    pub payload: Payload,
    /// When the proposer stamped the block (latency baseline; meaningful
    /// at the proposer itself, which is how the paper measures latency).
    pub proposed_at: Time,
    /// When this replica finalized the block.
    pub committed_at: Time,
    /// True if the block was finalized via the fast path (directly or as
    /// the explicit tip whose certificate was fast).
    pub fast: bool,
    /// True if this replica itself assembled/received an explicit
    /// finalization for the block; false for ancestors finalized
    /// implicitly (§4 "Finalization").
    pub explicit: bool,
}

impl CommitEntry {
    /// Logical payload size in bytes (what throughput counts).
    pub fn payload_len(&self) -> u64 {
        self.payload.len()
    }
}

/// Everything an engine wants done after handling one event.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Actions {
    /// Messages to transmit.
    pub outbound: Vec<Outbound>,
    /// Timers to arm.
    pub timers: Vec<TimerRequest>,
    /// Blocks that became final, in chain order.
    pub commits: Vec<CommitEntry>,
}

impl Actions {
    /// No-op actions.
    pub fn none() -> Self {
        Actions::default()
    }

    /// True if nothing is requested.
    pub fn is_empty(&self) -> bool {
        self.outbound.is_empty() && self.timers.is_empty() && self.commits.is_empty()
    }

    /// Queues a broadcast.
    pub fn broadcast(&mut self, msg: Message) {
        self.outbound.push(Outbound::Broadcast(msg));
    }

    /// Queues a unicast.
    pub fn send(&mut self, to: ReplicaId, msg: Message) {
        self.outbound.push(Outbound::Send(to, msg));
    }

    /// Arms a timer.
    pub fn arm(&mut self, at: Time, kind: TimerKind) {
        self.timers.push(TimerRequest { at, kind });
    }

    /// Records a commit.
    pub fn commit(&mut self, entry: CommitEntry) {
        self.commits.push(entry);
    }

    /// Merges another action set into this one, preserving order.
    pub fn extend(&mut self, other: Actions) {
        self.outbound.extend(other.outbound);
        self.timers.extend(other.timers);
        self.commits.extend(other.commits);
    }
}

/// A consensus protocol instance at one replica.
///
/// Implementations must be deterministic functions of their inputs: the
/// whole test strategy (seeded reproducibility, simulation/TCP agreement)
/// rests on it.
pub trait Engine: Send {
    /// This replica's identity.
    fn id(&self) -> ReplicaId;

    /// Protocol name for reports ("banyan", "icc", "hotstuff", "streamlet").
    fn protocol_name(&self) -> &'static str;

    /// Called once before any other event, at time `now`.
    fn on_init(&mut self, now: Time) -> Actions;

    /// Called for every delivered message.
    fn on_message(&mut self, from: ReplicaId, msg: Message, now: Time) -> Actions;

    /// Called when an armed timer fires.
    fn on_timer(&mut self, kind: TimerKind, now: Time) -> Actions;

    /// The highest round this engine has entered (for progress probes).
    fn current_round(&self) -> Round;

    /// The highest round this engine has committed — the frontier a
    /// rejoining peer must catch up to. Drivers answer
    /// [`crate::message::SyncMsg::FrontierProbe`]s from this, so engines
    /// never see catch-up traffic.
    fn finalized_round(&self) -> Round {
        Round::GENESIS
    }

    /// The engine's durable chain state (blocks, certificates, finalized
    /// frontier) as a normalized [`ChainSnapshot`]. The default — an empty
    /// snapshot — means the engine persists nothing and a restart loses
    /// its state.
    fn snapshot(&self) -> ChainSnapshot {
        ChainSnapshot::default()
    }

    /// Rebuilds durable state from a snapshot. Must be called **before**
    /// [`Engine::on_init`]: recovery constructs the engine, restores, and
    /// only then starts the event clock, so a restarted replica re-enters
    /// at its recovered frontier. The default ignores the snapshot.
    fn restore(&mut self, snapshot: &ChainSnapshot) {
        let _ = snapshot;
    }

    /// Bytes the engine's backing store currently holds in its write-ahead
    /// log (0 when the store is purely in-memory). A gauge for harness
    /// metrics, not a protocol input.
    fn wal_bytes(&self) -> u64 {
        0
    }

    /// Cumulative signature-verification counters for this engine's verify
    /// plane (signatures checked, batches formed, certificate-cache hits).
    /// Like [`Engine::wal_bytes`] this is a gauge for harness metrics, not
    /// a protocol input. The default — all zeros — means the engine does
    /// not route verification through an instrumented backend.
    fn verify_stats(&self) -> VerifyStats {
        VerifyStats::default()
    }

    /// Installs a verify backend for this engine's signature checks.
    /// Drivers call this to share one batched/cached backend between the
    /// engine and transport-level verify workers, so a certificate
    /// pre-verified off-thread is a cache hit on the consensus thread.
    /// Engines that do not route verification through a backend ignore it
    /// (the default).
    fn set_verify_backend(&mut self, backend: Arc<dyn VerifyBackend>) {
        let _ = backend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, SyncMsg};

    #[test]
    fn actions_builders() {
        let mut a = Actions::none();
        assert!(a.is_empty());
        a.broadcast(Message::Sync(SyncMsg::Request {
            hash: BlockHash::ZERO,
        }));
        a.send(
            ReplicaId(2),
            Message::Sync(SyncMsg::Request {
                hash: BlockHash::ZERO,
            }),
        );
        a.arm(Time(5), TimerKind::Propose { round: 1 });
        assert!(!a.is_empty());
        assert_eq!(a.outbound.len(), 2);
        assert_eq!(a.timers.len(), 1);
    }

    #[test]
    fn actions_extend_preserves_order() {
        let mut a = Actions::none();
        a.arm(Time(1), TimerKind::Propose { round: 1 });
        let mut b = Actions::none();
        b.arm(Time(2), TimerKind::Propose { round: 2 });
        a.extend(b);
        assert_eq!(a.timers[0].at, Time(1));
        assert_eq!(a.timers[1].at, Time(2));
    }

    #[test]
    fn timer_kinds_are_comparable() {
        assert_eq!(
            TimerKind::Propose { round: 1 },
            TimerKind::Propose { round: 1 }
        );
        assert_ne!(
            TimerKind::NotarizeRank { round: 1, rank: 0 },
            TimerKind::NotarizeRank { round: 1, rank: 1 }
        );
    }
}
