//! Certificates: aggregated quorums of votes.
//!
//! * [`Notarization`] — `⌈(n+f+1)/2⌉` notarization votes for one block
//!   (Algorithm 2, line 45).
//! * [`Finalization`] — either `⌈(n+f+1)/2⌉` finalization votes
//!   (SP-finalization) or `n − p` fast votes for a rank-0 block
//!   (FP-finalization); the `kind` field records which (Definition 6.1).
//! * [`UnlockProof`] — the collection of fast votes proving a block is
//!   *unlocked* per Definition 7.6/7.7. Because condition 2 can involve fast
//!   votes for several distinct blocks, the proof groups votes per block.
//! * [`QuorumCert`] — HotStuff-style QC, used by the baseline engines.
//!
//! Certificates carry [`AggregateSignature`]s; semantic validation (does
//! this quorum actually satisfy Definition 7.6?) lives with the engines in
//! `banyan-core`, which know the beacon and configuration.
//!
//! # Aggregate payload format and scheme negotiation
//!
//! The wire codec treats an aggregate's `data` as an opaque byte string:
//! its internal format is determined by the signature scheme the cluster's
//! key registry was built with (`PublicKeyTable::scheme().scheme_id()`),
//! not by anything on the wire. A cluster running the compact Schnorr codec
//! (`SCHEME_ID_SCHNORR_COMPACT`) ships `9 + 8k`-byte certificates where the
//! naive encoding would ship `16k`; both round-trip through the same
//! [`Wire`] impl unchanged. Mixing scheme ids across a cluster is a
//! configuration error and surfaces as verification failure, never as a
//! codec error.
//!
//! # Quorum gating
//!
//! `verify_aggregate` on every scheme deliberately accepts an *empty*
//! aggregate — it attests nothing and vacuously verifies. Engines must
//! therefore check the bitmap popcount against the quorum threshold
//! **before** paying for (or trusting) cryptographic verification; the
//! `meets_quorum` helpers on each certificate type exist so that check is
//! one obvious call rather than re-derived arithmetic at every call site.

use banyan_crypto::{AggregateSignature, SignerBitmap};

use crate::codec::{CodecError, Reader, Wire, Writer};
use crate::ids::{BlockHash, Rank, Round};

impl Wire for AggregateSignature {
    fn encode(&self, out: &mut Writer) {
        out.u32(u32::try_from(self.signers.len()).expect("bitmap width fits u32"));
        let words = self.signers.words();
        out.u32(u32::try_from(words.len()).expect("word count fits u32"));
        for w in words {
            out.u64(*w);
        }
        out.var_bytes(&self.data);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        let width = input.u32()? as usize;
        if width > crate::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let word_count = input.u32()? as usize;
        if word_count != width.div_ceil(64) {
            return Err(CodecError::Invalid("bitmap word count"));
        }
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(input.u64()?);
        }
        Ok(AggregateSignature {
            signers: SignerBitmap::from_words(words, width),
            data: input.var_bytes()?,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + 4 + 8 * self.signers.words().len() + 4 + self.data.len()
    }
}

/// Proof that a block gathered a notarization quorum.
///
/// Normally a single aggregate of notarization votes. Under the Remark 7.8
/// optimization ("it is possible to omit sending a corresponding
/// notarization vote when a fast vote is sent"), a notarization consists of
/// **two** multi-signatures — one over notarization votes, one over fast
/// votes — and the quorum counts their distinct union.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Notarization {
    /// Round of the notarized block.
    pub round: Round,
    /// The notarized block.
    pub block: BlockHash,
    /// Aggregated notarization votes.
    pub agg: AggregateSignature,
    /// Aggregated fast votes counted toward the quorum (Remark 7.8 mode
    /// only; `None` in the standard protocol).
    pub fast_agg: Option<AggregateSignature>,
}

impl Notarization {
    /// A certificate from notarization votes only (the standard protocol).
    pub fn from_votes(round: Round, block: BlockHash, agg: AggregateSignature) -> Self {
        Notarization {
            round,
            block,
            agg,
            fast_agg: None,
        }
    }

    /// True iff the certificate's distinct-voter count reaches `quorum`.
    ///
    /// Must be checked *before* `verify_aggregate`: an empty (or
    /// below-quorum) aggregate verifies trivially under every scheme.
    pub fn meets_quorum(&self, quorum: usize) -> bool {
        self.vote_count() >= quorum
    }

    /// Number of distinct voters across both aggregates.
    pub fn vote_count(&self) -> usize {
        match &self.fast_agg {
            None => self.agg.count(),
            Some(fast) => {
                let mut bm = SignerBitmap::new(self.agg.signers.len().max(fast.signers.len()));
                for i in self.agg.signers.iter() {
                    bm.set(i);
                }
                for i in fast.signers.iter() {
                    if (i as usize) < bm.len() {
                        bm.set(i);
                    }
                }
                bm.count()
            }
        }
    }
}

impl Wire for Notarization {
    fn encode(&self, out: &mut Writer) {
        out.u64(self.round.0);
        out.raw(&self.block.0);
        self.agg.encode(out);
        out.option(&self.fast_agg);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Notarization {
            round: Round(input.u64()?),
            block: BlockHash(input.bytes32()?),
            agg: AggregateSignature::decode(input)?,
            fast_agg: input.option()?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 32 + self.agg.encoded_len() + 1 + self.fast_agg.as_ref().map_or(0, Wire::encoded_len)
    }
}

/// How a block was explicitly finalized (Definition 6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FinalKind {
    /// Slow path: `⌈(n+f+1)/2⌉` finalization votes (as in ICC).
    Slow,
    /// Fast path: `n − p` fast votes for a rank-0 block (Banyan).
    Fast,
}

/// Proof that a block is explicitly finalized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finalization {
    /// Round of the finalized block.
    pub round: Round,
    /// The finalized block.
    pub block: BlockHash,
    /// Which path produced the certificate.
    pub kind: FinalKind,
    /// Aggregated finalization votes (slow) or fast votes (fast).
    pub agg: AggregateSignature,
}

impl Finalization {
    /// Number of distinct voters in the certificate.
    pub fn vote_count(&self) -> usize {
        self.agg.count()
    }

    /// True iff the certificate's voter count reaches `quorum` (the slow
    /// and fast paths have different thresholds; the caller passes the one
    /// matching [`Finalization::kind`]). Must be checked *before*
    /// `verify_aggregate` — see the module docs on quorum gating.
    pub fn meets_quorum(&self, quorum: usize) -> bool {
        self.vote_count() >= quorum
    }
}

impl Wire for Finalization {
    fn encode(&self, out: &mut Writer) {
        out.u64(self.round.0);
        out.raw(&self.block.0);
        out.u8(match self.kind {
            FinalKind::Slow => 0,
            FinalKind::Fast => 1,
        });
        self.agg.encode(out);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Finalization {
            round: Round(input.u64()?),
            block: BlockHash(input.bytes32()?),
            kind: match input.u8()? {
                0 => FinalKind::Slow,
                1 => FinalKind::Fast,
                _ => return Err(CodecError::Invalid("finalization kind")),
            },
            agg: AggregateSignature::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 32 + 1 + self.agg.encoded_len()
    }
}

/// Fast votes for one block inside an [`UnlockProof`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnlockEntry {
    /// The block the fast votes endorse.
    pub block: BlockHash,
    /// Rank of the block's proposer in the proof's round (needed to
    /// evaluate Definition 7.6's leader/non-leader distinction; receivers
    /// cross-check against the beacon).
    pub rank: Rank,
    /// Aggregated fast votes for `block`.
    pub agg: AggregateSignature,
}

impl Wire for UnlockEntry {
    fn encode(&self, out: &mut Writer) {
        out.raw(&self.block.0);
        out.u16(self.rank.0);
        self.agg.encode(out);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(UnlockEntry {
            block: BlockHash(input.bytes32()?),
            rank: Rank(input.u16()?),
            agg: AggregateSignature::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        32 + 2 + self.agg.encoded_len()
    }
}

/// The collection of fast votes that proves a block of `round` is unlocked
/// (Definition 7.7).
///
/// The proof may cover several blocks: condition 1 counts support for the
/// target block plus all non-leader blocks; condition 2 counts support for
/// everything except the best-supported rank-0 block. Engines evaluate the
/// conditions; this type is pure data.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct UnlockProof {
    /// Round this proof refers to.
    pub round: Round,
    /// Fast votes grouped per block.
    pub entries: Vec<UnlockEntry>,
}

impl UnlockProof {
    /// Total number of fast votes across all entries (voters may appear in
    /// at most one entry for an honest proof; Byzantine double-votes are
    /// handled during semantic validation).
    pub fn total_votes(&self) -> usize {
        self.entries.iter().map(|e| e.agg.count()).sum()
    }
}

impl Wire for UnlockProof {
    fn encode(&self, out: &mut Writer) {
        out.u64(self.round.0);
        out.var_list(&self.entries);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(UnlockProof {
            round: Round(input.u64()?),
            entries: input.var_list()?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 4 + self.entries.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

/// A HotStuff-style quorum certificate (used by the baseline engines).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumCert {
    /// View the votes were cast in.
    pub view: u64,
    /// The certified block.
    pub block: BlockHash,
    /// Aggregated votes.
    pub agg: AggregateSignature,
}

impl QuorumCert {
    /// The genesis QC: view 0, zero hash, empty aggregate.
    pub fn genesis() -> Self {
        QuorumCert {
            view: 0,
            block: BlockHash::ZERO,
            agg: AggregateSignature {
                signers: SignerBitmap::new(0),
                data: Vec::new(),
            },
        }
    }

    /// True for the conventional genesis certificate.
    pub fn is_genesis(&self) -> bool {
        self.view == 0 && self.block == BlockHash::ZERO
    }

    /// The byte string every vote aggregated into a QC for
    /// `(view, block)` signs. Identical for all voters, which is what
    /// makes HotStuff votes aggregatable.
    pub fn signing_message(view: u64, block: &BlockHash) -> Vec<u8> {
        let mut m = Vec::with_capacity(20 + 8 + 32);
        m.extend_from_slice(b"banyan/hotstuff/vote");
        m.extend_from_slice(&view.to_le_bytes());
        m.extend_from_slice(&block.0);
        m
    }

    /// True iff this QC carries at least `quorum` votes. The genesis
    /// certificate is exempt by convention (it carries none). Must be
    /// checked *before* `verify_aggregate` — see the module docs on
    /// quorum gating.
    pub fn meets_quorum(&self, quorum: usize) -> bool {
        self.is_genesis() || self.agg.count() >= quorum
    }
}

impl Wire for QuorumCert {
    fn encode(&self, out: &mut Writer) {
        out.u64(self.view);
        out.raw(&self.block.0);
        self.agg.encode(out);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(QuorumCert {
            view: input.u64()?,
            block: BlockHash(input.bytes32()?),
            agg: AggregateSignature::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 32 + self.agg.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(n: usize, signers: &[u16]) -> AggregateSignature {
        let mut bm = SignerBitmap::new(n);
        for &s in signers {
            bm.set(s);
        }
        AggregateSignature {
            signers: bm,
            data: vec![0xAB; 32],
        }
    }

    #[test]
    fn aggregate_signature_roundtrip() {
        let a = agg(19, &[0, 5, 13, 18]);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), a.encoded_len());
        assert_eq!(AggregateSignature::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn aggregate_signature_word_count_validated() {
        let a = agg(19, &[1]);
        let mut bytes = a.to_bytes();
        bytes[4] = 9; // corrupt word count
        assert!(AggregateSignature::from_bytes(&bytes).is_err());
    }

    #[test]
    fn notarization_roundtrip() {
        let n = Notarization::from_votes(Round(7), BlockHash([1; 32]), agg(4, &[0, 1, 2]));
        assert_eq!(n.vote_count(), 3);
        assert_eq!(Notarization::from_bytes(&n.to_bytes()).unwrap(), n);
        assert_eq!(n.to_bytes().len(), n.encoded_len());
    }

    #[test]
    fn two_signature_notarization_counts_distinct_union() {
        // Remark 7.8: 2 notarization votes + 2 fast votes, one voter in
        // both → 3 distinct supporters.
        let n = Notarization {
            round: Round(7),
            block: BlockHash([1; 32]),
            agg: agg(4, &[0, 1]),
            fast_agg: Some(agg(4, &[1, 2])),
        };
        assert_eq!(n.vote_count(), 3);
        assert_eq!(Notarization::from_bytes(&n.to_bytes()).unwrap(), n);
        assert_eq!(n.to_bytes().len(), n.encoded_len());
    }

    #[test]
    fn finalization_roundtrip_both_kinds() {
        for kind in [FinalKind::Slow, FinalKind::Fast] {
            let f = Finalization {
                round: Round(2),
                block: BlockHash([2; 32]),
                kind,
                agg: agg(4, &[0, 1, 3]),
            };
            assert_eq!(Finalization::from_bytes(&f.to_bytes()).unwrap(), f);
        }
    }

    #[test]
    fn unlock_proof_roundtrip_multi_entry() {
        let proof = UnlockProof {
            round: Round(9),
            entries: vec![
                UnlockEntry {
                    block: BlockHash([1; 32]),
                    rank: Rank(0),
                    agg: agg(4, &[0, 1]),
                },
                UnlockEntry {
                    block: BlockHash([2; 32]),
                    rank: Rank(2),
                    agg: agg(4, &[2, 3]),
                },
            ],
        };
        assert_eq!(proof.total_votes(), 4);
        assert_eq!(UnlockProof::from_bytes(&proof.to_bytes()).unwrap(), proof);
        assert_eq!(proof.to_bytes().len(), proof.encoded_len());
    }

    #[test]
    fn empty_unlock_proof_roundtrip() {
        let proof = UnlockProof {
            round: Round(0),
            entries: vec![],
        };
        assert_eq!(proof.total_votes(), 0);
        assert_eq!(UnlockProof::from_bytes(&proof.to_bytes()).unwrap(), proof);
    }

    #[test]
    fn quorum_cert_genesis() {
        let qc = QuorumCert::genesis();
        assert!(qc.is_genesis());
        assert_eq!(QuorumCert::from_bytes(&qc.to_bytes()).unwrap(), qc);
        let real = QuorumCert {
            view: 3,
            block: BlockHash([1; 32]),
            agg: agg(4, &[0, 1, 2]),
        };
        assert!(!real.is_genesis());
    }

    #[test]
    fn quorum_gates_reject_below_threshold_certificates() {
        let n = Notarization::from_votes(Round(7), BlockHash([1; 32]), agg(4, &[0, 1]));
        assert!(n.meets_quorum(2));
        assert!(!n.meets_quorum(3));
        // Remark 7.8 mode counts the distinct union across both aggregates.
        let two_sig = Notarization {
            fast_agg: Some(agg(4, &[1, 2])),
            ..n.clone()
        };
        assert!(two_sig.meets_quorum(3));
        assert!(!two_sig.meets_quorum(4));

        let f = Finalization {
            round: Round(2),
            block: BlockHash([2; 32]),
            kind: FinalKind::Slow,
            agg: agg(4, &[0]),
        };
        assert!(f.meets_quorum(1));
        assert!(!f.meets_quorum(2));

        // The empty aggregate is the footgun: it verifies trivially under
        // every scheme, so the gate is the only thing standing between a
        // forged zero-vote certificate and acceptance.
        let empty = Finalization {
            agg: agg(4, &[]),
            ..f
        };
        assert!(!empty.meets_quorum(1));
    }

    #[test]
    fn quorum_cert_gate_exempts_genesis_only() {
        assert!(QuorumCert::genesis().meets_quorum(3));
        let real = QuorumCert {
            view: 3,
            block: BlockHash([1; 32]),
            agg: agg(4, &[0, 1]),
        };
        assert!(real.meets_quorum(2));
        assert!(!real.meets_quorum(3));
        // A non-genesis QC with an empty aggregate gets no exemption.
        let hollow = QuorumCert {
            view: 3,
            block: BlockHash([1; 32]),
            agg: agg(4, &[]),
        };
        assert!(!hollow.meets_quorum(1));
    }

    #[test]
    fn qc_signing_message_binds_view_and_block() {
        let b = BlockHash([1; 32]);
        assert_ne!(
            QuorumCert::signing_message(1, &b),
            QuorumCert::signing_message(2, &b)
        );
        assert_ne!(
            QuorumCert::signing_message(1, &b),
            QuorumCert::signing_message(1, &BlockHash([2; 32]))
        );
    }

    #[test]
    fn bad_finalization_kind_rejected() {
        let f = Finalization {
            round: Round(2),
            block: BlockHash([2; 32]),
            kind: FinalKind::Slow,
            agg: agg(4, &[0]),
        };
        let mut bytes = f.to_bytes();
        bytes[8 + 32] = 7; // kind byte
        assert_eq!(
            Finalization::from_bytes(&bytes).unwrap_err(),
            CodecError::Invalid("finalization kind")
        );
    }
}
