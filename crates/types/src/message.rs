//! The unified network message enum.
//!
//! All four engines speak through one [`Message`] type so the simulator and
//! the TCP transport are protocol-agnostic. Each engine only produces and
//! consumes its own sub-enum; a message of the wrong family is ignored
//! (and counted) rather than an error, mirroring how a real deployment
//! drops foreign traffic.
//!
//! The [`DisseminationMsg`] family is not consensus traffic at all: it is
//! the request-dissemination layer (pending-request gossip between
//! replicas' mempools) sharing the consensus wire so the network model
//! charges it against the same links. Engines never see it — the
//! simulator and the TCP runner route it to the replica's mempool.

use crate::block::Block;
use crate::certs::{Finalization, Notarization, QuorumCert, UnlockProof};
use crate::codec::{CodecError, Reader, Wire, Writer};
use crate::ids::{BlockHash, ReplicaId, Round};
use crate::time::Time;
use crate::vote::Vote;
use banyan_crypto::Signature;

/// Any message any engine can send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// ICC / Banyan family (they share a message set; ICC simply never
    /// populates the fast-path fields).
    Chained(ChainedMsg),
    /// Chained HotStuff baseline.
    HotStuff(HotStuffMsg),
    /// Streamlet baseline.
    Streamlet(StreamletMsg),
    /// Block synchronization, shared by all protocols.
    Sync(SyncMsg),
    /// Request dissemination (mempool gossip), shared by all protocols and
    /// handled by the driver layer, never by an engine.
    Dissemination(DisseminationMsg),
}

impl Message {
    /// Bytes this message occupies on the wire, including the virtual size
    /// of synthetic payloads. This is the number the simulator charges
    /// against link bandwidth.
    pub fn wire_len(&self) -> u64 {
        let extra = match self {
            Message::Chained(ChainedMsg::Proposal { block, .. }) => {
                block.payload.virtual_wire_extra()
            }
            Message::HotStuff(HotStuffMsg::Proposal { block, .. }) => {
                block.payload.virtual_wire_extra()
            }
            Message::Streamlet(StreamletMsg::Proposal { block }) => {
                block.payload.virtual_wire_extra()
            }
            Message::Sync(SyncMsg::Response { block }) => block.payload.virtual_wire_extra(),
            // A catch-up batch ships every block's payload: charge each
            // one's virtual size exactly as single responses are charged.
            Message::Sync(SyncMsg::ResponseBatch { blocks, .. }) => {
                blocks.iter().map(|b| b.payload.virtual_wire_extra()).sum()
            }
            // Forwarding a pending request ships the request *content*,
            // not just the 26-byte record: charge the nominal size the
            // same way synthetic payloads are charged.
            Message::Dissemination(DisseminationMsg::Forward { requests }) => {
                requests.iter().map(|r| r.size).sum()
            }
            // A propagation-tree relay ships only the 26-byte records
            // (already covered by `encoded_len`): no virtual body bytes.
            Message::Dissemination(DisseminationMsg::Announce { .. }) => 0,
            _ => 0,
        };
        self.encoded_len() as u64 + extra
    }

    /// The block this message carries, if it is a block-bearing frame
    /// (a proposal of any protocol family, or a sync response). Drivers
    /// running a speculative mempool use this to observe every block that
    /// crosses the wire and feed the pool's inclusion/lease tracking —
    /// engines themselves never decode payloads.
    pub fn proposal_block(&self) -> Option<&crate::block::Block> {
        match self {
            Message::Chained(ChainedMsg::Proposal { block, .. }) => Some(block),
            Message::HotStuff(HotStuffMsg::Proposal { block, .. }) => Some(block),
            Message::Streamlet(StreamletMsg::Proposal { block }) => Some(block),
            Message::Sync(SyncMsg::Response { block }) => Some(block),
            _ => None,
        }
    }

    /// The blocks a catch-up batch carries (empty for every other
    /// message). Drivers feed each one to speculative lease tracking, the
    /// same way [`Message::proposal_block`] feeds single-block frames.
    pub fn sync_batch_blocks(&self) -> &[Block] {
        match self {
            Message::Sync(SyncMsg::ResponseBatch { blocks, .. }) => blocks,
            _ => &[],
        }
    }

    /// Short label for traces and drop counters.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Chained(m) => m.label(),
            Message::HotStuff(m) => m.label(),
            Message::Streamlet(m) => m.label(),
            Message::Sync(SyncMsg::Request { .. }) => "sync-req",
            Message::Sync(SyncMsg::Response { .. }) => "sync-resp",
            Message::Sync(SyncMsg::RequestRange { .. }) => "sync-range",
            Message::Sync(SyncMsg::ResponseBatch { .. }) => "sync-batch",
            Message::Sync(SyncMsg::FrontierProbe) => "sync-probe",
            Message::Sync(SyncMsg::FrontierInfo { .. }) => "sync-frontier",
            Message::Dissemination(DisseminationMsg::Forward { .. }) => "req-forward",
            Message::Dissemination(DisseminationMsg::Announce { .. }) => "req-announce",
        }
    }

    /// Every individual vote signature this message carries, as
    /// `(voter, signed message, signature)` triples ready for
    /// `PublicKeyTable::verify_batch`. Transport-level verify workers use
    /// this to batch-check a message's signatures off the consensus thread;
    /// the list covers chained, Streamlet and HotStuff votes (the latter
    /// sign [`QuorumCert::signing_message`] rather than a [`Vote`]).
    pub fn vote_checks(&self) -> Vec<(ReplicaId, Vec<u8>, &Signature)> {
        let mut out = Vec::new();
        match self {
            Message::Chained(ChainedMsg::Proposal {
                fast_vote: Some(v), ..
            }) => {
                out.push((v.voter, v.message(), &v.signature));
            }
            Message::Chained(ChainedMsg::Votes(votes)) => {
                for v in votes {
                    out.push((v.voter, v.message(), &v.signature));
                }
            }
            Message::HotStuff(HotStuffMsg::Vote {
                view,
                block,
                voter,
                signature,
            }) => {
                out.push((*voter, QuorumCert::signing_message(*view, block), signature));
            }
            Message::Streamlet(StreamletMsg::Vote(v)) => {
                out.push((v.voter, v.message(), &v.signature));
            }
            _ => {}
        }
        out
    }

    /// Every aggregate certificate this message carries, as
    /// `(signed message, aggregate)` pairs ready for
    /// `VerifyBackend::verify_aggregate`. The genesis QC is omitted (it is
    /// exempt from verification by convention). Pairing each aggregate with
    /// the exact byte string its votes signed is what lets transport
    /// workers warm the certificate-verdict cache without protocol
    /// knowledge.
    pub fn certificates(&self) -> Vec<(Vec<u8>, &banyan_crypto::AggregateSignature)> {
        use crate::vote::VoteKind;

        fn push_notarization<'a>(
            out: &mut Vec<(Vec<u8>, &'a banyan_crypto::AggregateSignature)>,
            n: &'a Notarization,
        ) {
            out.push((
                Vote::signing_message(VoteKind::Notarize, n.round, &n.block),
                &n.agg,
            ));
            if let Some(fast) = &n.fast_agg {
                out.push((
                    Vote::signing_message(VoteKind::Fast, n.round, &n.block),
                    fast,
                ));
            }
        }

        fn push_unlock<'a>(
            out: &mut Vec<(Vec<u8>, &'a banyan_crypto::AggregateSignature)>,
            p: &'a UnlockProof,
        ) {
            for entry in &p.entries {
                out.push((
                    Vote::signing_message(VoteKind::Fast, p.round, &entry.block),
                    &entry.agg,
                ));
            }
        }

        let mut out = Vec::new();
        match self {
            Message::Chained(ChainedMsg::Proposal {
                parent_notarization,
                parent_unlock,
                ..
            }) => {
                if let Some(n) = parent_notarization {
                    push_notarization(&mut out, n);
                }
                if let Some(p) = parent_unlock {
                    push_unlock(&mut out, p);
                }
            }
            Message::Chained(ChainedMsg::Advance {
                notarization,
                unlock,
            }) => {
                push_notarization(&mut out, notarization);
                if let Some(p) = unlock {
                    push_unlock(&mut out, p);
                }
            }
            Message::Chained(ChainedMsg::Final(f)) => {
                let kind = match f.kind {
                    crate::certs::FinalKind::Slow => VoteKind::Finalize,
                    crate::certs::FinalKind::Fast => VoteKind::Fast,
                };
                out.push((Vote::signing_message(kind, f.round, &f.block), &f.agg));
            }
            Message::HotStuff(
                HotStuffMsg::Proposal { justify, .. } | HotStuffMsg::NewView { justify, .. },
            ) if !justify.is_genesis() => {
                out.push((
                    QuorumCert::signing_message(justify.view, &justify.block),
                    &justify.agg,
                ));
            }
            _ => {}
        }
        out
    }
}

/// One client request as it travels between mempools: the wire record of
/// the dissemination layer (and of `WorkloadBatch` payload encodings in
/// `banyan-mempool`, which reuse the same 26-byte layout).
///
/// The encoding is signing-agnostic: a record carries no signature of its
/// own, so any [`banyan_crypto::sig::SignatureScheme`] (or none) can wrap
/// the enclosing message without the record layout changing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingRequest {
    /// Globally unique request id (the exactly-once dedup key).
    pub id: u64,
    /// Submitting client (for per-client fairness metrics and censorship
    /// experiments).
    pub client: u16,
    /// Nominal request size in bytes (what the client would ship; the
    /// bandwidth model charges this for every forward and every batch).
    pub size: u64,
    /// When the client first submitted the request (virtual time).
    /// Retransmissions keep the original timestamp so end-to-end latency
    /// is measured from the first submission.
    pub submitted_at: Time,
}

impl Wire for PendingRequest {
    fn encode(&self, out: &mut Writer) {
        out.u64(self.id);
        out.u16(self.client);
        out.u64(self.size);
        out.u64(self.submitted_at.as_nanos());
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PendingRequest {
            id: input.u64()?,
            client: input.u16()?,
            size: input.u64()?,
            submitted_at: Time(input.u64()?),
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 2 + 8 + 8
    }
}

/// Messages of the request-dissemination layer.
///
/// Dissemination is driver-level traffic: the simulator and the TCP
/// runner apply it to the replica's mempool and never hand it to an
/// engine, preserving the engine purity contract (engines only pull
/// `next_payload`).
///
/// Two frames, two propagation disciplines. Under **broadcast gossip**
/// every locally submitted request is [`Forward`](Self::Forward)ed to all
/// peers in one round and never re-forwarded. Under the **bounded-fanout
/// propagation tree** the origin [`Forward`](Self::Forward)s the request
/// body to its few fanout peers, and first-time acceptors relay the
/// compact [`Announce`](Self::Announce) record down their own fanout
/// edges — duplicate arrivals are suppressed by the pool and never
/// re-announced, so the cascade terminates once every replica holds the
/// request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DisseminationMsg {
    /// One gossip round's worth of pending requests pushed at the sender
    /// since its last flush, forwarded so every potential leader can batch
    /// them. Charged at the requests' *nominal* size — this frame models
    /// shipping the request bodies.
    Forward {
        /// The forwarded requests, in the sender's FIFO (submission) order.
        requests: Vec<PendingRequest>,
    },
    /// A relay hop of the bounded-fanout propagation tree: the 26-byte
    /// request records, re-forwarded by a replica that just accepted them.
    /// Charged at the *record* size only — the body already shipped on the
    /// tree's first hop, and a record fully identifies the request (pull
    /// systems would fetch the body on demand; the synthetic workload's
    /// record is self-contained).
    Announce {
        /// The relayed request records, in acceptance order.
        requests: Vec<PendingRequest>,
    },
}

impl DisseminationMsg {
    /// The requests this dissemination frame carries, whichever discipline
    /// produced it. Drivers apply them to the receiving replica's pool via
    /// `accept_forwarded`.
    pub fn requests(&self) -> &[PendingRequest] {
        match self {
            DisseminationMsg::Forward { requests } => requests,
            DisseminationMsg::Announce { requests } => requests,
        }
    }
}

/// Messages of the ICC / Banyan family.
// Proposals dwarf votes by size, but they are also by far the most common
// heap-free message, so boxing the block would cost more than the enum's
// slack: the variants stay unboxed deliberately.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainedMsg {
    /// A block proposal or relay.
    ///
    /// Per Addition 2, a proposal carries the parent's notarization and
    /// unlock proof, and — for rank-0 proposals in Banyan — the proposer's
    /// own fast vote. ICC leaves `parent_unlock` and `fast_vote` empty.
    /// `parent_notarization` is `None` only when the parent is genesis.
    Proposal {
        /// The proposed block.
        block: Block,
        /// Notarization of the parent block (None iff parent is genesis).
        parent_notarization: Option<Notarization>,
        /// Unlock proof of the parent block (Banyan only).
        parent_unlock: Option<UnlockProof>,
        /// The proposer's fast vote for this block (Banyan rank-0 only,
        /// Algorithm 1 line 28).
        fast_vote: Option<Vote>,
    },
    /// One or more votes bundled into a single network message.
    ///
    /// Addition 3 broadcasts the fast vote *alongside* the notarization
    /// vote — one message, two signatures — which is why this is a vector.
    Votes(Vec<Vote>),
    /// Round-advancement broadcast (Addition 1 / Algorithm 2 line 50):
    /// the notarization and unlock proof of the block that closed a round.
    Advance {
        /// Notarization of the round's notarized-and-unlocked block.
        notarization: Notarization,
        /// Unlock proof for the same block (Banyan only).
        unlock: Option<UnlockProof>,
    },
    /// Explicit finalization broadcast (fast or slow).
    Final(Finalization),
}

impl ChainedMsg {
    fn label(&self) -> &'static str {
        match self {
            ChainedMsg::Proposal { .. } => "proposal",
            ChainedMsg::Votes(_) => "votes",
            ChainedMsg::Advance { .. } => "advance",
            ChainedMsg::Final(_) => "final",
        }
    }
}

/// Messages of the chained-HotStuff baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HotStuffMsg {
    /// Leader's proposal for a view, justified by the highest known QC.
    Proposal {
        /// Proposed block (its `round` field carries the view).
        block: Block,
        /// QC for the parent chain.
        justify: QuorumCert,
    },
    /// A replica's vote, sent to the next leader.
    Vote {
        /// View the vote is cast in.
        view: u64,
        /// Voted block.
        block: BlockHash,
        /// Voting replica.
        voter: ReplicaId,
        /// Signature over the HotStuff vote message.
        signature: Signature,
    },
    /// Pacemaker message on view timeout, carrying the sender's highest QC.
    NewView {
        /// The view being abandoned.
        view: u64,
        /// Sender's highest QC.
        justify: QuorumCert,
    },
}

impl HotStuffMsg {
    fn label(&self) -> &'static str {
        match self {
            HotStuffMsg::Proposal { .. } => "hs-proposal",
            HotStuffMsg::Vote { .. } => "hs-vote",
            HotStuffMsg::NewView { .. } => "hs-newview",
        }
    }
}

/// Messages of the Streamlet baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamletMsg {
    /// Epoch leader's proposal.
    Proposal {
        /// Proposed block (its `round` field carries the epoch).
        block: Block,
    },
    /// A replica's (notarization) vote for an epoch's proposal.
    Vote(Vote),
}

impl StreamletMsg {
    fn label(&self) -> &'static str {
        match self {
            StreamletMsg::Proposal { .. } => "sl-proposal",
            StreamletMsg::Vote(_) => "sl-vote",
        }
    }
}

/// Block-fetch protocol shared by all engines: ask a peer for a block you
/// hold a certificate for but never received, probe a peer's commit
/// frontier, or fetch a whole certified round range (catch-up sync for
/// rejoining/lagging replicas).
///
/// `Request`/`Response` and `RequestRange`/`ResponseBatch` are engine
/// traffic: the chained and Streamlet engines serve and adopt them
/// (Streamlet's vote rule needs an unbroken notarized chain, so a
/// rejoining replica must refill its downtime gap); HotStuff ignores
/// them — its SafeNode rule votes without the parent chain, so it
/// re-converges natively. `FrontierProbe`/`FrontierInfo` are **driver** traffic: the
/// driver layer answers probes from [`crate::engine::Engine::finalized_round`]
/// and feeds replies to its catch-up state machine, so engines stay pure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncMsg {
    /// Request a block by hash.
    Request {
        /// Hash of the wanted block.
        hash: BlockHash,
    },
    /// Serve a previously requested block.
    Response {
        /// The requested block.
        block: Block,
    },
    /// Request every certified block in `[from_round, to_round]`
    /// (inclusive). Servers may answer with a shorter prefix; the
    /// requester's catch-up state machine re-issues from its new frontier.
    RequestRange {
        /// First wanted round.
        from_round: Round,
        /// Last wanted round (inclusive).
        to_round: Round,
    },
    /// A batch of certified blocks answering a [`SyncMsg::RequestRange`],
    /// with the notarizations proving them.
    ResponseBatch {
        /// The served blocks, ascending by round.
        blocks: Vec<Block>,
        /// Notarization certificates for the served chain.
        notarizations: Vec<Notarization>,
    },
    /// Ask a peer how far it has committed (driver-answered).
    FrontierProbe,
    /// The answer to a probe: the sender's highest committed round.
    FrontierInfo {
        /// The sender's finalized frontier.
        finalized: Round,
    },
}

impl Wire for Message {
    fn encode(&self, out: &mut Writer) {
        match self {
            Message::Chained(m) => {
                out.u8(0);
                m.encode(out);
            }
            Message::HotStuff(m) => {
                out.u8(1);
                m.encode(out);
            }
            Message::Streamlet(m) => {
                out.u8(2);
                m.encode(out);
            }
            Message::Sync(m) => {
                out.u8(3);
                m.encode(out);
            }
            Message::Dissemination(m) => {
                out.u8(4);
                m.encode(out);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(Message::Chained(ChainedMsg::decode(input)?)),
            1 => Ok(Message::HotStuff(HotStuffMsg::decode(input)?)),
            2 => Ok(Message::Streamlet(StreamletMsg::decode(input)?)),
            3 => Ok(Message::Sync(SyncMsg::decode(input)?)),
            4 => Ok(Message::Dissemination(DisseminationMsg::decode(input)?)),
            _ => Err(CodecError::Invalid("message family")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Message::Chained(m) => m.encoded_len(),
            Message::HotStuff(m) => m.encoded_len(),
            Message::Streamlet(m) => m.encoded_len(),
            Message::Sync(m) => m.encoded_len(),
            Message::Dissemination(m) => m.encoded_len(),
        }
    }
}

impl Wire for DisseminationMsg {
    fn encode(&self, out: &mut Writer) {
        match self {
            DisseminationMsg::Forward { requests } => {
                out.u8(0);
                out.var_list(requests);
            }
            DisseminationMsg::Announce { requests } => {
                out.u8(1);
                out.var_list(requests);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(DisseminationMsg::Forward {
                requests: input.var_list()?,
            }),
            1 => Ok(DisseminationMsg::Announce {
                requests: input.var_list()?,
            }),
            _ => Err(CodecError::Invalid("dissemination message")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            DisseminationMsg::Forward { requests } | DisseminationMsg::Announce { requests } => {
                4 + requests.iter().map(Wire::encoded_len).sum::<usize>()
            }
        }
    }
}

impl Wire for ChainedMsg {
    fn encode(&self, out: &mut Writer) {
        match self {
            ChainedMsg::Proposal {
                block,
                parent_notarization,
                parent_unlock,
                fast_vote,
            } => {
                out.u8(0);
                block.encode(out);
                out.option(parent_notarization);
                out.option(parent_unlock);
                out.option(fast_vote);
            }
            ChainedMsg::Votes(votes) => {
                out.u8(1);
                out.var_list(votes);
            }
            ChainedMsg::Advance {
                notarization,
                unlock,
            } => {
                out.u8(2);
                notarization.encode(out);
                out.option(unlock);
            }
            ChainedMsg::Final(f) => {
                out.u8(3);
                f.encode(out);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(ChainedMsg::Proposal {
                block: Block::decode(input)?,
                parent_notarization: input.option()?,
                parent_unlock: input.option()?,
                fast_vote: input.option()?,
            }),
            1 => Ok(ChainedMsg::Votes(input.var_list()?)),
            2 => Ok(ChainedMsg::Advance {
                notarization: Notarization::decode(input)?,
                unlock: input.option()?,
            }),
            3 => Ok(ChainedMsg::Final(Finalization::decode(input)?)),
            _ => Err(CodecError::Invalid("chained message")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ChainedMsg::Proposal {
                block,
                parent_notarization,
                parent_unlock,
                fast_vote,
            } => {
                block.encoded_len()
                    + 1
                    + parent_notarization.as_ref().map_or(0, Wire::encoded_len)
                    + 1
                    + parent_unlock.as_ref().map_or(0, Wire::encoded_len)
                    + 1
                    + fast_vote.as_ref().map_or(0, Wire::encoded_len)
            }
            ChainedMsg::Votes(votes) => 4 + votes.iter().map(Wire::encoded_len).sum::<usize>(),
            ChainedMsg::Advance {
                notarization,
                unlock,
            } => notarization.encoded_len() + 1 + unlock.as_ref().map_or(0, Wire::encoded_len),
            ChainedMsg::Final(f) => f.encoded_len(),
        }
    }
}

impl Wire for HotStuffMsg {
    fn encode(&self, out: &mut Writer) {
        match self {
            HotStuffMsg::Proposal { block, justify } => {
                out.u8(0);
                block.encode(out);
                justify.encode(out);
            }
            HotStuffMsg::Vote {
                view,
                block,
                voter,
                signature,
            } => {
                out.u8(1);
                out.u64(*view);
                out.raw(&block.0);
                out.u16(voter.0);
                out.raw(&signature.0);
            }
            HotStuffMsg::NewView { view, justify } => {
                out.u8(2);
                out.u64(*view);
                justify.encode(out);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(HotStuffMsg::Proposal {
                block: Block::decode(input)?,
                justify: QuorumCert::decode(input)?,
            }),
            1 => Ok(HotStuffMsg::Vote {
                view: input.u64()?,
                block: BlockHash(input.bytes32()?),
                voter: ReplicaId(input.u16()?),
                signature: Signature(input.bytes64()?),
            }),
            2 => Ok(HotStuffMsg::NewView {
                view: input.u64()?,
                justify: QuorumCert::decode(input)?,
            }),
            _ => Err(CodecError::Invalid("hotstuff message")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            HotStuffMsg::Proposal { block, justify } => block.encoded_len() + justify.encoded_len(),
            HotStuffMsg::Vote { .. } => 8 + 32 + 2 + 64,
            HotStuffMsg::NewView { justify, .. } => 8 + justify.encoded_len(),
        }
    }
}

impl Wire for StreamletMsg {
    fn encode(&self, out: &mut Writer) {
        match self {
            StreamletMsg::Proposal { block } => {
                out.u8(0);
                block.encode(out);
            }
            StreamletMsg::Vote(vote) => {
                out.u8(1);
                vote.encode(out);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(StreamletMsg::Proposal {
                block: Block::decode(input)?,
            }),
            1 => Ok(StreamletMsg::Vote(Vote::decode(input)?)),
            _ => Err(CodecError::Invalid("streamlet message")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            StreamletMsg::Proposal { block } => block.encoded_len(),
            StreamletMsg::Vote(vote) => vote.encoded_len(),
        }
    }
}

impl Wire for SyncMsg {
    fn encode(&self, out: &mut Writer) {
        match self {
            SyncMsg::Request { hash } => {
                out.u8(0);
                out.raw(&hash.0);
            }
            SyncMsg::Response { block } => {
                out.u8(1);
                block.encode(out);
            }
            SyncMsg::RequestRange {
                from_round,
                to_round,
            } => {
                out.u8(2);
                out.u64(from_round.0);
                out.u64(to_round.0);
            }
            SyncMsg::ResponseBatch {
                blocks,
                notarizations,
            } => {
                out.u8(3);
                out.var_list(blocks);
                out.var_list(notarizations);
            }
            SyncMsg::FrontierProbe => {
                out.u8(4);
            }
            SyncMsg::FrontierInfo { finalized } => {
                out.u8(5);
                out.u64(finalized.0);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(SyncMsg::Request {
                hash: BlockHash(input.bytes32()?),
            }),
            1 => Ok(SyncMsg::Response {
                block: Block::decode(input)?,
            }),
            2 => Ok(SyncMsg::RequestRange {
                from_round: Round(input.u64()?),
                to_round: Round(input.u64()?),
            }),
            3 => Ok(SyncMsg::ResponseBatch {
                blocks: input.var_list()?,
                notarizations: input.var_list()?,
            }),
            4 => Ok(SyncMsg::FrontierProbe),
            5 => Ok(SyncMsg::FrontierInfo {
                finalized: Round(input.u64()?),
            }),
            _ => Err(CodecError::Invalid("sync message")),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            SyncMsg::Request { .. } => 32,
            SyncMsg::Response { block } => block.encoded_len(),
            SyncMsg::RequestRange { .. } => 8 + 8,
            SyncMsg::ResponseBatch {
                blocks,
                notarizations,
            } => {
                4 + blocks.iter().map(Wire::encoded_len).sum::<usize>()
                    + 4
                    + notarizations.iter().map(Wire::encoded_len).sum::<usize>()
            }
            SyncMsg::FrontierProbe => 0,
            SyncMsg::FrontierInfo { .. } => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Rank, Round};
    use crate::payload::Payload;
    use crate::time::Time;
    use banyan_crypto::{AggregateSignature, SignerBitmap};

    fn block(payload: Payload) -> Block {
        Block {
            round: Round(4),
            proposer: ReplicaId(1),
            rank: Rank(0),
            parent: BlockHash([6; 32]),
            proposed_at: Time(99),
            payload,
            signature: Signature([1; 64]),
        }
    }

    fn agg() -> AggregateSignature {
        let mut bm = SignerBitmap::new(4);
        bm.set(0);
        bm.set(2);
        AggregateSignature {
            signers: bm,
            data: vec![7; 32],
        }
    }

    fn vote() -> Vote {
        Vote {
            kind: crate::vote::VoteKind::Fast,
            round: Round(4),
            block: BlockHash([6; 32]),
            voter: ReplicaId(3),
            signature: Signature([2; 64]),
        }
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Chained(ChainedMsg::Proposal {
                block: block(Payload::synthetic(1 << 20, 1)),
                parent_notarization: Some(Notarization {
                    round: Round(3),
                    block: BlockHash([6; 32]),
                    agg: agg(),
                    fast_agg: Some(agg()),
                }),
                parent_unlock: Some(UnlockProof {
                    round: Round(3),
                    entries: vec![crate::certs::UnlockEntry {
                        block: BlockHash([6; 32]),
                        rank: Rank(0),
                        agg: agg(),
                    }],
                }),
                fast_vote: Some(vote()),
            }),
            Message::Chained(ChainedMsg::Proposal {
                block: block(Payload::empty()),
                parent_notarization: None,
                parent_unlock: None,
                fast_vote: None,
            }),
            Message::Chained(ChainedMsg::Votes(vec![vote(), vote()])),
            Message::Chained(ChainedMsg::Advance {
                notarization: Notarization::from_votes(Round(4), BlockHash([6; 32]), agg()),
                unlock: None,
            }),
            Message::Chained(ChainedMsg::Final(Finalization {
                round: Round(4),
                block: BlockHash([6; 32]),
                kind: crate::certs::FinalKind::Fast,
                agg: agg(),
            })),
            Message::HotStuff(HotStuffMsg::Proposal {
                block: block(Payload::Inline(vec![1, 2, 3])),
                justify: QuorumCert::genesis(),
            }),
            Message::HotStuff(HotStuffMsg::Vote {
                view: 9,
                block: BlockHash([6; 32]),
                voter: ReplicaId(2),
                signature: Signature([3; 64]),
            }),
            Message::HotStuff(HotStuffMsg::NewView {
                view: 10,
                justify: QuorumCert {
                    view: 9,
                    block: BlockHash([6; 32]),
                    agg: agg(),
                },
            }),
            Message::Streamlet(StreamletMsg::Proposal {
                block: block(Payload::empty()),
            }),
            Message::Streamlet(StreamletMsg::Vote(vote())),
            Message::Sync(SyncMsg::Request {
                hash: BlockHash([6; 32]),
            }),
            Message::Sync(SyncMsg::Response {
                block: block(Payload::synthetic(100, 2)),
            }),
            Message::Sync(SyncMsg::RequestRange {
                from_round: Round(3),
                to_round: Round(12),
            }),
            Message::Sync(SyncMsg::ResponseBatch {
                blocks: vec![block(Payload::synthetic(100, 2)), block(Payload::empty())],
                notarizations: vec![Notarization::from_votes(
                    Round(4),
                    BlockHash([6; 32]),
                    agg(),
                )],
            }),
            Message::Sync(SyncMsg::ResponseBatch {
                blocks: vec![],
                notarizations: vec![],
            }),
            Message::Sync(SyncMsg::FrontierProbe),
            Message::Sync(SyncMsg::FrontierInfo {
                finalized: Round(41),
            }),
            Message::Dissemination(DisseminationMsg::Forward {
                requests: vec![
                    PendingRequest {
                        id: 11,
                        client: 2,
                        size: 512,
                        submitted_at: Time(77),
                    },
                    PendingRequest {
                        id: 12,
                        client: 3,
                        size: 100,
                        submitted_at: Time(78),
                    },
                ],
            }),
            Message::Dissemination(DisseminationMsg::Forward { requests: vec![] }),
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in all_messages() {
            let bytes = msg.to_bytes();
            assert_eq!(
                bytes.len(),
                msg.encoded_len(),
                "encoded_len mismatch for {}",
                msg.label()
            );
            assert_eq!(
                Message::from_bytes(&bytes).unwrap(),
                msg,
                "roundtrip for {}",
                msg.label()
            );
        }
    }

    #[test]
    fn vote_checks_extract_every_vote_signature() {
        let v = vote();
        let burst = Message::Chained(ChainedMsg::Votes(vec![vote(), vote()]));
        assert_eq!(burst.vote_checks().len(), 2);
        for (voter, msg, sig) in burst.vote_checks() {
            assert_eq!(voter, v.voter);
            assert_eq!(msg, v.message());
            assert_eq!(sig.0, v.signature.0);
        }

        let proposal = &all_messages()[0]; // full proposal with fast_vote
        assert_eq!(proposal.vote_checks().len(), 1);

        let hs = Message::HotStuff(HotStuffMsg::Vote {
            view: 9,
            block: BlockHash([6; 32]),
            voter: ReplicaId(2),
            signature: Signature([3; 64]),
        });
        let checks = hs.vote_checks();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].0, ReplicaId(2));
        assert_eq!(
            checks[0].1,
            QuorumCert::signing_message(9, &BlockHash([6; 32]))
        );

        assert_eq!(
            Message::Streamlet(StreamletMsg::Vote(vote()))
                .vote_checks()
                .len(),
            1
        );
        assert!(Message::Sync(SyncMsg::FrontierProbe)
            .vote_checks()
            .is_empty());
    }

    #[test]
    fn certificates_pair_each_aggregate_with_its_signed_message() {
        use crate::vote::VoteKind;

        // Full proposal: notarization agg + its fast_agg + one unlock entry.
        let proposal = &all_messages()[0];
        let certs = proposal.certificates();
        assert_eq!(certs.len(), 3);
        assert_eq!(
            certs[0].0,
            Vote::signing_message(VoteKind::Notarize, Round(3), &BlockHash([6; 32]))
        );
        assert_eq!(
            certs[1].0,
            Vote::signing_message(VoteKind::Fast, Round(3), &BlockHash([6; 32]))
        );
        assert_eq!(
            certs[2].0,
            Vote::signing_message(VoteKind::Fast, Round(3), &BlockHash([6; 32]))
        );

        // A fast finalization's aggregate is over fast votes.
        let fin = Message::Chained(ChainedMsg::Final(Finalization {
            round: Round(4),
            block: BlockHash([6; 32]),
            kind: crate::certs::FinalKind::Fast,
            agg: agg(),
        }));
        assert_eq!(
            fin.certificates()[0].0,
            Vote::signing_message(VoteKind::Fast, Round(4), &BlockHash([6; 32]))
        );

        // Genesis QCs are exempt; real QCs are extracted.
        let genesis = Message::HotStuff(HotStuffMsg::Proposal {
            block: block(Payload::empty()),
            justify: QuorumCert::genesis(),
        });
        assert!(genesis.certificates().is_empty());
        let new_view = Message::HotStuff(HotStuffMsg::NewView {
            view: 10,
            justify: QuorumCert {
                view: 9,
                block: BlockHash([6; 32]),
                agg: agg(),
            },
        });
        let qc_certs = new_view.certificates();
        assert_eq!(qc_certs.len(), 1);
        assert_eq!(
            qc_certs[0].0,
            QuorumCert::signing_message(9, &BlockHash([6; 32]))
        );
    }

    #[test]
    fn wire_len_charges_synthetic_payload() {
        let msg = Message::Chained(ChainedMsg::Proposal {
            block: block(Payload::synthetic(1 << 20, 1)),
            parent_notarization: None,
            parent_unlock: None,
            fast_vote: None,
        });
        assert!(
            msg.wire_len() > 1 << 20,
            "1 MiB payload must dominate wire size"
        );
        assert_eq!(msg.wire_len(), msg.encoded_len() as u64 + (1 << 20));

        let small = Message::Sync(SyncMsg::Request {
            hash: BlockHash([0; 32]),
        });
        assert_eq!(small.wire_len(), small.encoded_len() as u64);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<_> = all_messages().iter().map(Message::label).collect();
        assert!(labels.contains(&"proposal"));
        assert!(labels.contains(&"votes"));
        assert!(labels.contains(&"hs-vote"));
        assert!(labels.contains(&"sl-proposal"));
        assert!(labels.contains(&"sync-req"));
        assert!(labels.contains(&"sync-range"));
        assert!(labels.contains(&"sync-batch"));
        assert!(labels.contains(&"sync-probe"));
        assert!(labels.contains(&"sync-frontier"));
    }

    #[test]
    fn batch_wire_len_charges_every_block_payload() {
        let msg = Message::Sync(SyncMsg::ResponseBatch {
            blocks: vec![
                block(Payload::synthetic(10_000, 1)),
                block(Payload::synthetic(20_000, 2)),
            ],
            notarizations: vec![],
        });
        assert_eq!(msg.wire_len(), msg.encoded_len() as u64 + 30_000);
        assert_eq!(msg.sync_batch_blocks().len(), 2);
        let probe = Message::Sync(SyncMsg::FrontierProbe);
        assert!(probe.sync_batch_blocks().is_empty());
        assert_eq!(probe.wire_len(), probe.encoded_len() as u64);
    }

    #[test]
    fn unknown_family_rejected() {
        assert_eq!(
            Message::from_bytes(&[9]).unwrap_err(),
            CodecError::Invalid("message family")
        );
    }

    #[test]
    fn forward_wire_len_charges_request_content() {
        // The record is 26 bytes, but the wire must be charged for the
        // nominal request bytes a real deployment would ship.
        let msg = Message::Dissemination(DisseminationMsg::Forward {
            requests: vec![PendingRequest {
                id: 1,
                client: 0,
                size: 10_000,
                submitted_at: Time(5),
            }],
        });
        assert_eq!(msg.wire_len(), msg.encoded_len() as u64 + 10_000);
        assert_eq!(msg.label(), "req-forward");
    }

    #[test]
    fn vote_message_is_small() {
        // Votes must stay small so quorum traffic never bottlenecks on
        // bandwidth the way proposals do.
        let msg = Message::Chained(ChainedMsg::Votes(vec![vote(), vote()]));
        assert!(
            msg.wire_len() < 300,
            "two bundled votes should be < 300B, got {}",
            msg.wire_len()
        );
    }
}
