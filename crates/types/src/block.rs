//! Blocks and the block header hash.
//!
//! A round-`k` block is `(k, proposer, hash(parent), payload, signature)`
//! (Algorithm 1, line 25). We additionally record the proposer's `rank`
//! (derivable from the beacon, carried for convenience and cross-checked on
//! validation) and the proposer-local `proposed_at` timestamp used for the
//! paper's latency metric ("proposal finalization time, measured at the
//! respective proposer", §9.2).

use banyan_crypto::sha256::sha256_concat;
use banyan_crypto::Signature;

use crate::codec::{CodecError, Reader, Wire, Writer};
use crate::ids::{BlockHash, Rank, ReplicaId, Round};
use crate::payload::Payload;
use crate::time::Time;

/// A proposed block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Round (= block-tree height) this block belongs to.
    pub round: Round,
    /// Proposing replica.
    pub proposer: ReplicaId,
    /// The proposer's rank in `round` (0 = leader). Receivers re-derive
    /// this from the beacon and reject mismatches.
    pub rank: Rank,
    /// Hash of the parent block (a notarized — and, in Banyan, unlocked —
    /// block of round − 1).
    pub parent: BlockHash,
    /// Proposer-local creation time; the proposer's latency metric
    /// baseline. Not trusted by other replicas for anything.
    pub proposed_at: Time,
    /// Transaction payload.
    pub payload: Payload,
    /// Proposer's signature over [`Block::hash`].
    pub signature: Signature,
}

impl Block {
    /// Computes the block's identity hash.
    ///
    /// Covers every header field and the payload commitment; excludes the
    /// signature (which signs this hash).
    pub fn hash(&self, payload_chunk: usize) -> BlockHash {
        let digest = sha256_concat(&[
            b"banyan/block/v1",
            &self.round.0.to_le_bytes(),
            &self.proposer.0.to_le_bytes(),
            &self.rank.0.to_le_bytes(),
            &self.parent.0,
            &self.proposed_at.0.to_le_bytes(),
            &self.payload.len().to_le_bytes(),
            &self.payload.commitment(payload_chunk),
        ]);
        BlockHash(digest)
    }

    /// The message a proposer signs: the block hash in the block domain.
    pub fn signing_message(hash: &BlockHash) -> Vec<u8> {
        let mut m = Vec::with_capacity(16 + 32);
        m.extend_from_slice(b"banyan/sign/block");
        m.extend_from_slice(&hash.0);
        m
    }

    /// Logical payload size in bytes.
    pub fn payload_len(&self) -> u64 {
        self.payload.len()
    }
}

impl Wire for Block {
    fn encode(&self, out: &mut Writer) {
        out.u64(self.round.0);
        out.u16(self.proposer.0);
        out.u16(self.rank.0);
        out.raw(&self.parent.0);
        out.u64(self.proposed_at.0);
        self.payload.encode(out);
        out.raw(&self.signature.0);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Block {
            round: Round(input.u64()?),
            proposer: ReplicaId(input.u16()?),
            rank: Rank(input.u16()?),
            parent: BlockHash(input.bytes32()?),
            proposed_at: Time(input.u64()?),
            payload: Payload::decode(input)?,
            signature: Signature(input.bytes64()?),
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 2 + 2 + 32 + 8 + self.payload.encoded_len() + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Block {
        Block {
            round: Round(3),
            proposer: ReplicaId(2),
            rank: Rank(0),
            parent: BlockHash([7u8; 32]),
            proposed_at: Time(123_456_789),
            payload: Payload::synthetic(400_000, 9),
            signature: Signature::zero(),
        }
    }

    #[test]
    fn hash_covers_header_fields() {
        let chunk = 64 * 1024;
        let base = sample();
        let h = base.hash(chunk);
        // Mutating any header field must change the hash.
        let mut b = base.clone();
        b.round = Round(4);
        assert_ne!(b.hash(chunk), h);
        let mut b = base.clone();
        b.proposer = ReplicaId(3);
        assert_ne!(b.hash(chunk), h);
        let mut b = base.clone();
        b.rank = Rank(1);
        assert_ne!(b.hash(chunk), h);
        let mut b = base.clone();
        b.parent = BlockHash([8u8; 32]);
        assert_ne!(b.hash(chunk), h);
        let mut b = base.clone();
        b.proposed_at = Time(1);
        assert_ne!(b.hash(chunk), h);
        let mut b = base.clone();
        b.payload = Payload::synthetic(400_000, 10);
        assert_ne!(b.hash(chunk), h);
    }

    #[test]
    fn hash_excludes_signature() {
        let chunk = 64 * 1024;
        let base = sample();
        let mut signed = base.clone();
        signed.signature = Signature([5u8; 64]);
        assert_eq!(signed.hash(chunk), base.hash(chunk));
    }

    #[test]
    fn wire_roundtrip() {
        let b = sample();
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.encoded_len());
        assert_eq!(Block::from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn inline_payload_roundtrip() {
        let mut b = sample();
        b.payload = Payload::Inline(vec![1, 2, 3, 4, 5]);
        assert_eq!(Block::from_bytes(&b.to_bytes()).unwrap(), b);
        assert_eq!(b.payload_len(), 5);
    }

    #[test]
    fn signing_message_binds_hash() {
        let h1 = BlockHash([1u8; 32]);
        let h2 = BlockHash([2u8; 32]);
        assert_ne!(Block::signing_message(&h1), Block::signing_message(&h2));
    }
}
