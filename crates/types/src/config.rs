//! Protocol configuration and quorum arithmetic.
//!
//! This module encodes the paper's resilience bounds and vote thresholds:
//!
//! * replica count: `n ≥ max(3f + 2p − 1, 3f + 1)` (§3);
//! * notarization / SP-finalization quorum: `⌈(n + f + 1) / 2⌉` votes
//!   (Algorithm 2, lines 45 and 56);
//! * FP-finalization quorum: `n − p` **fast votes** for a rank-0 block
//!   (Algorithm 2, line 56 / Addition 4);
//! * unlock threshold: support strictly greater than `f + p`
//!   (Definition 7.6).
//!
//! All quorum logic in every engine goes through [`ProtocolConfig`], so the
//! bounds are tested once, here, against the paper's own examples
//! (`n = 19` with `f = 6, p = 1` and with `f = 4, p = 4`; `n = 4` with
//! `f = 1, p = 1`).

use crate::time::Duration;

/// Errors from [`ProtocolConfig::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `n` violates `n ≥ max(3f + 2p − 1, 3f + 1)`.
    InsufficientReplicas {
        /// Configured replica count.
        n: usize,
        /// Minimum replica count for the requested `f` and `p`.
        required: usize,
    },
    /// `p` violates `p ≤ f`.
    FastParamTooLarge {
        /// Configured fast-path parameter.
        p: usize,
        /// Configured fault tolerance.
        f: usize,
    },
    /// `n` must be at least 1.
    EmptyCluster,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InsufficientReplicas { n, required } => {
                write!(
                    f,
                    "n = {n} replicas, but max(3f+2p-1, 3f+1) = {required} required"
                )
            }
            ConfigError::FastParamTooLarge { p, f: ff } => {
                write!(f, "fast-path parameter p = {p} exceeds f = {ff}")
            }
            ConfigError::EmptyCluster => write!(f, "cluster must have at least one replica"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Static protocol parameters shared by all replicas of a deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Total number of replicas.
    n: usize,
    /// Maximum number of Byzantine replicas tolerated.
    f: usize,
    /// Fast-path parameter: the number of replicas *not* needed for the
    /// fast path (`p ∈ [0, f]`; the paper argues `p ≥ 1` is always
    /// preferable, §3). `p = 0` is accepted for ICC-only runs where the
    /// fast path is unused.
    p: usize,
    /// The `Δ` bound used in the proposal/notarization delay schedule
    /// (`Δ_prop(r) = Δ_notary(r) = 2Δ·r`, §4). The paper sets this larger
    /// than the undisrupted message delay (§9.2).
    pub delta: Duration,
    /// Extra stagger multiplier: delays are `stagger × Δ × rank`. The paper
    /// fixes this to 2 (`2Δ·r`); exposed for the Δ-sensitivity ablation.
    pub stagger: u64,
    /// Relay blocks that extend the chain tip on first receipt (§9.1: "by
    /// forwarding blocks that extend the tip of the chain, we drastically
    /// improve the performance of all algorithms").
    pub forward_blocks: bool,
    /// Retransmission interval: while stuck in a round, a replica
    /// re-broadcasts its proposal, votes and the previous round's
    /// certificates every `heartbeat`. The paper's model assumes reliable
    /// links; production ICC keeps re-gossiping its artifact pool — this
    /// is the equivalent, and it is what lets the protocol recover from
    /// actual message loss (hard partitions).
    pub heartbeat: Duration,
    /// Remark 7.8 optimization: omit the notarization vote when a fast
    /// vote is sent; notarizations then carry two multi-signatures and
    /// count the distinct union. Saves one signature per replica per
    /// round on the happy path. Banyan mode only.
    pub piggyback_fast_votes: bool,
    /// Verify signatures on receipt. Disable only in benchmarks isolating
    /// network effects; all protocol tests keep it on.
    pub verify_signatures: bool,
    /// Chunk size for payload Merkle commitments.
    pub payload_chunk: usize,
}

impl ProtocolConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `p > f` or `n < max(3f + 2p − 1, 3f + 1)`.
    pub fn new(n: usize, f: usize, p: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::EmptyCluster);
        }
        if p > f {
            return Err(ConfigError::FastParamTooLarge { p, f });
        }
        let required = Self::min_replicas(f, p);
        if n < required {
            return Err(ConfigError::InsufficientReplicas { n, required });
        }
        Ok(ProtocolConfig {
            n,
            f,
            p,
            delta: Duration::from_millis(100),
            stagger: 2,
            forward_blocks: true,
            heartbeat: Duration::from_millis(500),
            piggyback_fast_votes: false,
            verify_signatures: true,
            payload_chunk: 64 * 1024,
        })
    }

    /// The smallest legal cluster for given `f` and `p`:
    /// `max(3f + 2p − 1, 3f + 1)` (§3, matching the Kuznetsov/Abraham
    /// lower bound the paper cites).
    pub fn min_replicas(f: usize, p: usize) -> usize {
        (3 * f + 2 * p).saturating_sub(1).max(3 * f + 1)
    }

    /// The largest `f` tolerable for a given `n` and `p` (useful when
    /// sizing experiments like the paper's `n = 19` scenarios).
    pub fn max_faults(n: usize, p: usize) -> usize {
        (0..=n)
            .rev()
            .find(|&f| p <= f && Self::min_replicas(f, p) <= n)
            .unwrap_or(0)
    }

    /// Builder-style: sets `Δ`.
    pub fn with_delta(mut self, delta: Duration) -> Self {
        self.delta = delta;
        self
    }

    /// Builder-style: enables/disables tip forwarding.
    pub fn with_forwarding(mut self, on: bool) -> Self {
        self.forward_blocks = on;
        self
    }

    /// Builder-style: sets the stuck-round retransmission interval.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Builder-style: enables the Remark 7.8 fast-vote piggyback.
    pub fn with_piggyback(mut self, on: bool) -> Self {
        self.piggyback_fast_votes = on;
        self
    }

    /// Builder-style: enables/disables signature verification.
    pub fn with_signature_verification(mut self, on: bool) -> Self {
        self.verify_signatures = on;
        self
    }

    /// Total replica count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Byzantine fault bound `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Fast-path parameter `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Votes needed to notarize a block: `⌈(n + f + 1) / 2⌉`
    /// (Algorithm 2, line 45).
    pub fn notarization_quorum(&self) -> usize {
        (self.n + self.f + 1).div_ceil(2)
    }

    /// Finalization votes needed to SP-finalize: `⌈(n + f + 1) / 2⌉`
    /// (Algorithm 2, line 56).
    pub fn finalization_quorum(&self) -> usize {
        self.notarization_quorum()
    }

    /// Fast votes needed to FP-finalize a rank-0 block: `n − p`
    /// (Definition 6.2 / Addition 4).
    pub fn fast_quorum(&self) -> usize {
        self.n - self.p
    }

    /// Support threshold in the unlock conditions: a block (or block set)
    /// unlocks when its support is **strictly greater** than `f + p`
    /// (Definition 7.6).
    pub fn unlock_threshold(&self) -> usize {
        self.f + self.p
    }

    /// Proposal delay for a replica of `rank` in the current round:
    /// `Δ_prop(r) = stagger × Δ × r` (paper: `2Δ·r`, §4).
    pub fn proposal_delay(&self, rank: u16) -> Duration {
        self.delta
            .saturating_mul(self.stagger.saturating_mul(rank as u64))
    }

    /// Notarization delay before voting for a block of `rank`:
    /// `Δ_notary(r) = stagger × Δ × r` (§4).
    pub fn notarization_delay(&self, rank: u16) -> Duration {
        self.proposal_delay(rank)
    }

    /// Number of honest replicas assuming exactly `f` Byzantine ones.
    pub fn honest(&self) -> usize {
        self.n - self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_validate() {
        // §9.2: n = 19 is optimal for both (f = 6, p = 1) and (f = 4, p = 4).
        assert_eq!(ProtocolConfig::min_replicas(6, 1), 19);
        assert_eq!(ProtocolConfig::min_replicas(4, 4), 19);
        assert!(ProtocolConfig::new(19, 6, 1).is_ok());
        assert!(ProtocolConfig::new(19, 4, 4).is_ok());
        // §9.3 small cluster: n = 4, f = 1, p = 1 → min = max(4, 4) = 4.
        assert_eq!(ProtocolConfig::min_replicas(1, 1), 4);
        assert!(ProtocolConfig::new(4, 1, 1).is_ok());
    }

    #[test]
    fn quorums_match_paper_examples() {
        // n = 19, f = 6: notarization quorum ⌈26/2⌉ = 13 = n − f.
        let c = ProtocolConfig::new(19, 6, 1).unwrap();
        assert_eq!(c.notarization_quorum(), 13);
        assert_eq!(c.finalization_quorum(), 13);
        assert_eq!(c.fast_quorum(), 18); // n − p = 18
        assert_eq!(c.unlock_threshold(), 7); // f + p = 7

        // n = 19, f = 4, p = 4: notarization ⌈24/2⌉ = 12 < n − f = 15.
        let c = ProtocolConfig::new(19, 4, 4).unwrap();
        assert_eq!(c.notarization_quorum(), 12);
        assert_eq!(c.fast_quorum(), 15);
        assert_eq!(c.unlock_threshold(), 8);

        // n = 4, f = 1, p = 1: fast path fires with 3 = n − p replies,
        // "the same conditions as regular notarization" (§9.3).
        let c = ProtocolConfig::new(4, 1, 1).unwrap();
        assert_eq!(c.notarization_quorum(), 3);
        assert_eq!(c.fast_quorum(), 3);
    }

    #[test]
    fn p_zero_reduces_to_classic_bound() {
        // With p = 0 the bound is the classic 3f + 1.
        assert_eq!(ProtocolConfig::min_replicas(1, 0), 4);
        assert_eq!(ProtocolConfig::min_replicas(6, 0), 19);
        assert!(ProtocolConfig::new(4, 1, 0).is_ok());
    }

    #[test]
    fn p_greater_than_f_rejected() {
        assert_eq!(
            ProtocolConfig::new(19, 1, 2).unwrap_err(),
            ConfigError::FastParamTooLarge { p: 2, f: 1 }
        );
    }

    #[test]
    fn insufficient_replicas_rejected() {
        assert_eq!(
            ProtocolConfig::new(18, 6, 1).unwrap_err(),
            ConfigError::InsufficientReplicas {
                n: 18,
                required: 19
            }
        );
        assert_eq!(
            ProtocolConfig::new(0, 0, 0).unwrap_err(),
            ConfigError::EmptyCluster
        );
    }

    #[test]
    fn max_faults_inverts_min_replicas() {
        assert_eq!(ProtocolConfig::max_faults(19, 1), 6);
        assert_eq!(ProtocolConfig::max_faults(19, 4), 4);
        assert_eq!(ProtocolConfig::max_faults(4, 1), 1);
        for n in 4..64 {
            for p in 0..4 {
                let f = ProtocolConfig::max_faults(n, p);
                if f >= p.max(1) {
                    assert!(ProtocolConfig::min_replicas(f, p) <= n);
                    assert!(ProtocolConfig::min_replicas(f + 1, p) > n);
                }
            }
        }
    }

    #[test]
    fn quorum_intersection_argument_holds() {
        // Lemma 8.4's counting argument: two quorums of ⌈(n+f+1)/2⌉ votes
        // must share an honest replica — i.e. 2·⌈(n−f+1)/2⌉ > n − f.
        for f in 1..8 {
            for p in 0..=f {
                let n = ProtocolConfig::min_replicas(f, p);
                let c = ProtocolConfig::new(n, f, p).unwrap();
                let honest_in_quorum = c.notarization_quorum() - f;
                assert!(
                    2 * honest_in_quorum > n - f,
                    "quorum intersection fails for n={n}, f={f}, p={p}"
                );
            }
        }
    }

    #[test]
    fn fast_quorum_intersects_unlock_threshold() {
        // Lemma 8.5: a block with n − p fast votes leaves at most
        // f + p fast votes (≤ threshold) for all other blocks combined,
        // given ≤ f Byzantine double-voters.
        for f in 1..8 {
            for p in 1..=f {
                let n = ProtocolConfig::min_replicas(f, p);
                let c = ProtocolConfig::new(n, f, p).unwrap();
                // Honest fast votes outside an FP-finalized block's support:
                // at most n − (n − p) = p; plus f Byzantine duplicates.
                assert!(
                    p + f <= c.unlock_threshold(),
                    "unlock threshold too low for n={n}, f={f}, p={p}"
                );
            }
        }
    }

    #[test]
    fn delay_schedule_matches_paper() {
        let c = ProtocolConfig::new(4, 1, 1)
            .unwrap()
            .with_delta(Duration::from_millis(100));
        assert_eq!(c.proposal_delay(0), Duration::ZERO);
        assert_eq!(c.proposal_delay(1), Duration::from_millis(200)); // 2Δ·1
        assert_eq!(c.notarization_delay(3), Duration::from_millis(600)); // 2Δ·3
    }

    #[test]
    fn display_of_errors() {
        let e = ProtocolConfig::new(18, 6, 1).unwrap_err();
        assert!(e.to_string().contains("19 required"));
    }
}
