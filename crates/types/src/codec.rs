//! Self-describing binary wire format.
//!
//! Every protocol message implements [`Wire`]: explicit little-endian
//! encoding, no reflection, no versioned schema language. A hand-rolled
//! codec keeps the byte layout under test (golden vectors + roundtrip
//! property tests) and gives the simulator exact wire sizes for its
//! bandwidth model.
//!
//! Layout conventions:
//! * integers: fixed-width little-endian;
//! * byte strings / lists: `u32` length prefix, then elements;
//! * enums: `u8` discriminant, then the variant body;
//! * decode is strict: unknown discriminants and truncated buffers error.

use std::fmt;

/// Errors returned by [`Wire::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A discriminant or field had an invalid value.
    Invalid(&'static str),
    /// Bytes remained after a top-level decode that requires exhaustion.
    TrailingBytes,
    /// A declared length exceeds the sanity limit.
    LengthOverflow,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
            CodecError::LengthOverflow => write!(f, "declared length exceeds limit"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Hard cap on any single length prefix (64 MiB): protects decoders from
/// hostile length fields.
pub const MAX_LEN: usize = 64 << 20;

/// A cursor over an input buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `bool` encoded as 0/1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool")),
        }
    }

    /// Reads a fixed 32-byte array.
    pub fn bytes32(&mut self) -> Result<[u8; 32], CodecError> {
        Ok(self.take(32)?.try_into().expect("32 bytes"))
    }

    /// Reads a fixed 64-byte array.
    pub fn bytes64(&mut self) -> Result<[u8; 64], CodecError> {
        Ok(self.take(64)?.try_into().expect("64 bytes"))
    }

    /// Reads a `u32`-prefixed byte string.
    pub fn var_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a `u32`-prefixed list of `Wire` values.
    pub fn var_list<T: Wire>(&mut self) -> Result<Vec<T>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Reads an `Option<T>` (0 = none, 1 = some).
    pub fn option<T: Wire>(&mut self) -> Result<Option<T>, CodecError> {
        if self.bool()? {
            Ok(Some(T::decode(self)?))
        } else {
            Ok(None)
        }
    }

    /// Asserts that the buffer is fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Output buffer helpers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Fresh writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as 0/1.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes raw bytes with no prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32`-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > u32::MAX`.
    pub fn var_bytes(&mut self, bytes: &[u8]) {
        self.u32(u32::try_from(bytes.len()).expect("length fits u32"));
        self.raw(bytes);
    }

    /// Writes a `u32`-prefixed list of `Wire` values.
    ///
    /// # Panics
    ///
    /// Panics if the list is longer than `u32::MAX`.
    pub fn var_list<T: Wire>(&mut self, items: &[T]) {
        self.u32(u32::try_from(items.len()).expect("length fits u32"));
        for item in items {
            item.encode(self);
        }
    }

    /// Writes an `Option<T>`.
    pub fn option<T: Wire>(&mut self, value: &Option<T>) {
        match value {
            None => self.bool(false),
            Some(v) => {
                self.bool(true);
                v.encode(self);
            }
        }
    }
}

/// Types with a canonical binary encoding.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Writer);

    /// Decodes a value from the reader, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or invalid fields.
    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Convenience: decodes from a complete buffer, requiring exhaustion.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if the buffer is longer than
    /// the value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Exact encoded size in bytes. The default encodes and measures;
    /// override for hot types.
    fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Writer) {
        out.u64(*self);
    }
    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        input.u64()
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for u16 {
    fn encode(&self, out: &mut Writer) {
        out.u16(*self);
    }
    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        input.u16()
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX);
        w.bool(true);
        w.var_bytes(b"hello");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.bool().unwrap());
        assert_eq!(r.var_bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32().unwrap_err(), CodecError::UnexpectedEof);
    }

    #[test]
    fn invalid_bool_errors() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool().unwrap_err(), CodecError::Invalid("bool"));
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = 42u64.to_bytes();
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            u64::from_bytes(&extended).unwrap_err(),
            CodecError::TrailingBytes
        );
        assert_eq!(u64::from_bytes(&bytes).unwrap(), 42);
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // declared length far beyond the buffer
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.var_bytes().unwrap_err(), CodecError::LengthOverflow);
    }

    #[test]
    fn option_roundtrip() {
        let mut w = Writer::new();
        w.option(&Some(9u64));
        w.option::<u64>(&None);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.option::<u64>().unwrap(), Some(9));
        assert_eq!(r.option::<u64>().unwrap(), None);
    }

    #[test]
    fn var_list_roundtrip() {
        let items = vec![1u64, 2, 3, u64::MAX];
        let mut w = Writer::new();
        w.var_list(&items);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.var_list::<u64>().unwrap(), items);
    }

    #[test]
    fn encoded_len_matches_actual() {
        assert_eq!(42u64.encoded_len(), 42u64.to_bytes().len());
        assert_eq!(7u16.encoded_len(), 2);
    }
}
