//! Simulation time: nanosecond-resolution instants and durations.
//!
//! Engines are pure state machines driven by `(event, now)` pairs; they
//! never read a wall clock. Under the discrete-event simulator `now` is
//! virtual time, under the TCP runner it is elapsed wall time since process
//! start. Using one newtype for both keeps the engines agnostic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The zero instant (start of the run).
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the start of the run.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as f64 (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the start of the run, as f64 (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Builds a duration from seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        Duration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds, as f64 (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as f64 (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Duration(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t + Duration::from_millis(3)) - t, Duration::from_millis(3));
        assert_eq!(Time(3).since(Time(10)), Duration::ZERO, "saturates");
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Duration::from_secs_f64(0.25).as_millis_f64(), 250.0);
        let std = std::time::Duration::from_millis(7);
        assert_eq!(Duration::from(std), Duration::from_millis(7));
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Time(1_500_000)), "t=1.500ms");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_secs_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(
            Duration::from_millis(2).saturating_mul(3),
            Duration::from_millis(6)
        );
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }
}
