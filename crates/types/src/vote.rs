//! Votes: the three signature flavors replicas broadcast.
//!
//! * **Notarization vote** — "I validated block `b` in round `k`" (§4).
//! * **Finalization vote** — "I sent notarization votes for no round-`k`
//!   block other than `b`" (§4, Algorithm 2 line 52).
//! * **Fast vote** — "the first round-`k` block I notarization-voted for is
//!   `b`" (Definition 6.2, Addition 3).
//!
//! Each flavor signs a distinct domain so a vote can never be replayed as a
//! different kind.

use banyan_crypto::Signature;

use crate::codec::{CodecError, Reader, Wire, Writer};
use crate::ids::{BlockHash, ReplicaId, Round};

/// Which of the three vote flavors this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VoteKind {
    /// Notarization vote (slow path, both ICC and Banyan).
    Notarize,
    /// Finalization vote (slow path, both ICC and Banyan).
    Finalize,
    /// Fast vote (Banyan fast path only).
    Fast,
}

impl VoteKind {
    fn discriminant(self) -> u8 {
        match self {
            VoteKind::Notarize => 0,
            VoteKind::Finalize => 1,
            VoteKind::Fast => 2,
        }
    }

    fn from_discriminant(d: u8) -> Result<Self, CodecError> {
        match d {
            0 => Ok(VoteKind::Notarize),
            1 => Ok(VoteKind::Finalize),
            2 => Ok(VoteKind::Fast),
            _ => Err(CodecError::Invalid("vote kind")),
        }
    }

    /// Domain-separation tag mixed into the signed message.
    pub fn domain(self) -> &'static [u8] {
        match self {
            VoteKind::Notarize => b"banyan/vote/notarize",
            VoteKind::Finalize => b"banyan/vote/finalize",
            VoteKind::Fast => b"banyan/vote/fast",
        }
    }
}

/// A single replica's vote for a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Vote {
    /// Vote flavor.
    pub kind: VoteKind,
    /// Round the vote refers to.
    pub round: Round,
    /// Voted block.
    pub block: BlockHash,
    /// Voting replica.
    pub voter: ReplicaId,
    /// Signature over [`Vote::signing_message`].
    pub signature: Signature,
}

impl Vote {
    /// The byte string a vote of this `(kind, round, block)` signs.
    ///
    /// Identical for every voter, which is what makes votes aggregatable
    /// into a multi-signature over a common message.
    pub fn signing_message(kind: VoteKind, round: Round, block: &BlockHash) -> Vec<u8> {
        let mut m = Vec::with_capacity(32 + 8 + 32);
        m.extend_from_slice(kind.domain());
        m.extend_from_slice(&round.0.to_le_bytes());
        m.extend_from_slice(&block.0);
        m
    }

    /// The message this specific vote signs.
    pub fn message(&self) -> Vec<u8> {
        Self::signing_message(self.kind, self.round, &self.block)
    }
}

impl Wire for Vote {
    fn encode(&self, out: &mut Writer) {
        out.u8(self.kind.discriminant());
        out.u64(self.round.0);
        out.raw(&self.block.0);
        out.u16(self.voter.0);
        out.raw(&self.signature.0);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Vote {
            kind: VoteKind::from_discriminant(input.u8()?)?,
            round: Round(input.u64()?),
            block: BlockHash(input.bytes32()?),
            voter: ReplicaId(input.u16()?),
            signature: Signature(input.bytes64()?),
        })
    }

    fn encoded_len(&self) -> usize {
        1 + 8 + 32 + 2 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: VoteKind) -> Vote {
        Vote {
            kind,
            round: Round(5),
            block: BlockHash([3u8; 32]),
            voter: ReplicaId(7),
            signature: Signature([9u8; 64]),
        }
    }

    #[test]
    fn wire_roundtrip_all_kinds() {
        for kind in [VoteKind::Notarize, VoteKind::Finalize, VoteKind::Fast] {
            let v = sample(kind);
            let bytes = v.to_bytes();
            assert_eq!(bytes.len(), v.encoded_len());
            assert_eq!(Vote::from_bytes(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn signing_domains_are_disjoint() {
        let r = Round(1);
        let b = BlockHash([1u8; 32]);
        let m1 = Vote::signing_message(VoteKind::Notarize, r, &b);
        let m2 = Vote::signing_message(VoteKind::Finalize, r, &b);
        let m3 = Vote::signing_message(VoteKind::Fast, r, &b);
        assert_ne!(m1, m2);
        assert_ne!(m1, m3);
        assert_ne!(m2, m3);
    }

    #[test]
    fn signing_message_binds_round_and_block() {
        let b = BlockHash([1u8; 32]);
        assert_ne!(
            Vote::signing_message(VoteKind::Fast, Round(1), &b),
            Vote::signing_message(VoteKind::Fast, Round(2), &b)
        );
        assert_ne!(
            Vote::signing_message(VoteKind::Fast, Round(1), &b),
            Vote::signing_message(VoteKind::Fast, Round(1), &BlockHash([2u8; 32]))
        );
    }

    #[test]
    fn bad_kind_discriminant_rejected() {
        let mut bytes = sample(VoteKind::Fast).to_bytes();
        bytes[0] = 9;
        assert_eq!(
            Vote::from_bytes(&bytes).unwrap_err(),
            CodecError::Invalid("vote kind")
        );
    }
}
