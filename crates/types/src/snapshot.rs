//! [`ChainSnapshot`]: the portable, wire-encodable image of a replica's
//! durable chain state.
//!
//! A snapshot is what survives a crash: the block tree, the notarized set
//! and its certificates, the HotStuff justify links, and the finalized
//! frontier. It is produced by `Engine::snapshot` (and by
//! `banyan-storage`'s stores), consumed by `Engine::restore`, and doubles
//! as the WAL's checkpoint record — one encoding for all three uses.
//!
//! Snapshots are **normalized**: every vector is sorted by a total,
//! content-derived key, so two replicas holding the same logical state
//! produce bit-identical snapshot bytes regardless of the insertion order
//! of their internal hash maps. That is what makes "restart-and-replay
//! reaches bit-identical state" a testable property.

use crate::block::Block;
use crate::certs::{Notarization, QuorumCert};
use crate::codec::{CodecError, Reader, Wire, Writer};
use crate::ids::{BlockHash, Round};

/// A replica's durable chain state at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainSnapshot {
    /// Every stored block, keyed by its identity hash. The hash is
    /// carried explicitly so stores can restore without knowing the
    /// engine's payload-chunk hashing parameter; restoring engines may
    /// recompute and cross-check.
    pub blocks: Vec<(BlockHash, Block)>,
    /// Hashes of the notarized blocks (certificate may be absent when a
    /// quorum was only learned indirectly).
    pub notarized: Vec<BlockHash>,
    /// The notarization certificates held.
    pub notarizations: Vec<Notarization>,
    /// HotStuff justify links (`block hash → QC for its parent chain`);
    /// empty for the chained and Streamlet engines.
    pub justifies: Vec<(BlockHash, QuorumCert)>,
    /// The finalized frontier: `round → finalized block hash`.
    pub finalized: Vec<(Round, BlockHash)>,
    /// Highest committed round (the chained engine's `k_max`, HotStuff's
    /// and Streamlet's `committed_round`).
    pub committed_round: Round,
    /// Highest committed view/epoch counter for view-based engines
    /// (HotStuff `committed_view`); 0 elsewhere.
    pub committed_view: u64,
}

impl ChainSnapshot {
    /// True if the snapshot holds no state at all (a fresh replica).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
            && self.notarized.is_empty()
            && self.notarizations.is_empty()
            && self.justifies.is_empty()
            && self.finalized.is_empty()
            && self.committed_round == Round::GENESIS
            && self.committed_view == 0
    }

    /// Sorts every vector by a total, content-derived key so logically
    /// equal snapshots encode bit-identically. Engines call this before
    /// returning a snapshot assembled from hash-map iteration.
    pub fn normalize(&mut self) {
        self.blocks.sort_by_key(|(h, _)| *h);
        self.notarized.sort();
        self.notarizations
            .sort_by_key(|n| (n.round, n.block, n.fast_agg.is_some()));
        self.justifies.sort_by_key(|(h, qc)| (*h, qc.view));
        self.finalized.sort();
    }

    /// The highest finalized round recorded, genesis if none.
    pub fn max_finalized_round(&self) -> Round {
        self.finalized
            .iter()
            .map(|&(r, _)| r)
            .max()
            .unwrap_or(Round::GENESIS)
            .max(self.committed_round)
    }
}

impl Wire for ChainSnapshot {
    fn encode(&self, out: &mut Writer) {
        out.u32(u32::try_from(self.blocks.len()).expect("block count fits u32"));
        for (h, b) in &self.blocks {
            out.raw(&h.0);
            b.encode(out);
        }
        out.u32(u32::try_from(self.notarized.len()).expect("notarized count fits u32"));
        for h in &self.notarized {
            out.raw(&h.0);
        }
        out.var_list(&self.notarizations);
        out.u32(u32::try_from(self.justifies.len()).expect("justify count fits u32"));
        for (h, qc) in &self.justifies {
            out.raw(&h.0);
            qc.encode(out);
        }
        out.u32(u32::try_from(self.finalized.len()).expect("finalized count fits u32"));
        for (round, h) in &self.finalized {
            out.u64(round.0);
            out.raw(&h.0);
        }
        out.u64(self.committed_round.0);
        out.u64(self.committed_view);
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = input.u32()? as usize;
        if n > crate::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut blocks = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let h = BlockHash(input.bytes32()?);
            blocks.push((h, Block::decode(input)?));
        }
        let n = input.u32()? as usize;
        if n > crate::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut notarized = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            notarized.push(BlockHash(input.bytes32()?));
        }
        let notarizations = input.var_list()?;
        let n = input.u32()? as usize;
        if n > crate::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut justifies = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let h = BlockHash(input.bytes32()?);
            justifies.push((h, QuorumCert::decode(input)?));
        }
        let n = input.u32()? as usize;
        if n > crate::codec::MAX_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut finalized = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let round = Round(input.u64()?);
            finalized.push((round, BlockHash(input.bytes32()?)));
        }
        Ok(ChainSnapshot {
            blocks,
            notarized,
            notarizations,
            justifies,
            finalized,
            committed_round: Round(input.u64()?),
            committed_view: input.u64()?,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + self
            .blocks
            .iter()
            .map(|(_, b)| 32 + b.encoded_len())
            .sum::<usize>()
            + 4
            + 32 * self.notarized.len()
            + 4
            + self
                .notarizations
                .iter()
                .map(Wire::encoded_len)
                .sum::<usize>()
            + 4
            + self
                .justifies
                .iter()
                .map(|(_, qc)| 32 + qc.encoded_len())
                .sum::<usize>()
            + 4
            + 40 * self.finalized.len()
            + 8
            + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Rank, ReplicaId};
    use crate::payload::Payload;
    use crate::time::Time;
    use banyan_crypto::{AggregateSignature, Signature, SignerBitmap};

    fn block(round: u64, proposer: u16) -> (BlockHash, Block) {
        let b = raw_block(round, proposer);
        (b.hash(1024), b)
    }

    fn raw_block(round: u64, proposer: u16) -> Block {
        Block {
            round: Round(round),
            proposer: ReplicaId(proposer),
            rank: Rank(0),
            parent: BlockHash([round as u8; 32]),
            proposed_at: Time(round * 7),
            payload: Payload::synthetic(100, round),
            signature: Signature::zero(),
        }
    }

    fn agg() -> AggregateSignature {
        let mut bm = SignerBitmap::new(4);
        bm.set(1);
        AggregateSignature {
            signers: bm,
            data: vec![3; 32],
        }
    }

    fn sample() -> ChainSnapshot {
        let mut snap = ChainSnapshot {
            blocks: vec![block(2, 1), block(1, 0)],
            notarized: vec![BlockHash([2; 32]), BlockHash([1; 32])],
            notarizations: vec![Notarization::from_votes(
                Round(1),
                BlockHash([1; 32]),
                agg(),
            )],
            justifies: vec![(
                BlockHash([2; 32]),
                QuorumCert {
                    view: 1,
                    block: BlockHash([1; 32]),
                    agg: agg(),
                },
            )],
            finalized: vec![(Round(1), BlockHash([1; 32]))],
            committed_round: Round(1),
            committed_view: 0,
        };
        snap.normalize();
        snap
    }

    #[test]
    fn roundtrips() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        assert_eq!(ChainSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_roundtrips_and_reports_empty() {
        let snap = ChainSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.max_finalized_round(), Round::GENESIS);
        assert_eq!(ChainSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
        assert!(!sample().is_empty());
    }

    #[test]
    fn normalization_makes_insertion_order_irrelevant() {
        let mut a = ChainSnapshot {
            blocks: vec![block(1, 0), block(2, 1), block(2, 3)],
            notarized: vec![BlockHash([9; 32]), BlockHash([1; 32])],
            ..ChainSnapshot::default()
        };
        let mut b = ChainSnapshot {
            blocks: vec![block(2, 3), block(1, 0), block(2, 1)],
            notarized: vec![BlockHash([1; 32]), BlockHash([9; 32])],
            ..ChainSnapshot::default()
        };
        a.normalize();
        b.normalize();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn max_finalized_round_covers_both_sources() {
        let mut snap = ChainSnapshot::default();
        snap.finalized.push((Round(5), BlockHash([5; 32])));
        assert_eq!(snap.max_finalized_round(), Round(5));
        snap.committed_round = Round(9);
        assert_eq!(snap.max_finalized_round(), Round(9));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert!(ChainSnapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }
}
