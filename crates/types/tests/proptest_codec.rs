//! Property tests: the wire codec must roundtrip every representable
//! message, and `encoded_len` must always equal the actual encoding size
//! (the simulator's bandwidth accounting depends on it).

use proptest::prelude::*;

use banyan_crypto::{AggregateSignature, Signature, SignerBitmap};
use banyan_types::block::Block;
use banyan_types::certs::{
    FinalKind, Finalization, Notarization, QuorumCert, UnlockEntry, UnlockProof,
};
use banyan_types::codec::Wire;
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{
    ChainedMsg, DisseminationMsg, HotStuffMsg, Message, PendingRequest, StreamletMsg, SyncMsg,
};
use banyan_types::payload::Payload;
use banyan_types::time::Time;
use banyan_types::vote::{Vote, VoteKind};

fn arb_hash() -> impl Strategy<Value = BlockHash> {
    any::<[u8; 32]>().prop_map(BlockHash)
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    any::<[u8; 32]>().prop_map(|half| {
        let mut s = [0u8; 64];
        s[..32].copy_from_slice(&half);
        s[32..].copy_from_slice(&half);
        Signature(s)
    })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(Payload::Inline),
        (any::<u64>(), any::<u64>()).prop_map(|(len, seed)| Payload::Synthetic {
            len: len % (1 << 24),
            seed
        }),
    ]
}

fn arb_block() -> impl Strategy<Value = Block> {
    (
        any::<u64>(),
        any::<u16>(),
        any::<u16>(),
        arb_hash(),
        any::<u64>(),
        arb_payload(),
        arb_sig(),
    )
        .prop_map(
            |(round, proposer, rank, parent, at, payload, signature)| Block {
                round: Round(round),
                proposer: ReplicaId(proposer),
                rank: Rank(rank),
                parent,
                proposed_at: Time(at),
                payload,
                signature,
            },
        )
}

fn arb_agg() -> impl Strategy<Value = AggregateSignature> {
    (
        1usize..64,
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(any::<u16>(), 0..8),
    )
        .prop_map(|(width, data, setters)| {
            let mut bm = SignerBitmap::new(width);
            for s in setters {
                bm.set(s % width as u16);
            }
            AggregateSignature { signers: bm, data }
        })
}

fn arb_vote() -> impl Strategy<Value = Vote> {
    (
        prop_oneof![
            Just(VoteKind::Notarize),
            Just(VoteKind::Finalize),
            Just(VoteKind::Fast)
        ],
        any::<u64>(),
        arb_hash(),
        any::<u16>(),
        arb_sig(),
    )
        .prop_map(|(kind, round, block, voter, signature)| Vote {
            kind,
            round: Round(round),
            block,
            voter: ReplicaId(voter),
            signature,
        })
}

fn arb_notarization() -> impl Strategy<Value = Notarization> {
    (
        any::<u64>(),
        arb_hash(),
        arb_agg(),
        proptest::option::of(arb_agg()),
    )
        .prop_map(|(round, block, agg, fast_agg)| Notarization {
            round: Round(round),
            block,
            agg,
            fast_agg,
        })
}

fn arb_unlock_proof() -> impl Strategy<Value = UnlockProof> {
    (
        any::<u64>(),
        proptest::collection::vec((arb_hash(), any::<u16>(), arb_agg()), 0..4),
    )
        .prop_map(|(round, entries)| UnlockProof {
            round: Round(round),
            entries: entries
                .into_iter()
                .map(|(block, rank, agg)| UnlockEntry {
                    block,
                    rank: Rank(rank),
                    agg,
                })
                .collect(),
        })
}

fn arb_pending_request() -> impl Strategy<Value = PendingRequest> {
    (any::<u64>(), any::<u16>(), any::<u64>(), any::<u64>()).prop_map(|(id, client, size, at)| {
        PendingRequest {
            id,
            client,
            // Bounded so wire_len sums cannot overflow in the property
            // below (the simulator never ships > MAX_LEN-sized requests).
            size: size % (1 << 32),
            submitted_at: Time(at),
        }
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            arb_block(),
            proptest::option::of(arb_notarization()),
            proptest::option::of(arb_unlock_proof()),
            proptest::option::of(arb_vote())
        )
            .prop_map(|(block, parent_notarization, parent_unlock, fast_vote)| {
                Message::Chained(ChainedMsg::Proposal {
                    block,
                    parent_notarization,
                    parent_unlock,
                    fast_vote,
                })
            }),
        proptest::collection::vec(arb_vote(), 0..5)
            .prop_map(|v| Message::Chained(ChainedMsg::Votes(v))),
        (arb_notarization(), proptest::option::of(arb_unlock_proof())).prop_map(
            |(notarization, unlock)| Message::Chained(ChainedMsg::Advance {
                notarization,
                unlock
            })
        ),
        (
            any::<u64>(),
            arb_hash(),
            prop_oneof![Just(FinalKind::Slow), Just(FinalKind::Fast)],
            arb_agg()
        )
            .prop_map(
                |(round, block, kind, agg)| Message::Chained(ChainedMsg::Final(Finalization {
                    round: Round(round),
                    block,
                    kind,
                    agg,
                }))
            ),
        (arb_block(), any::<u64>(), arb_hash(), arb_agg()).prop_map(
            |(block, view, qblock, agg)| {
                Message::HotStuff(HotStuffMsg::Proposal {
                    block,
                    justify: QuorumCert {
                        view,
                        block: qblock,
                        agg,
                    },
                })
            }
        ),
        (any::<u64>(), arb_hash(), any::<u16>(), arb_sig()).prop_map(
            |(view, block, voter, signature)| {
                Message::HotStuff(HotStuffMsg::Vote {
                    view,
                    block,
                    voter: ReplicaId(voter),
                    signature,
                })
            }
        ),
        arb_block().prop_map(|block| Message::Streamlet(StreamletMsg::Proposal { block })),
        arb_vote().prop_map(|v| Message::Streamlet(StreamletMsg::Vote(v))),
        arb_hash().prop_map(|hash| Message::Sync(SyncMsg::Request { hash })),
        arb_block().prop_map(|block| Message::Sync(SyncMsg::Response { block })),
        proptest::collection::vec(arb_pending_request(), 0..8)
            .prop_map(|requests| Message::Dissemination(DisseminationMsg::Forward { requests })),
        proptest::collection::vec(arb_pending_request(), 0..8)
            .prop_map(|requests| Message::Dissemination(DisseminationMsg::Announce { requests })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len mismatch");
        let back = Message::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn wire_len_at_least_encoded_len(msg in arb_message()) {
        prop_assert!(msg.wire_len() >= msg.encoded_len() as u64);
    }

    #[test]
    fn truncated_messages_never_panic(msg in arb_message(), cut in 0usize..64) {
        let mut bytes = msg.to_bytes();
        let keep = bytes.len().saturating_sub(cut + 1);
        bytes.truncate(keep);
        // Must error (or decode a prefix value then fail the exhaustion
        // check) — never panic.
        let _ = Message::from_bytes(&bytes);
    }

    #[test]
    fn vote_roundtrip(v in arb_vote()) {
        prop_assert_eq!(Vote::from_bytes(&v.to_bytes()).expect("decode"), v);
    }

    #[test]
    fn dissemination_forward_roundtrip(
        requests in proptest::collection::vec(arb_pending_request(), 0..32)
    ) {
        let msg = Message::Dissemination(DisseminationMsg::Forward { requests: requests.clone() });
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len mismatch");
        let back = Message::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&back, &msg);
        // The bandwidth model charges record bytes plus the nominal
        // content size of every forwarded request.
        let content: u64 = requests.iter().map(|r| r.size).sum();
        prop_assert_eq!(msg.wire_len(), msg.encoded_len() as u64 + content);
    }

    #[test]
    fn dissemination_announce_roundtrip(
        requests in proptest::collection::vec(arb_pending_request(), 0..32)
    ) {
        let msg = Message::Dissemination(DisseminationMsg::Announce { requests: requests.clone() });
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len mismatch");
        let back = Message::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&back, &msg);
        // Announcements ship only the 26-byte records: no virtual body
        // bytes — this asymmetry against `Forward` is the entire point
        // of the propagation tree.
        prop_assert_eq!(msg.wire_len(), msg.encoded_len() as u64);
    }

    #[test]
    fn unlock_proof_roundtrip(p in arb_unlock_proof()) {
        prop_assert_eq!(UnlockProof::from_bytes(&p.to_bytes()).expect("decode"), p);
    }

    #[test]
    fn block_hash_is_stable_under_reencode(b in arb_block()) {
        let chunk = 16 * 1024;
        let h1 = b.hash(chunk);
        let b2 = Block::from_bytes(&b.to_bytes()).expect("decode");
        prop_assert_eq!(b2.hash(chunk), h1);
    }
}

// ---------------------------------------------------------------------------
// Compact-certificate codec: aggregates produced by the compact Schnorr
// scheme (`9 + 8k` bytes instead of the naive `16k`) must survive the wire
// byte-for-byte and still verify afterwards — the codec must never need to
// know which scheme id the cluster negotiated.

mod compact_certs {
    use std::sync::Arc;

    use proptest::prelude::*;

    use banyan_crypto::registry::{derive_seed, PublicKeyTable};
    use banyan_crypto::schnorr::ToySchnorr;
    use banyan_crypto::sig::{SignatureScheme, SignerIndex};
    use banyan_crypto::SecretKey;
    use banyan_types::certs::Notarization;
    use banyan_types::codec::Wire;
    use banyan_types::ids::{BlockHash, Round};

    fn cluster(seed: u64, n: usize) -> (PublicKeyTable, Vec<SecretKey>) {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(ToySchnorr::compact());
        let table = PublicKeyTable::generate(scheme.clone(), seed, n);
        let sks = (0..n)
            .map(|i| scheme.keygen(&derive_seed(seed, i as SignerIndex)).0)
            .collect();
        (table, sks)
    }

    proptest! {
        // Real signing keeps the case count modest: each case signs and
        // verifies up to 10 toy-group signatures.
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn compact_aggregates_roundtrip_and_still_verify(
            seed in any::<u64>(),
            n in 2usize..10,
            signer_mask in any::<u16>(),
            msg in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let (table, sks) = cluster(seed, n);
            let scheme = table.scheme().clone();
            let sigs: Vec<_> = (0..n)
                .filter(|i| signer_mask & (1 << i) != 0)
                .map(|i| (i as SignerIndex, scheme.sign(&sks[i], &msg)))
                .collect();
            let agg = table.aggregate(&sigs);
            prop_assert_eq!(
                agg.data.len(),
                9 + 8 * agg.count(),
                "compact codec size"
            );

            // Ship it inside a certificate and pull it back out.
            let cert = Notarization::from_votes(
                Round(7),
                BlockHash([9; 32]),
                agg,
            );
            let bytes = cert.to_bytes();
            prop_assert_eq!(bytes.len(), cert.encoded_len());
            let back = Notarization::from_bytes(&bytes).expect("decode");
            prop_assert_eq!(&back, &cert);

            // The decoded aggregate verifies iff anyone actually signed
            // (an empty aggregate verifies trivially — that is exactly why
            // engines gate on `meets_quorum` first).
            prop_assert!(table.verify_aggregate(&msg, &back.agg));
            if !sigs.is_empty() {
                let mut other = msg.clone();
                other[0] ^= 1;
                prop_assert!(!table.verify_aggregate(&other, &back.agg));
            }
        }

        #[test]
        fn truncated_compact_aggregates_fail_cleanly(
            seed in any::<u64>(),
            cut in 1usize..16,
        ) {
            let (table, sks) = cluster(seed, 4);
            let scheme = table.scheme().clone();
            let msg = b"compact cert";
            let sigs: Vec<_> = (0..4)
                .map(|i| (i as SignerIndex, scheme.sign(&sks[i], msg)))
                .collect();
            let mut agg = table.aggregate(&sigs);
            // Corrupting the length must yield `false`, never a panic: the
            // verifier cannot trust the wire to deliver well-formed data.
            let keep = agg.data.len().saturating_sub(cut);
            agg.data.truncate(keep);
            prop_assert!(!table.verify_aggregate(msg, &agg));
        }
    }
}
