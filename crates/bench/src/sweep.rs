//! Saturation sweeps: drive a protocol with a growing closed-loop client
//! population and find the knee of its throughput/latency curve.
//!
//! A closed-loop population of `clients × window` outstanding requests
//! offers load that self-regulates to what the cluster commits: at small
//! populations goodput grows roughly linearly with clients (latency is
//! flat at the consensus floor), and past the cluster's capacity goodput
//! plateaus while latency grows with the queue. The **knee** is the
//! smallest population that already achieves (nearly all of) the plateau
//! goodput — the operating point every BFT evaluation wants to report.

use banyan_types::time::Duration;

use crate::runner::{run, Scenario};

/// One measured point of a saturation sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Closed-loop population size: real clients for
    /// [`measure`], *modeled* clients for [`measure_cohorts`] (which is
    /// why this is wide enough for 10⁶).
    pub clients: u64,
    /// Outstanding-request window per client.
    pub window: u32,
    /// Committed requests per second.
    pub goodput_rps: f64,
    /// End-to-end (submit→commit) median latency, ms.
    pub p50_ms: f64,
    /// End-to-end (submit→commit) 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Committed payload bytes per second, MB/s.
    pub throughput_mbps: f64,
    /// Rounds per commit: mean explicit-commit interval at the observer
    /// normalized by the protocol Δ (see `Outcome::rounds_per_commit`).
    /// The meter optimistic pipelining moves — proposal/certification
    /// overlap shortens the span between finalizations.
    pub rounds_per_commit: f64,
    /// Requests submitted over the run.
    pub submitted: u64,
    /// Requests committed over the run (deduped by id).
    pub committed: u64,
    /// Requests lost: `submitted − completed − pending` at the end of
    /// the run (after the drain phase, when one is configured). Nonzero
    /// means work vanished into never-finalized proposals.
    pub lost: u64,
    /// Client retransmissions performed.
    pub retried: u64,
    /// Duplicate committed occurrences suppressed by exactly-once dedup.
    pub duplicates: u64,
    /// Duplicate inclusions as a share of committed requests
    /// (`duplicates / committed`, 0 when nothing committed) — the
    /// regression meter for the speculative drain: blind drains under
    /// gossip push this far up for commit-lagged protocols; ancestor-aware
    /// drains hold it near zero.
    pub dup_share: f64,
    /// Batch efficiency: the fraction of batched-and-committed request
    /// occurrences that were useful, `committed / (committed +
    /// duplicates)` (1.0 when nothing committed — an empty run wastes no
    /// block space).
    pub batch_efficiency: f64,
    /// Catch-up fetches issued by rejoining replicas (0 without restarts).
    pub sync_requests: u64,
    /// Blocks served in ranged-sync response batches.
    pub sync_blocks: u64,
    /// Total milliseconds rejoining replicas spent catching up.
    pub recovery_ms: u64,
    /// Write-ahead-log bytes held across replicas at the end of the run.
    pub wal_bytes: u64,
    /// Signatures verified across all replicas (0 with crypto off).
    pub sigs: u64,
    /// Combined (batched) verification checks performed.
    pub batches: u64,
    /// Certificate verifications answered from the verdict cache.
    pub cache_hits: u64,
    /// Virtual CPU milliseconds charged for verification.
    pub verify_cpu_ms: u64,
    /// Dissemination bytes on the wire per submitted request (0 without
    /// gossip) — the meter propagation-limited gossip exists to shrink:
    /// broadcast pays ~`(n−1) × size` per request, the fanout tree pays
    /// `fanout` full copies plus compact announce records.
    pub gossip_bytes_per_req: f64,
    /// Forward-path losses: shared-outbox drops plus per-peer
    /// backpressure sheds across every pool.
    pub forwards_dropped: u64,
}

impl SweepPoint {
    /// Derives the duplicate-share and batch-efficiency columns from raw
    /// committed/duplicate counts.
    pub fn efficiency(committed: u64, duplicates: u64) -> (f64, f64) {
        if committed == 0 {
            return (0.0, 1.0);
        }
        let dup_share = duplicates as f64 / committed as f64;
        let batch_efficiency = committed as f64 / (committed + duplicates) as f64;
        (dup_share, batch_efficiency)
    }
}

/// The fraction of the plateau goodput a point must reach to qualify as
/// the knee (90% — past it, added clients buy latency, not goodput).
pub const KNEE_FRACTION: f64 = 0.9;

/// Index of the saturation knee: the first point whose goodput reaches
/// [`KNEE_FRACTION`] of the sweep's maximum goodput. `None` for an empty
/// sweep or one that never commits anything.
pub fn knee_index(points: &[SweepPoint]) -> Option<usize> {
    let max = points.iter().map(|p| p.goodput_rps).fold(0.0, f64::max);
    if max <= 0.0 {
        return None;
    }
    points
        .iter()
        .position(|p| p.goodput_rps >= KNEE_FRACTION * max)
}

/// The end-to-end median latency at the sweep's knee, ms — the headline
/// "commit latency at the operating point" number. `None` when the sweep
/// has no knee (nothing committed).
pub fn knee_p50_ms(points: &[SweepPoint]) -> Option<f64> {
    knee_index(points).map(|i| points[i].p50_ms)
}

/// Mean rounds-per-commit across a sweep's points (0-valued points —
/// runs with fewer than two explicit commits — are excluded). `None`
/// when no point produced the meter.
pub fn mean_rounds_per_commit(points: &[SweepPoint]) -> Option<f64> {
    let live: Vec<f64> = points
        .iter()
        .map(|p| p.rounds_per_commit)
        .filter(|&r| r > 0.0)
        .collect();
    if live.is_empty() {
        return None;
    }
    Some(live.iter().sum::<f64>() / live.len() as f64)
}

/// Runs one point of a sweep: `base` (protocol, topology, request size,
/// duration, seed, …) switched to a closed loop of `clients × window`
/// outstanding requests with `think_time` pauses, reduced to a
/// [`SweepPoint`].
///
/// # Panics
///
/// Panics if the run observes a safety violation.
pub fn measure(base: &Scenario, clients: u16, window: u32, think_time: Duration) -> SweepPoint {
    let scenario = base.clone().closed_loop(clients, window, think_time);
    reduce(&scenario, clients as u64, window)
}

/// Runs one point of a **cohort** sweep: `base` switched to a
/// cohort-aggregated population of `modeled` clients in `cohorts`
/// cohorts. The same [`SweepPoint`] comes back, with `clients` carrying
/// the *modeled* population (up to millions).
///
/// # Panics
///
/// Panics if the run observes a safety violation.
pub fn measure_cohorts(
    base: &Scenario,
    modeled: u64,
    cohorts: u16,
    window: u32,
    think_time: Duration,
) -> SweepPoint {
    let scenario = base
        .clone()
        .cohort_load(modeled, cohorts, window, think_time);
    reduce(&scenario, modeled, window)
}

fn reduce(scenario: &Scenario, clients: u64, window: u32) -> SweepPoint {
    let out = run(scenario);
    assert!(out.safe, "safety violation in {} sweep", scenario.protocol);
    let e2e = out.client_latency.unwrap_or_default();
    let (dup_share, batch_efficiency) =
        SweepPoint::efficiency(out.requests_committed, out.duplicates_suppressed);
    let gossip_bytes_per_req = if out.requests_submitted > 0 {
        out.gossip_bytes as f64 / out.requests_submitted as f64
    } else {
        0.0
    };
    SweepPoint {
        clients,
        window,
        goodput_rps: out.goodput_rps,
        p50_ms: e2e.p50_ms,
        p99_ms: e2e.p99_ms,
        throughput_mbps: out.throughput_mbps,
        rounds_per_commit: out.rounds_per_commit,
        submitted: out.requests_submitted,
        committed: out.requests_committed,
        lost: out.requests_lost,
        retried: out.requests_retried,
        duplicates: out.duplicates_suppressed,
        dup_share,
        batch_efficiency,
        sync_requests: out.sync_requests,
        sync_blocks: out.sync_blocks_served,
        recovery_ms: out.restart_recovery_ms,
        wal_bytes: out.wal_bytes,
        sigs: out.sigs_verified,
        batches: out.verify_batches,
        cache_hits: out.cert_cache_hits,
        verify_cpu_ms: out.verify_cpu_ms,
        gossip_bytes_per_req,
        forwards_dropped: out.forwards_dropped,
    }
}

/// Header matching [`point_row`].
pub fn sweep_header() -> String {
    format!(
        "{:>8} {:>7} {:>12} {:>10} {:>10} {:>9} {:>6} {:>10} {:>10} {:>6} {:>8} {:>6} {:>6} {:>6} {:>5} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7} {:>8} {:>10} {:>8}  {}",
        "clients",
        "window",
        "goodput/s",
        "p50 ms",
        "p99 ms",
        "MB/s",
        "rpc",
        "submitted",
        "committed",
        "lost",
        "retried",
        "dups",
        "dup%",
        "eff%",
        "sync",
        "served",
        "rec.ms",
        "wal.B",
        "sigs",
        "batches",
        "cacheh",
        "vcpu.ms",
        "gsp.B/req",
        "fwd.drop",
        ""
    )
}

/// Formats one sweep point; `knee` appends the saturation marker.
pub fn point_row(p: &SweepPoint, knee: bool) -> String {
    format!(
        "{:>8} {:>7} {:>12.1} {:>10.2} {:>10.2} {:>9.3} {:>6.2} {:>10} {:>10} {:>6} {:>8} {:>6} {:>6.2} {:>6.1} {:>5} {:>7} {:>7} {:>9} {:>9} {:>8} {:>7} {:>8} {:>10.1} {:>8}  {}",
        p.clients,
        p.window,
        p.goodput_rps,
        p.p50_ms,
        p.p99_ms,
        p.throughput_mbps,
        p.rounds_per_commit,
        p.submitted,
        p.committed,
        p.lost,
        p.retried,
        p.duplicates,
        p.dup_share * 100.0,
        p.batch_efficiency * 100.0,
        p.sync_requests,
        p.sync_blocks,
        p.recovery_ms,
        p.wal_bytes,
        p.sigs,
        p.batches,
        p.cache_hits,
        p.verify_cpu_ms,
        p.gossip_bytes_per_req,
        p.forwards_dropped,
        if knee { "<- knee" } else { "" }
    )
}

/// One sweep point as a JSON object (hand-rolled — every field is a
/// number, so no escaping is needed).
pub fn point_json(p: &SweepPoint) -> String {
    format!(
        "{{\"clients\":{},\"window\":{},\"goodput_rps\":{:.3},\"p50_ms\":{:.4},\
         \"p99_ms\":{:.4},\"throughput_mbps\":{:.5},\"rounds_per_commit\":{:.4},\
         \"submitted\":{},\"committed\":{},\
         \"lost\":{},\"retried\":{},\"duplicates\":{},\"dup_share\":{:.5},\
         \"batch_efficiency\":{:.5},\"sync_requests\":{},\"sync_blocks\":{},\
         \"recovery_ms\":{},\"wal_bytes\":{},\"sigs\":{},\"batches\":{},\
         \"cache_hits\":{},\"verify_cpu_ms\":{},\
         \"gossip_bytes_per_req\":{:.3},\"forwards_dropped\":{}}}",
        p.clients,
        p.window,
        p.goodput_rps,
        p.p50_ms,
        p.p99_ms,
        p.throughput_mbps,
        p.rounds_per_commit,
        p.submitted,
        p.committed,
        p.lost,
        p.retried,
        p.duplicates,
        p.dup_share,
        p.batch_efficiency,
        p.sync_requests,
        p.sync_blocks,
        p.recovery_ms,
        p.wal_bytes,
        p.sigs,
        p.batches,
        p.cache_hits,
        p.verify_cpu_ms,
        p.gossip_bytes_per_req,
        p.forwards_dropped
    )
}

/// One protocol's whole sweep as a JSON object:
/// `{"protocol":…,"knee":…,"points":[…]}` with `knee` the knee *index*
/// (or `null`). Machine-readable output for trajectory tracking
/// (`BENCH_*.json`) and CI assertions.
pub fn sweep_json(protocol: &str, points: &[SweepPoint]) -> String {
    let knee = match knee_index(points) {
        Some(i) => i.to_string(),
        None => "null".to_string(),
    };
    let body: Vec<String> = points.iter().map(point_json).collect();
    format!(
        "{{\"protocol\":\"{}\",\"knee\":{},\"points\":[{}]}}",
        protocol,
        knee,
        body.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(clients: u64, goodput: f64) -> SweepPoint {
        let (dup_share, batch_efficiency) = SweepPoint::efficiency(90, 1);
        SweepPoint {
            clients,
            window: 1,
            goodput_rps: goodput,
            p50_ms: 10.0,
            p99_ms: 20.0,
            throughput_mbps: 1.0,
            rounds_per_commit: 3.5,
            submitted: 100,
            committed: 90,
            lost: 3,
            retried: 7,
            duplicates: 1,
            dup_share,
            batch_efficiency,
            sync_requests: 2,
            sync_blocks: 12,
            recovery_ms: 45,
            wal_bytes: 2048,
            sigs: 640,
            batches: 32,
            cache_hits: 16,
            verify_cpu_ms: 25,
            gossip_bytes_per_req: 1536.5,
            forwards_dropped: 4,
        }
    }

    #[test]
    fn efficiency_columns_derive_from_counts() {
        assert_eq!(SweepPoint::efficiency(0, 0), (0.0, 1.0));
        let (dup, eff) = SweepPoint::efficiency(90, 10);
        assert!((dup - 10.0 / 90.0).abs() < 1e-12);
        assert!((eff - 0.9).abs() < 1e-12);
        let (dup, eff) = SweepPoint::efficiency(100, 0);
        assert_eq!((dup, eff), (0.0, 1.0));
    }

    #[test]
    fn knee_is_first_point_near_plateau() {
        // Linear ramp then plateau at 100: 90% of 100 is first reached at
        // the 95-goodput point.
        let sweep = vec![
            pt(1, 25.0),
            pt(2, 50.0),
            pt(4, 95.0),
            pt(8, 100.0),
            pt(16, 99.0),
        ];
        assert_eq!(knee_index(&sweep), Some(2));
    }

    #[test]
    fn knee_of_flat_sweep_is_first_point() {
        let sweep = vec![pt(1, 50.0), pt(2, 50.0), pt(4, 50.0)];
        assert_eq!(knee_index(&sweep), Some(0));
    }

    #[test]
    fn knee_absent_without_goodput() {
        assert_eq!(knee_index(&[]), None);
        assert_eq!(knee_index(&[pt(1, 0.0), pt(2, 0.0)]), None);
        assert_eq!(knee_p50_ms(&[]), None);
    }

    #[test]
    fn knee_latency_and_mean_rpc_reduce_the_sweep() {
        let sweep = vec![pt(1, 25.0), pt(2, 95.0), pt(4, 100.0)];
        assert_eq!(knee_p50_ms(&sweep), Some(10.0));
        let mean = mean_rounds_per_commit(&sweep).expect("live points");
        assert!((mean - 3.5).abs() < 1e-12);
        // Zero-valued (too-few-commits) points are excluded, and an
        // all-zero sweep yields no meter at all.
        let mut short = pt(1, 25.0);
        short.rounds_per_commit = 0.0;
        assert_eq!(mean_rounds_per_commit(&[short.clone()]), None);
        let mixed = vec![short, pt(2, 95.0)];
        assert_eq!(mean_rounds_per_commit(&mixed), Some(3.5));
    }

    #[test]
    fn rows_align_with_header() {
        let header = sweep_header();
        let row = point_row(&pt(4, 123.4), true);
        assert!(row.contains("<- knee"));
        assert!(header.contains("goodput/s"));
        assert!(header.contains("lost"));
        assert!(header.contains("dup%") && header.contains("eff%"));
        assert!(header.contains("sync") && header.contains("rec.ms"));
        assert!(header.contains("rpc"), "rounds-per-commit column: {header}");
        assert!(row.contains("3.50"), "rpc column present: {row}");
        assert!(row.contains(" 3 "), "lost column present: {row}");
        assert!(row.contains("98.9"), "efficiency column present: {row}");
        assert!(row.contains("2048"), "wal column present: {row}");
        assert!(
            header.contains("sigs") && header.contains("cacheh") && header.contains("vcpu.ms"),
            "crypto columns in header: {header}"
        );
        assert!(row.contains("640"), "sigs column present: {row}");
        assert!(row.contains("25"), "vcpu column present: {row}");
        assert!(
            header.contains("gsp.B/req") && header.contains("fwd.drop"),
            "gossip columns in header: {header}"
        );
        assert!(row.contains("1536.5"), "gossip-bytes column present: {row}");
    }

    #[test]
    fn json_output_is_well_formed() {
        let points = vec![pt(1, 50.0), pt(2, 100.0)];
        let json = sweep_json("banyan", &points);
        assert!(json.starts_with("{\"protocol\":\"banyan\",\"knee\":1,"));
        assert_eq!(json.matches("\"clients\":").count(), 2);
        assert!(json.contains("\"rounds_per_commit\":3.5000"));
        assert!(json.contains("\"lost\":3"));
        assert!(json.contains("\"retried\":7"));
        assert!(json.contains("\"duplicates\":1"));
        assert!(json.contains("\"dup_share\":0.01111"));
        assert!(json.contains("\"batch_efficiency\":0.98901"));
        assert!(json.contains("\"sync_requests\":2"));
        assert!(json.contains("\"sync_blocks\":12"));
        assert!(json.contains("\"recovery_ms\":45"));
        assert!(json.contains("\"wal_bytes\":2048"));
        assert!(json.contains("\"sigs\":640"));
        assert!(json.contains("\"batches\":32"));
        assert!(json.contains("\"cache_hits\":16"));
        assert!(json.contains("\"verify_cpu_ms\":25"));
        assert!(json.contains("\"gossip_bytes_per_req\":1536.500"));
        assert!(json.contains("\"forwards_dropped\":4"));
        assert!(json.ends_with("]}"));
        // An empty sweep has a null knee and an empty points array.
        assert_eq!(
            sweep_json("x", &[]),
            "{\"protocol\":\"x\",\"knee\":null,\"points\":[]}"
        );
    }
}
