//! **Ablation**: round-robin rotation vs. a seeded random beacon.
//!
//! The protocol specifies a random-beacon permutation per round (§3/§4);
//! the paper's evaluation swaps in round-robin "to increase predictability
//! and transparency" (§9.1, substitution R3 in DESIGN.md). On a symmetric
//! topology the choice should not matter; on the heterogeneous 19-DC
//! global network it shifts which replicas lead how often within a finite
//! run, moving the mean a little. Either way: same safety, same fast-path
//! share.
//!
//! Run: `cargo run --release -p banyan-bench --bin ablation_beacon [secs]`

use banyan_bench::runner::{header, human_bytes, row, Outcome};
use banyan_core::builder::ClusterBuilder;
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::metrics::LatencyStats;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

fn run_with_beacon(seeded: Option<u64>, topo: &Topology, payload: u64, secs: u64) -> Outcome {
    let delta = topo.max_one_way() + Duration::from_millis(10);
    let mut builder = ClusterBuilder::new(topo.n(), 6, 1)
        .unwrap()
        .delta(delta)
        .payload_size(payload);
    if let Some(seed) = seeded {
        builder = builder.seeded_beacon(seed);
    }
    let engines = builder.build_banyan();
    let mut sim = Simulation::new(
        topo.clone(),
        engines,
        FaultPlan::none(),
        SimConfig::with_seed(42),
    );
    sim.run_until(Time(Duration::from_secs(secs).as_nanos()));
    let m = sim.metrics();
    let intervals = m.block_intervals(ReplicaId(0));
    Outcome {
        latency: m.proposer_latency_stats(),
        throughput_mbps: m.throughput_bps(ReplicaId(0)) / 1e6,
        block_interval_ms: LatencyStats::from_samples(&intervals).mean_ms,
        rounds_per_commit: m.mean_commit_interval_ms(ReplicaId(0)) / delta.as_millis_f64(),
        client_latency: None,
        requests_submitted: 0,
        requests_committed: 0,
        requests_lost: 0,
        requests_pending: 0,
        requests_retried: 0,
        duplicates_suppressed: 0,
        goodput_rps: 0.0,
        fast_share: m.fast_path_share(ReplicaId(0)),
        sync_requests: 0,
        sync_blocks_served: 0,
        restart_recovery_ms: 0,
        wal_bytes: 0,
        sigs_verified: 0,
        verify_batches: 0,
        cert_cache_hits: 0,
        verify_cpu_ms: 0,
        committed_rounds: sim.auditor().committed_rounds(),
        messages: m.messages_sent,
        bytes: m.bytes_sent,
        gossip_bytes: 0,
        forwards_dropped: 0,
        safe: sim.auditor().is_safe(),
    }
}

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let payload = 400_000u64;
    let topo = Topology::nineteen_global();
    println!(
        "# Ablation — leader schedule, banyan f=6 p=1, 19 global DCs, {} blocks, {secs}s",
        human_bytes(payload)
    );
    println!("{}", header());
    let rr = run_with_beacon(None, &topo, payload, secs);
    assert!(rr.safe);
    println!("{}", row("round-robin", payload, &rr));
    for seed in [1u64, 2, 3] {
        let out = run_with_beacon(Some(seed), &topo, payload, secs);
        assert!(out.safe);
        println!("{}", row(&format!("beacon seed={seed}"), payload, &out));
    }
}
