//! **Pipeline verify-stage throughput**: real bytes over TCP loopback,
//! through the staged decode → verify pipeline, at 1/2/4 verify workers.
//!
//! Four sender threads each dial the receiver and stream pre-serialized
//! proposal frames whose payloads are genuine [`WorkloadBatch`]
//! encodings. The receiver runs the same reader threads and
//! [`VerifyStage`] worker pool that `run_replica_pipelined` deploys —
//! every frame pays the real verify cost (batch decode plus the SHA-256
//! payload-commitment walk in `Block::hash`) before a consumer thread
//! counts it off the ordered event channel. What the table reports is the
//! decode + verify stage in isolation: no consensus engine behind it.
//!
//! Run: `cargo run --release -p banyan-bench --bin pipeline_throughput -- \
//!       [--quick] [--frames N] [--batch N] \
//!       [--assert-min-mbps X] [--assert-speedup X]`
//!
//! * `--quick` shrinks the run to a CI-sized smoke test;
//! * `--frames N` sends N frames per sender (default 128; 32 quick);
//! * `--batch N` packs N requests into each frame's batch (default 512,
//!   at 256 B nominal each → 128 KiB of real payload per frame);
//! * `--assert-min-mbps X` exits nonzero unless the best worker count
//!   sustains X MB/s of frame bytes — the absolute CI floor, meaningful
//!   on any core count;
//! * `--assert-speedup X` exits nonzero unless 4 workers beat 1 worker by
//!   X× in req/s. **Opt-in**: scaling needs real cores, so this gate is
//!   for multi-core hosts, not the default CI runner.
//!
//! Speedup comes from parallel `Block::hash` recomputation across
//! workers; frames are routed `sender mod workers`, so 4 senders spread
//! evenly. On a single-core host the speedup column hovers at ~1× — the
//! staged pipeline then still buys the replica decode/verify *overlap*
//! with consensus, just not verify parallelism.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use banyan_crypto::Signature;
use banyan_mempool::{Request, WorkloadBatch};
use banyan_transport::{read_frame, Frame, PipelineConfig, VerifyStage};
use banyan_types::block::Block;
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{Message, StreamletMsg};
use banyan_types::time::Time;
use crossbeam::channel::bounded;

/// Senders (and proposer ids): mirrors the n=4 cluster the TCP tests run.
const SENDERS: usize = 4;
/// Nominal request size: pads each frame's payload to `batch × 256` B of
/// real inline bytes for the commitment walk to chew through.
const REQUEST_SIZE: u64 = 256;

struct Args {
    frames: usize,
    batch: usize,
    assert_min_mbps: Option<f64>,
    assert_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 128,
        batch: 512,
        assert_min_mbps: None,
        assert_speedup: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let mut frames_set = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                if !frames_set {
                    args.frames = 32;
                }
            }
            "--frames" => {
                args.frames = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &usize| f > 0)
                    .expect("--frames takes a positive frame count");
                frames_set = true;
            }
            "--batch" => {
                args.batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&b: &usize| b > 0)
                    .expect("--batch takes a positive request count")
            }
            "--assert-min-mbps" => {
                args.assert_min_mbps = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-min-mbps takes a number"),
                )
            }
            "--assert-speedup" => {
                args.assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-speedup takes a number"),
                )
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// One sender's wire bytes: a hello followed by a proposal frame carrying
/// a `batch`-request workload, serialized once and streamed repeatedly.
fn frame_bytes(sender: ReplicaId, batch: usize) -> (Vec<u8>, Vec<u8>) {
    let requests: Vec<Request> = (0..batch as u64)
        .map(|i| Request {
            id: (sender.0 as u64) << 32 | i,
            client: sender.0,
            size: REQUEST_SIZE,
            submitted_at: Time::ZERO,
        })
        .collect();
    let block = Block {
        round: Round(1),
        proposer: sender,
        rank: Rank(0),
        parent: BlockHash::ZERO,
        proposed_at: Time::ZERO,
        payload: WorkloadBatch { requests }.into_payload(),
        signature: Signature::zero(),
    };
    let msg = Message::Streamlet(StreamletMsg::Proposal { block });
    let mut hello = Vec::new();
    banyan_transport::write_hello(&mut hello, sender).expect("serialize hello");
    let mut frame = Vec::new();
    banyan_transport::write_msg(&mut frame, sender, &msg).expect("serialize frame");
    (hello, frame)
}

struct RunResult {
    workers: usize,
    secs: f64,
    req_s: f64,
    mb_s: f64,
}

/// Streams `SENDERS × frames` frames through the verify stage at the
/// given worker count and measures wall time from the senders' start
/// barrier to the last verified frame off the event channel.
fn run_once(workers: usize, frames: usize, batch: usize) -> RunResult {
    let expected = (SENDERS * frames) as u64;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let (event_tx, event_rx) = bounded::<(ReplicaId, Message)>(4_096);
    let config = PipelineConfig::default().with_verify_workers(workers);
    let verify = VerifyStage::spawn(&config, None, event_tx);
    let stats = verify.stats.clone();

    // Readers: the decode stage, one thread per inbound connection,
    // routing by sender id exactly as `run_replica_pipelined` does.
    let acceptor = {
        let verify_txs = verify.senders();
        let stats = stats.clone();
        thread::spawn(move || {
            let mut readers = Vec::with_capacity(SENDERS);
            for _ in 0..SENDERS {
                let (stream, _) = listener.accept().expect("accept");
                stream.set_nodelay(true).ok();
                let verify_txs = verify_txs.clone();
                let stats = stats.clone();
                readers.push(thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    assert!(
                        matches!(read_frame(&mut reader), Ok(Frame::Hello { .. })),
                        "hello first"
                    );
                    // Until EOF: the sender closes when done.
                    while let Ok(frame) = read_frame(&mut reader) {
                        if let Frame::Msg { from, msg } = frame {
                            stats
                                .decoded
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let tx = &verify_txs[from.as_usize() % verify_txs.len()];
                            if tx.send((from, msg)).is_err() {
                                return;
                            }
                        }
                    }
                }));
            }
            readers
        })
    };

    // Senders: connect + hello, then wait on the barrier so the clock
    // starts once every connection is up.
    let barrier = Arc::new(Barrier::new(SENDERS + 1));
    let mut senders = Vec::with_capacity(SENDERS);
    let mut total_bytes = 0u64;
    for s in 0..SENDERS {
        let (hello, frame) = frame_bytes(ReplicaId(s as u16), batch);
        total_bytes += frames as u64 * frame.len() as u64;
        let barrier = barrier.clone();
        senders.push(thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            stream.write_all(&hello).expect("hello");
            barrier.wait();
            for _ in 0..frames {
                stream.write_all(&frame).expect("frame");
            }
            stream.flush().expect("flush");
            // Dropping the stream closes it: the reader sees EOF.
        }));
    }

    barrier.wait();
    let start = Instant::now();
    // The consumer: count verified frames off the ordered event channel.
    for i in 0..expected {
        event_rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .unwrap_or_else(|_| panic!("frame {i}/{expected} never arrived"));
    }
    let secs = start.elapsed().as_secs_f64();

    for s in senders {
        s.join().expect("sender");
    }
    for r in acceptor.join().expect("acceptor") {
        r.join().expect("reader");
    }
    verify.shutdown();

    // Conservation: every decoded frame verified, nothing rejected.
    let s = stats.snapshot();
    assert_eq!(s.decoded, expected, "decode undercount: {s:?}");
    assert_eq!(s.verified, expected, "verify undercount: {s:?}");
    assert_eq!(s.rejected, 0, "honest frames rejected: {s:?}");

    RunResult {
        workers,
        secs,
        req_s: (expected * batch as u64) as f64 / secs,
        mb_s: total_bytes as f64 / secs / 1e6,
    }
}

fn main() {
    let args = parse_args();
    let payload_kib = (args.batch as u64 * REQUEST_SIZE) >> 10;
    println!(
        "# Pipeline verify throughput — {SENDERS} senders × {} frames over TCP loopback, \
         {} requests/frame (~{payload_kib} KiB payload each)",
        args.frames, args.batch
    );
    println!("# frame cost = batch decode + SHA-256 commitment walk (Block::hash)");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>9}",
        "workers", "secs", "req/s", "MB/s", "speedup"
    );

    let mut results: Vec<RunResult> = Vec::new();
    for workers in [1usize, 2, 4] {
        let r = run_once(workers, args.frames, args.batch);
        let speedup = r.req_s / results.first().map_or(r.req_s, |b| b.req_s);
        println!(
            "{:>8} {:>10.3} {:>12.0} {:>10.1} {:>8.2}x",
            r.workers, r.secs, r.req_s, r.mb_s, speedup
        );
        results.push(r);
    }

    let mut failed = false;
    if let Some(floor) = args.assert_min_mbps {
        let best = results.iter().map(|r| r.mb_s).fold(0.0, f64::max);
        if best < floor {
            eprintln!("FAIL: best throughput {best:.1} MB/s below the {floor:.1} MB/s floor");
            failed = true;
        }
    }
    if let Some(target) = args.assert_speedup {
        let speedup = results.last().map_or(0.0, |r| r.req_s) / results[0].req_s;
        if speedup < target {
            eprintln!(
                "FAIL: {} workers gained only {speedup:.2}x over 1 (target {target:.2}x)",
                results.last().map_or(0, |r| r.workers)
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
