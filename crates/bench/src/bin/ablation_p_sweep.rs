//! **Ablation**: the fast-path parameter `p`.
//!
//! With n = 19 fixed, several `(f, p)` trade-offs are legal
//! (`n ≥ max(3f + 2p − 1, 3f + 1)`). Larger `p` means the fast path
//! tolerates more stragglers (fires with `n − p` votes) at the cost of
//! lower Byzantine resilience `f`. §9.3 argues p = f = 4 gets within 25%
//! of the theoretical maximum because co-located stragglers drop out of
//! the fast quorum.
//!
//! Run: `cargo run --release -p banyan-bench --bin ablation_p_sweep [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;
use banyan_types::config::ProtocolConfig;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let payload = 400_000u64;
    println!("# Ablation — p sweep at n=19, 4 global datacenters, 400KB, {secs}s");
    println!("{}", header());
    // All (f, p) with p ∈ [1, f] that fit n = 19, preferring max f per p.
    let mut combos: Vec<(usize, usize)> = Vec::new();
    for p in 1..=6usize {
        let f = ProtocolConfig::max_faults(19, p);
        if f >= p && !combos.contains(&(f, p)) {
            combos.push((f, p));
        }
    }
    for (f, p) in combos {
        let label = format!("banyan f={f} p={p}");
        let scenario = Scenario::new("banyan", Topology::four_global_19(), f, p)
            .payload(payload)
            .secs(secs)
            .seed(42);
        let out = run(&scenario);
        assert!(out.safe, "safety violation in {label}");
        println!("{}", row(&label, payload, &out));
    }
    // ICC reference.
    let scenario = Scenario::new("icc", Topology::four_global_19(), 6, 1)
        .payload(payload)
        .secs(secs)
        .seed(42);
    let out = run(&scenario);
    println!("{}", row("icc f=6 (reference)", payload, &out));
}
