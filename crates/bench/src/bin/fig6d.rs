//! **Figure 6d**: effect of crash-faults on throughput and block intervals
//! for n = 19 replicas spread across 4 US datacenters.
//!
//! The paper's setup (§9.4): timeout 3 s; rotating-leader protocols lose a
//! full timeout whenever a crashed replica's turn comes. Claim: "there are
//! no penalties in trying to take the fast path — when there are failures,
//! the performance of Banyan is exactly the one of ICC."
//!
//! We crash 0, 2, 4, 6 replicas at t = 0 and report throughput and mean
//! block interval for Banyan vs ICC.
//!
//! Run: `cargo run --release -p banyan-bench --bin fig6d [secs]`

use banyan_bench::runner::{human_bytes, run, Scenario};
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::topology::Topology;
use banyan_types::time::{Duration, Time};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let payload = 400_000u64;
    println!(
        "# Figure 6d — crash faults, n=19 across 4 US datacenters, {} blocks, {secs}s, timeout 3s",
        human_bytes(payload)
    );
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>12} {:>8} {:>6}",
        "protocol", "crashed", "MB/s", "interval", "lat.mean", "rounds", "safe"
    );
    for crashed in [0usize, 2, 4, 6] {
        for (label, protocol) in [("banyan f=6 p=1", "banyan"), ("icc f=6", "icc")] {
            let faults = FaultPlan::none().crash_spread(crashed, 19, Time::ZERO);
            // The paper sets the timeout to 3 s: the notarization delay for
            // rank-1 blocks (2Δ) is what gates recovery from a crashed
            // leader, so Δ = 1.5 s.
            let scenario = Scenario::new(protocol, Topology::four_us_19(), 6, 1)
                .payload(payload)
                .secs(secs)
                .seed(42)
                .delta(Duration::from_millis(1_500))
                .faults(faults)
                .timeout(Duration::from_secs(3));
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {label}");
            println!(
                "{:<14} {:>8} {:>10.2} {:>10.0}ms {:>10.1}ms {:>8} {:>6}",
                label,
                crashed,
                out.throughput_mbps,
                out.block_interval_ms,
                out.latency.mean_ms,
                out.committed_rounds,
                if out.safe { "ok" } else { "UNSAFE" },
            );
        }
        println!();
    }
}
