//! **Saturation sweep**: closed-loop clients vs goodput and end-to-end
//! latency, for the chained (Banyan), HotStuff and Streamlet engines.
//!
//! FnF-BFT and Moonshot evaluate with a closed-loop client population —
//! N clients, each keeping a bounded window of outstanding requests and
//! resubmitting on commit — and sweep N to find the saturation knee: the
//! point past which added clients buy queueing latency, not goodput.
//! This harness reproduces that methodology on the simulated WAN. Every
//! run is a deterministic function of the seed, so the whole table
//! reproduces bit-for-bit.
//!
//! Run: `cargo run --release -p banyan-bench --bin saturation_sweep \
//!       [--quick] [secs]`
//!
//! `--quick` shrinks the sweep to a CI-sized smoke test (fewer
//! populations, short runs); `secs` overrides the per-point duration.

use banyan_bench::runner::Scenario;
use banyan_bench::sweep::{knee_index, measure, point_row, sweep_header};
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let secs: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 2 } else { 10 });
    let populations: &[u16] = if quick {
        &[1, 4, 16, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256]
    };
    let window = 4;
    let think = Duration::ZERO;
    let request_size = 512;
    let seed = 42;
    // 100 Mbit/s egress: tight enough that block serialization — not the
    // sweep's upper population bound — caps goodput, so the knee falls
    // inside the swept range.
    let topology = || Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000);

    println!(
        "# Saturation sweep — n=4 uniform 5 ms WAN at 100 Mbit/s egress, window={window}, \
         {request_size} B requests, think=0, {secs}s per point, seed={seed}"
    );
    println!("# goodput = committed requests/s; knee = first point at 90% of plateau goodput");
    println!(
        "# note: past saturation, requests batched into never-finalized proposals are lost\n\
         # (no client retry yet — see ROADMAP), which can shrink the effective population\n"
    );

    for (label, protocol) in [
        ("chained (banyan)", "banyan"),
        ("hotstuff", "hotstuff"),
        ("streamlet", "streamlet"),
    ] {
        println!("## {label}");
        println!("{}", sweep_header());
        let base = Scenario::new(protocol, topology(), 1, 1)
            .request_size(request_size)
            .secs(secs)
            .seed(seed);
        let points: Vec<_> = populations
            .iter()
            .map(|&clients| measure(&base, clients, window, think))
            .collect();
        let knee = knee_index(&points);
        for (i, p) in points.iter().enumerate() {
            println!("{}", point_row(p, knee == Some(i)));
        }
        match knee {
            Some(i) => println!(
                "saturates at ~{} clients: {:.0} req/s goodput, p50 {:.1} ms / p99 {:.1} ms\n",
                points[i].clients, points[i].goodput_rps, points[i].p50_ms, points[i].p99_ms
            ),
            None => println!("no goodput observed — sweep too short?\n"),
        }
    }
}
