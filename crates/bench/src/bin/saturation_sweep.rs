//! **Saturation sweep**: closed-loop clients vs goodput and end-to-end
//! latency, for the chained (Banyan), HotStuff and Streamlet engines.
//!
//! FnF-BFT and Moonshot evaluate with a closed-loop client population —
//! N clients, each keeping a bounded window of outstanding requests and
//! resubmitting on commit — and sweep N to find the saturation knee: the
//! point past which added clients buy queueing latency, not goodput.
//! This harness reproduces that methodology on the simulated WAN. Every
//! run is a deterministic function of the seed, so the whole table
//! reproduces bit-for-bit.
//!
//! Run: `cargo run --release -p banyan-bench --bin saturation_sweep -- \
//!       [--quick] [--json] [--gossip] [--retry-ms N] [--fanout K] \
//!       [--speculative] [--batch-min-bytes N] [--batch-age-ms N] \
//!       [--shards S] [--cohorts] [--fanout-tree F] \
//!       [--assert-no-drop] [--assert-max-dups] [--assert-gossip-bytes] [secs]`
//!
//! * `--quick` shrinks the sweep to a CI-sized smoke test;
//! * `--json` emits one machine-readable JSON object per protocol
//!   (`banyan_bench::sweep::sweep_json`) instead of the table, for the
//!   bench trajectory (`BENCH_*.json`) and CI;
//! * `--gossip`, `--retry-ms N`, `--fanout K` enable the
//!   request-dissemination layer (plus a drain phase sized to the retry
//!   period, so loss accounting settles);
//! * `--speculative` enables the ancestor-aware speculative drain
//!   (leaders skip requests a live uncommitted ancestor already carries;
//!   abandoned blocks release theirs back to the pool);
//! * `--batch-min-bytes N` / `--batch-age-ms N` install a
//!   latency-targeted batch policy (defer until N eligible bytes or an
//!   N ms old request);
//! * `--shards S` shards each replica's pending queue S ways; the
//!   arrival-stamp merge keeps every number bit-identical to `--shards 1`
//!   (the determinism suite and the CI gate pin this);
//! * `--restart` schedules two staggered crash-and-rejoin restarts
//!   (replicas 1 then 2) per point: each drops all volatile state,
//!   rebuilds from its durable snapshot, and catches up over ranged
//!   sync — the sync/served/rec.ms columns then go nonzero. Combine
//!   with `--gossip --retry-ms N --assert-no-drop` for the rolling-
//!   restart zero-loss gate;
//! * `--optimistic` enables Moonshot-style optimistic proposal
//!   pipelining for the chained rows (the round-`r + 1` leader proposes
//!   on the received-but-uncertified round-`r` block): the banyan row
//!   switches it on, and an extra `chained (icc)` row — the slow-path
//!   chained engine, where the overlap pays at every load — is swept
//!   with and without the flag so the two columns sit side by side;
//! * `--assert-no-drop` exits nonzero if any past-knee point falls below
//!   90% of the plateau goodput or, with retry/gossip on, loses requests
//!   — the CI regression gate for the dissemination layer;
//! * `--assert-max-dups` exits nonzero if a protocol's duplicate
//!   inclusions exceed 1% of its committed requests — the CI regression
//!   gate for the speculative drain (run it with `--gossip`, where blind
//!   drains duplicate most);
//! * `--assert-rpc` (requires `--optimistic`) exits nonzero unless the
//!   icc row's rounds-per-commit with optimism on is strictly below its
//!   flag-off baseline *and* its knee p50 latency does not regress — the
//!   CI gate for the pipelining win itself;
//! * `--crypto` switches the harness to the **measured-crypto sweep**:
//!   the banyan engine is swept at n=4 in all three [`CryptoMode`]s
//!   (off / unbatched / batched — the sigs/batches/cacheh/vcpu.ms
//!   columns go live), then the batched configuration is scaled over a
//!   geo-distributed cluster of n ∈ {4, 8, 16, 32, 64} replicas cycled
//!   through the real AWS region catalog;
//! * `--assert-crypto` (requires `--crypto`) exits nonzero unless the
//!   batched knee goodput stays within 1.5× of crypto-off *and* strictly
//!   beats unbatched, the batched run actually batched and hit its cert
//!   cache, and (with retry/gossip on) no point lost a request — the CI
//!   gate that keeps crypto-on the viable measured configuration;
//! * `--cohorts` sweeps **cohort-aggregated modeled populations** (10³ up
//!   to 10⁶ modeled clients folded into 64 cohorts, token-paced, with a
//!   global admission cap) instead of real closed-loop clients — memory
//!   stays `O(cohorts)` regardless of the modeled population;
//! * `--fanout-tree F` switches gossip to **propagation-limited** mode:
//!   pushes travel a degree-`F` tree (ring successor + lowest-delay
//!   peers) through bounded per-peer queues with credit backpressure,
//!   relays going out as compact announce records (implies `--gossip`);
//! * `--assert-gossip-bytes` (requires `--fanout-tree`) exits nonzero
//!   unless an n=8 comparison shows tree gossip bytes/request at most
//!   50% of broadcast gossip with zero request loss, and — with
//!   `--cohorts` — every protocol's saturation knee sits at ≥ 10⁵
//!   modeled clients;
//! * `secs` overrides the per-point measured duration.
//!
//! Without dissemination flags the sweep reproduces the historical
//! single-pool, no-retry figures bit-for-bit — past the knee, requests
//! batched into never-finalized proposals are lost and goodput *drops* as
//! the effective closed-loop population shrinks. With `--gossip` and
//! `--retry-ms`, lost requests re-enter the system and goodput holds its
//! plateau.

use banyan_bench::runner::{CryptoMode, Scenario};
use banyan_bench::sweep::{
    knee_index, knee_p50_ms, mean_rounds_per_commit, measure, measure_cohorts, point_row,
    sweep_header, sweep_json, SweepPoint,
};
use banyan_simnet::topology::Topology;
use banyan_simnet::AWS_REGIONS;
use banyan_types::time::Duration;

struct Args {
    quick: bool,
    json: bool,
    gossip: bool,
    retry_ms: Option<u64>,
    fanout: usize,
    speculative: bool,
    batch_min_bytes: Option<u64>,
    batch_age_ms: Option<u64>,
    shards: usize,
    restart: bool,
    optimistic: bool,
    crypto: bool,
    cohorts: bool,
    fanout_tree: usize,
    assert_no_drop: bool,
    assert_max_dups: bool,
    assert_rpc: bool,
    assert_crypto: bool,
    assert_gossip_bytes: bool,
    secs: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        json: false,
        gossip: false,
        retry_ms: None,
        fanout: 1,
        speculative: false,
        batch_min_bytes: None,
        batch_age_ms: None,
        shards: 1,
        restart: false,
        optimistic: false,
        crypto: false,
        cohorts: false,
        fanout_tree: 0,
        assert_no_drop: false,
        assert_max_dups: false,
        assert_rpc: false,
        assert_crypto: false,
        assert_gossip_bytes: false,
        secs: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--json" => args.json = true,
            "--gossip" => args.gossip = true,
            "--speculative" => args.speculative = true,
            "--restart" => args.restart = true,
            "--optimistic" => args.optimistic = true,
            "--crypto" => args.crypto = true,
            "--cohorts" => args.cohorts = true,
            "--assert-no-drop" => args.assert_no_drop = true,
            "--assert-max-dups" => args.assert_max_dups = true,
            "--assert-rpc" => args.assert_rpc = true,
            "--assert-crypto" => args.assert_crypto = true,
            "--assert-gossip-bytes" => args.assert_gossip_bytes = true,
            "--fanout-tree" => {
                args.fanout_tree = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &usize| f > 0)
                    .expect("--fanout-tree takes a positive tree degree")
            }
            "--retry-ms" => {
                args.retry_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--retry-ms takes a millisecond count"),
                )
            }
            "--fanout" => {
                args.fanout = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fanout takes a replica count")
            }
            "--batch-min-bytes" => {
                args.batch_min_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--batch-min-bytes takes a byte count"),
                )
            }
            "--batch-age-ms" => {
                args.batch_age_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--batch-age-ms takes a millisecond count"),
                )
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .expect("--shards takes a positive shard count")
            }
            other => match other.parse() {
                Ok(v) => args.secs = Some(v),
                Err(_) => panic!("unknown argument {other:?}"),
            },
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // An age target without a byte target would be a silent no-op
    // (min_bytes = 0 never defers): surface the mistake instead.
    assert!(
        args.batch_age_ms.is_none() || args.batch_min_bytes.is_some(),
        "--batch-age-ms requires --batch-min-bytes (a zero byte target never defers)"
    );
    assert!(
        !args.assert_rpc || args.optimistic,
        "--assert-rpc compares against the optimistic rows; pass --optimistic too"
    );
    assert!(
        !args.assert_crypto || args.crypto,
        "--assert-crypto gates the crypto sweep; pass --crypto too"
    );
    assert!(
        !args.assert_gossip_bytes || args.fanout_tree > 0,
        "--assert-gossip-bytes compares the fanout tree against broadcast; pass --fanout-tree too"
    );
    if args.crypto {
        crypto_sweep(&args);
        return;
    }
    let batch_policy = args
        .batch_min_bytes
        .map(|min| (min, Duration::from_millis(args.batch_age_ms.unwrap_or(50))));
    let secs: u64 = args.secs.unwrap_or(if args.quick { 2 } else { 10 });
    let populations: &[u16] = if args.quick {
        &[1, 4, 16, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256]
    };
    // Modeled populations for `--cohorts`: each point folds the whole
    // population into COHORT_COUNT token-paced cohorts, so sweeping to a
    // million clients costs the same workload memory as sweeping to one.
    let cohort_populations: &[u64] = if args.quick {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000, 300_000, 1_000_000]
    };
    const COHORT_COUNT: u16 = 64;
    // Well above the sweep's bandwidth-delay product (~130 requests at
    // the plateau) but small enough that an overloaded point cannot
    // drain huge batches into every proposal until serialization blows
    // the protocol timeout. 256 = the closed-loop quick sweep's top
    // point (64 clients × window 4), a known-sustainable pool depth.
    const MAX_OUTSTANDING: u64 = 256;
    // One request per modeled member per 25 s: 10⁵ clients offer ~4k req/s
    // (around the n=4 plateau) and 10⁶ offer ~40k (far past it), so the
    // knee lands inside the modeled range instead of at the first point.
    const MEMBER_INTERVAL_SECS: u64 = 25;
    let window = 4;
    let think = Duration::ZERO;
    let request_size = 512;
    let seed = 42;
    let disseminating =
        args.gossip || args.retry_ms.is_some() || args.fanout > 1 || args.fanout_tree > 0;
    // Drain long enough for a few retry rounds (or a few consensus
    // rounds, when only gossip/fanout is on) to settle loss accounting.
    let drain_secs = if disseminating {
        (3 * args.retry_ms.unwrap_or(500)).div_ceil(1_000).max(2)
    } else {
        0
    };
    // 100 Mbit/s egress: tight enough that block serialization — not the
    // sweep's upper population bound — caps goodput, so the knee falls
    // inside the swept range.
    let topology = || Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000);

    if !args.json {
        println!(
            "# Saturation sweep — n=4 uniform 5 ms WAN at 100 Mbit/s egress, window={window}, \
             {request_size} B requests, think=0, {secs}s per point, seed={seed}"
        );
        println!("# goodput = committed requests/s; knee = first point at 90% of plateau goodput");
        match (args.gossip, args.retry_ms) {
            (false, None) if args.fanout == 1 && args.fanout_tree == 0 => println!(
                "# dissemination off: past saturation, requests batched into never-finalized\n\
                 # proposals are lost (lost column) and the effective population shrinks\n"
            ),
            _ => println!(
                "# dissemination on (gossip={}, retry={:?} ms, fanout={}, fanout_tree={}, \
                 speculative={}, batch_policy={}), drain={drain_secs}s: lost must be 0\n",
                args.gossip,
                args.retry_ms,
                args.fanout,
                args.fanout_tree,
                args.speculative,
                match batch_policy {
                    Some((min, age)) => format!("{min}B/{}ms", age.as_millis_f64()),
                    None => "eager".to_string(),
                }
            ),
        }
        if args.cohorts {
            println!(
                "# cohort workload: modeled clients folded into {COHORT_COUNT} cohorts, one \
                 request per member per {MEMBER_INTERVAL_SECS}s, admission cap {MAX_OUTSTANDING}\n"
            );
        }
    }

    // (label, protocol, optimistic). With --optimistic the chained rows
    // pipeline, and the icc engine — where the proposal/certification
    // overlap pays at every load — is swept both ways so the comparison
    // (and the --assert-rpc gate) reads straight off the table.
    let rows: Vec<(&str, &str, bool)> = if args.optimistic {
        vec![
            ("chained (icc)", "icc", false),
            ("chained (icc, optimistic)", "icc", true),
            ("chained (banyan, optimistic)", "banyan", true),
            ("hotstuff", "hotstuff", false),
            ("streamlet", "streamlet", false),
        ]
    } else {
        vec![
            ("chained (banyan)", "banyan", false),
            ("hotstuff", "hotstuff", false),
            ("streamlet", "streamlet", false),
        ]
    };
    let mut failures: Vec<String> = Vec::new();
    let mut icc_pair: [Option<Vec<SweepPoint>>; 2] = [None, None];
    for (label, protocol, optimistic) in rows {
        let mut base = Scenario::new(protocol, topology(), 1, 1)
            .request_size(request_size)
            .secs(secs)
            .seed(seed)
            .drain(drain_secs)
            .fanout(args.fanout)
            .shards(args.shards);
        if args.gossip {
            base = base.gossip();
        }
        if args.fanout_tree > 0 {
            base = base.fanout_tree(args.fanout_tree);
        }
        if let Some(ms) = args.retry_ms {
            base = base.retry_timeout(Duration::from_millis(ms));
        }
        if args.speculative {
            base = base.speculative_drain();
        }
        if let Some((min_bytes, max_age)) = batch_policy {
            base = base.batch_policy(min_bytes, max_age);
        }
        if optimistic {
            base = base.optimistic();
        }
        if args.restart {
            // Two staggered rolling restarts inside the measured window:
            // replica 1 is down for the second quarter, replica 2 for the
            // third, so the cluster always keeps n − f live replicas.
            let q = Duration::from_millis(secs * 250);
            base = base.restart(1, q, q.saturating_mul(2)).restart(
                2,
                q.saturating_mul(2),
                q.saturating_mul(3),
            );
        }
        let points: Vec<SweepPoint> = if args.cohorts {
            let cohort_base = base
                .clone()
                .member_interval(Duration::from_secs(MEMBER_INTERVAL_SECS))
                .max_outstanding(MAX_OUTSTANDING);
            cohort_populations
                .iter()
                .map(|&modeled| measure_cohorts(&cohort_base, modeled, COHORT_COUNT, window, think))
                .collect()
        } else {
            populations
                .iter()
                .map(|&clients| measure(&base, clients, window, think))
                .collect()
        };
        let knee = knee_index(&points);
        if protocol == "icc" {
            icc_pair[usize::from(optimistic)] = Some(points.clone());
        }

        if args.json {
            let tag = if optimistic {
                format!("{protocol}+optimistic")
            } else {
                protocol.to_string()
            };
            println!("{}", sweep_json(&tag, &points));
        } else {
            println!("## {label}");
            println!("{}", sweep_header());
            for (i, p) in points.iter().enumerate() {
                println!("{}", point_row(p, knee == Some(i)));
            }
            match knee {
                Some(i) => println!(
                    "saturates at ~{} clients: {:.0} req/s goodput, p50 {:.1} ms / p99 {:.1} ms\n",
                    points[i].clients, points[i].goodput_rps, points[i].p50_ms, points[i].p99_ms
                ),
                None => println!("no goodput observed — sweep too short?\n"),
            }
        }

        if args.assert_no_drop {
            check_no_drop(label, &points, knee, disseminating, &mut failures);
        }
        if args.assert_max_dups {
            check_max_dups(label, &points, &mut failures);
        }
        if args.assert_gossip_bytes && args.cohorts {
            match knee {
                Some(i) if points[i].clients >= 100_000 => {}
                Some(i) => failures.push(format!(
                    "{label}: saturation knee at {} modeled clients — below the 1e5 floor",
                    points[i].clients
                )),
                None => failures.push(format!("{label}: sweep committed nothing")),
            }
        }
    }

    if args.assert_rpc {
        check_rpc(&icc_pair, &mut failures);
    }
    if args.assert_gossip_bytes {
        check_gossip_bytes(&args, secs, &mut failures);
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// The measured-crypto sweep (`--crypto`): banyan at n=4 in all three
/// crypto modes, then the batched configuration scaled over
/// geo-distributed clusters of 4…64 replicas cycled through the AWS
/// region catalog. Every run charges the calibrated per-verify CPU cost
/// in virtual time, so the goodput deltas between the modes *are* the
/// crypto bill.
fn crypto_sweep(args: &Args) {
    let secs: u64 = args.secs.unwrap_or(if args.quick { 2 } else { 8 });
    let populations: &[u16] = if args.quick {
        &[4, 16, 64]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let window = 4;
    let think = Duration::ZERO;
    let request_size = 512;
    let seed = 42;
    let disseminating = args.gossip || args.retry_ms.is_some() || args.fanout > 1;
    let drain_secs = if disseminating {
        (3 * args.retry_ms.unwrap_or(500)).div_ceil(1_000).max(2)
    } else {
        0
    };
    let batch_policy = args
        .batch_min_bytes
        .map(|min| (min, Duration::from_millis(args.batch_age_ms.unwrap_or(50))));
    // The default 1 Gbit/s egress: crypto CPU, not serialization, should
    // be the contended resource this sweep measures.
    let apply = |mut base: Scenario| {
        base = base
            .request_size(request_size)
            .secs(secs)
            .seed(seed)
            .drain(drain_secs)
            .fanout(args.fanout)
            .shards(args.shards);
        if args.gossip {
            base = base.gossip();
        }
        if args.fanout_tree > 0 {
            base = base.fanout_tree(args.fanout_tree);
        }
        if let Some(ms) = args.retry_ms {
            base = base.retry_timeout(Duration::from_millis(ms));
        }
        if args.speculative {
            base = base.speculative_drain();
        }
        if let Some((min_bytes, max_age)) = batch_policy {
            base = base.batch_policy(min_bytes, max_age);
        }
        base
    };

    if !args.json {
        println!(
            "# Measured-crypto sweep — banyan, window={window}, {request_size} B requests, \
             think=0, {secs}s per point, seed={seed}"
        );
        println!(
            "# modes: off = placeholder hashes, free; unbatched = toy Schnorr, one equation per \
             signature; batched = RLC vote batching + compact certs + verdict cache\n\
             # vcpu.ms charges an Ed25519-class cost model (40 µs/sig, 15 µs + 20 µs/sig batched)\n"
        );
    }

    let mut failures: Vec<String> = Vec::new();
    let mut knees: [Option<SweepPoint>; 3] = [None, None, None];
    let mut all_points: Vec<Vec<SweepPoint>> = Vec::new();
    let modes = [CryptoMode::Off, CryptoMode::Unbatched, CryptoMode::Batched];
    for (i, &mode) in modes.iter().enumerate() {
        let base = apply(
            Scenario::new(
                "banyan",
                Topology::uniform(4, Duration::from_millis(5)),
                1,
                1,
            )
            .crypto(mode),
        );
        let points: Vec<SweepPoint> = populations
            .iter()
            .map(|&clients| measure(&base, clients, window, think))
            .collect();
        let knee = knee_index(&points);
        knees[i] = knee.map(|k| points[k].clone());
        if args.json {
            println!(
                "{}",
                sweep_json(&format!("banyan+crypto-{}", mode.label()), &points)
            );
        } else {
            println!("## banyan, crypto {} (n=4)", mode.label());
            println!("{}", sweep_header());
            for (j, p) in points.iter().enumerate() {
                println!("{}", point_row(p, knee == Some(j)));
            }
            println!();
        }
        all_points.push(points);
    }

    // Geo scale: the batched (measured) configuration over clusters spread
    // across the real AWS regions, one saturating population per size.
    let sizes: &[usize] = if args.quick {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };
    if !args.json {
        println!("## banyan, crypto batched — geo scale (AWS regions, f = ⌊(n−1)/3⌋)");
        println!("{:>4} {}", "n", sweep_header());
    }
    for &n in sizes {
        let sites: Vec<_> = (0..n).map(|i| AWS_REGIONS[i % AWS_REGIONS.len()]).collect();
        let f = (n - 1) / 3;
        let base = apply(
            Scenario::new("banyan", Topology::from_sites(&sites), f, 1).crypto(CryptoMode::Batched),
        );
        let p = measure(&base, 32, window, think);
        if args.json {
            println!(
                "{}",
                sweep_json(
                    &format!("banyan+crypto-batched-n{n}"),
                    std::slice::from_ref(&p)
                )
            );
        } else {
            println!("{:>4} {}", n, point_row(&p, false));
        }
        if p.committed == 0 {
            failures.push(format!("geo n={n}: nothing committed"));
        }
        if disseminating && p.lost > 0 {
            failures.push(format!(
                "geo n={n}: {} request(s) lost despite retry/gossip",
                p.lost
            ));
        }
        if p.sigs == 0 || p.batches == 0 {
            failures.push(format!(
                "geo n={n}: crypto plane idle (sigs={} batches={})",
                p.sigs, p.batches
            ));
        }
    }
    if !args.json {
        println!();
    }

    if args.assert_crypto {
        check_crypto(&knees, &all_points, disseminating, &mut failures);
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// The crypto-viability gate (`--assert-crypto`): at the n=4 knee,
/// turning full crypto on may cost at most 1.5× in goodput against the
/// free placeholder scheme, batching must strictly beat the unbatched
/// configuration it optimizes, and the batched run must show real
/// batches and cert-cache hits (otherwise the mode silently degraded to
/// per-signature checking and the comparison is vacuous). With
/// retry/gossip on, no point may lose a request.
fn check_crypto(
    knees: &[Option<SweepPoint>; 3],
    all_points: &[Vec<SweepPoint>],
    disseminating: bool,
    failures: &mut Vec<String>,
) {
    let [off, unbatched, batched] = knees;
    match (off, batched) {
        (Some(o), Some(b)) if b.goodput_rps * 1.5 >= o.goodput_rps => {}
        (o, b) => failures.push(format!(
            "crypto-on knee goodput worse than 1.5x off (batched={:?} off={:?} req/s)",
            b.as_ref().map(|p| p.goodput_rps),
            o.as_ref().map(|p| p.goodput_rps),
        )),
    }
    match (unbatched, batched) {
        (Some(u), Some(b)) if b.goodput_rps > u.goodput_rps => {}
        (u, b) => failures.push(format!(
            "batched knee goodput not strictly above unbatched (batched={:?} unbatched={:?} req/s)",
            b.as_ref().map(|p| p.goodput_rps),
            u.as_ref().map(|p| p.goodput_rps),
        )),
    }
    if let Some(b) = batched {
        if b.sigs == 0 || b.batches == 0 || b.cache_hits == 0 {
            failures.push(format!(
                "batched knee shows an idle crypto plane (sigs={} batches={} cache_hits={})",
                b.sigs, b.batches, b.cache_hits
            ));
        }
    }
    if let Some(u) = unbatched {
        if u.batches != 0 || u.cache_hits != 0 {
            failures.push(format!(
                "unbatched mode batched or cached anyway (batches={} cache_hits={})",
                u.batches, u.cache_hits
            ));
        }
    }
    if disseminating {
        for (mode, points) in ["off", "unbatched", "batched"].iter().zip(all_points) {
            for p in points {
                if p.lost > 0 {
                    failures.push(format!(
                        "crypto {mode}: {} request(s) lost at {} clients despite retry/gossip",
                        p.lost, p.clients
                    ));
                }
            }
        }
    }
}

/// The optimistic-pipelining gate: comparing the icc sweeps with and
/// without the flag, pipelining must strictly shorten the mean
/// rounds-per-commit and must not regress commit latency at the knee.
fn check_rpc(icc_pair: &[Option<Vec<SweepPoint>>; 2], failures: &mut Vec<String>) {
    let (Some(off), Some(on)) = (&icc_pair[0], &icc_pair[1]) else {
        failures.push("--assert-rpc: missing an icc sweep to compare".to_string());
        return;
    };
    match (mean_rounds_per_commit(off), mean_rounds_per_commit(on)) {
        (Some(base), Some(opt)) if opt < base => {}
        (base, opt) => failures.push(format!(
            "icc: optimistic rounds-per-commit not strictly below baseline (on={opt:?} off={base:?})"
        )),
    }
    match (knee_p50_ms(off), knee_p50_ms(on)) {
        (Some(base), Some(opt)) if opt <= base => {}
        (base, opt) => failures.push(format!(
            "icc: optimistic knee p50 regressed (on={opt:?} off={base:?} ms)"
        )),
    }
}

/// The speculative-drain regression gate: across the whole sweep, a
/// protocol's duplicate inclusions must stay within 1% of its committed
/// requests. Blind drains under gossip blow far past this for protocols
/// with commit lag (HotStuff/Streamlet); the ancestor-aware drain holds
/// it near zero.
fn check_max_dups(protocol: &str, points: &[SweepPoint], failures: &mut Vec<String>) {
    let committed: u64 = points.iter().map(|p| p.committed).sum();
    let duplicates: u64 = points.iter().map(|p| p.duplicates).sum();
    if committed == 0 {
        failures.push(format!("{protocol}: sweep committed nothing"));
        return;
    }
    if duplicates as f64 > 0.01 * committed as f64 {
        failures.push(format!(
            "{protocol}: {duplicates} duplicate inclusions exceed 1% of {committed} committed"
        ));
    }
}

/// The propagation-limited gossip gate (`--assert-gossip-bytes`): on an
/// n=8 cluster, routing pushes down a degree-F fanout tree (relays as
/// compact announce records) must cost at most half the gossip bytes per
/// request of full broadcast, and neither configuration may lose a
/// request — bounded fanout trades bytes for hops, not for durability.
fn check_gossip_bytes(args: &Args, secs: u64, failures: &mut Vec<String>) {
    let mk = |tree: usize| {
        let mut base = Scenario::new(
            "banyan",
            Topology::uniform(8, Duration::from_millis(5)).with_egress_bps(100_000_000),
            2,
            1,
        )
        .request_size(512)
        .secs(secs)
        .seed(42)
        .drain(2)
        .gossip()
        .retry_timeout(Duration::from_millis(250));
        if tree > 0 {
            base = base.fanout_tree(tree);
        }
        base
    };
    let broadcast = measure(&mk(0), 32, 4, Duration::ZERO);
    let tree = measure(&mk(args.fanout_tree), 32, 4, Duration::ZERO);
    if !args.json {
        println!(
            "## gossip bytes gate — banyan n=8, 32 clients: broadcast {:.1} B/req vs \
             fanout-tree({}) {:.1} B/req\n",
            broadcast.gossip_bytes_per_req, args.fanout_tree, tree.gossip_bytes_per_req
        );
    }
    if broadcast.gossip_bytes_per_req <= 0.0 || broadcast.committed == 0 || tree.committed == 0 {
        failures.push(format!(
            "gossip-bytes gate vacuous (broadcast {:.1} B/req, {} committed; tree {} committed)",
            broadcast.gossip_bytes_per_req, broadcast.committed, tree.committed
        ));
        return;
    }
    if tree.gossip_bytes_per_req > 0.5 * broadcast.gossip_bytes_per_req {
        failures.push(format!(
            "fanout tree spends {:.1} gossip B/req — more than 50% of broadcast's {:.1}",
            tree.gossip_bytes_per_req, broadcast.gossip_bytes_per_req
        ));
    }
    for (label, p) in [("broadcast", &broadcast), ("fanout-tree", &tree)] {
        if p.lost > 0 {
            failures.push(format!(
                "gossip-bytes gate: {} request(s) lost under {label}",
                p.lost
            ));
        }
    }
}

/// The dissemination regression gate: past the knee, goodput must hold
/// (≥ 90% of the plateau — the same fraction that defines the knee), and
/// with retry/gossip enabled no request may be lost after the drain.
fn check_no_drop(
    protocol: &str,
    points: &[SweepPoint],
    knee: Option<usize>,
    disseminating: bool,
    failures: &mut Vec<String>,
) {
    let Some(knee) = knee else {
        failures.push(format!("{protocol}: sweep committed nothing"));
        return;
    };
    let plateau = points.iter().map(|p| p.goodput_rps).fold(0.0, f64::max);
    for p in &points[knee..] {
        if p.goodput_rps < 0.9 * plateau {
            failures.push(format!(
                "{protocol}: goodput drops past the knee ({:.1} < 90% of {:.1} req/s at {} clients)",
                p.goodput_rps, plateau, p.clients
            ));
        }
        if disseminating && p.lost > 0 {
            failures.push(format!(
                "{protocol}: {} request(s) lost at {} clients despite retry/gossip",
                p.lost, p.clients
            ));
        }
    }
}
