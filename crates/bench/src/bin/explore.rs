//! `explore`: run any protocol on any testbed with custom parameters.
//!
//! ```sh
//! cargo run --release -p banyan-bench --bin explore -- \
//!     --protocol banyan --topology four_global_19 --f 6 --p 1 \
//!     --payload 400000 --secs 60 --seed 42 --crashes 2
//! ```
//!
//! Flags (all optional):
//! * `--protocol`  banyan | icc | hotstuff | streamlet   (default banyan)
//! * `--topology`  four_global_19 | four_global_4 | four_us_19 |
//!   nineteen_global | `uniform:<n>:<one-way-ms>`        (default four_global_4)
//! * `--f`, `--p`  fault bound and fast-path parameter   (default 1, 1)
//! * `--payload`   block size in bytes                   (default 100000)
//! * `--secs`      simulated seconds                     (default 30)
//! * `--seed`      simulation seed                       (default 42)
//! * `--crashes`   crash this many replicas (spread) at t=0
//! * `--delta-ms`  override Δ in milliseconds
//! * `--no-forwarding`, `--piggyback`                    feature toggles

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::topology::Topology;
use banyan_types::time::{Duration, Time};

fn parse_topology(spec: &str) -> Topology {
    match spec {
        "four_global_19" => Topology::four_global_19(),
        "four_global_4" => Topology::four_global_4(),
        "four_us_19" => Topology::four_us_19(),
        "nineteen_global" => Topology::nineteen_global(),
        other => {
            if let Some(rest) = other.strip_prefix("uniform:") {
                let mut it = rest.split(':');
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("uniform:<n>:<ms>");
                let ms: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("uniform:<n>:<ms>");
                Topology::uniform(n, Duration::from_millis(ms))
            } else {
                panic!("unknown topology {other:?}");
            }
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let protocol = flag_value(&args, "--protocol").unwrap_or_else(|| "banyan".into());
    let topology =
        parse_topology(&flag_value(&args, "--topology").unwrap_or_else(|| "four_global_4".into()));
    let f: usize = flag_value(&args, "--f")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let p: usize = flag_value(&args, "--p")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let payload: u64 = flag_value(&args, "--payload")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let secs: u64 = flag_value(&args, "--secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let crashes: usize = flag_value(&args, "--crashes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let n = topology.n();
    let mut scenario = Scenario::new(&protocol, topology, f, p)
        .payload(payload)
        .secs(secs)
        .seed(seed)
        .forwarding(!args.iter().any(|a| a == "--no-forwarding"))
        .piggyback(args.iter().any(|a| a == "--piggyback"));
    if let Some(ms) = flag_value(&args, "--delta-ms").and_then(|s| s.parse::<u64>().ok()) {
        scenario = scenario.delta(Duration::from_millis(ms));
    }
    if crashes > 0 {
        scenario = scenario.faults(FaultPlan::none().crash_spread(crashes, n, Time::ZERO));
    }

    println!(
        "# explore — {protocol} on n={n} (f={f}, p={p}), {payload}B blocks, {secs}s, seed {seed}, {crashes} crashed"
    );
    println!("{}", header());
    let out = run(&scenario);
    println!("{}", row(&protocol, payload, &out));
    println!(
        "\nblock interval {:.0} ms · {} msgs · {:.1} MB on the wire · latency p99 {:.1} ms",
        out.block_interval_ms,
        out.messages,
        out.bytes as f64 / 1e6,
        out.latency.p99_ms,
    );
    if !out.safe {
        eprintln!("SAFETY VIOLATION DETECTED — this is a bug, please report it");
        std::process::exit(1);
    }
}
