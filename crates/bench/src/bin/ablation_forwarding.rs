//! **Ablation**: tip forwarding on/off.
//!
//! §9.1 of the paper: "by forwarding blocks that extend the tip of the
//! chain, we drastically improve the performance of all algorithms
//! implemented with Bamboo". This harness quantifies that choice for
//! Banyan and ICC on the n = 19 global testbed.
//!
//! Run: `cargo run --release -p banyan-bench --bin ablation_forwarding [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("# Ablation — tip forwarding, n=19 across 4 global datacenters, 400KB, {secs}s");
    println!("{}", header());
    for (protocol, f, p) in [("banyan", 6usize, 1usize), ("icc", 6, 1)] {
        for forwarding in [true, false] {
            let label = format!("{protocol} fwd={}", if forwarding { "on" } else { "off" });
            let scenario = Scenario::new(protocol, Topology::four_global_19(), f, p)
                .payload(400_000)
                .secs(secs)
                .seed(42)
                .forwarding(forwarding);
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {label}");
            println!("{}", row(&label, 400_000, &out));
        }
        println!();
    }
}
