//! **Ablation**: the Remark 7.8 fast-vote piggyback.
//!
//! "It is possible to omit sending a corresponding notarization vote when
//! a fast vote is sent. A notarization then consists of two
//! multi-signatures." This saves one 64-byte signature per replica per
//! round in the happy path; this harness quantifies the byte savings and
//! confirms latency is untouched.
//!
//! Run: `cargo run --release -p banyan-bench --bin ablation_piggyback [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("# Ablation — Remark 7.8 fast-vote piggyback, banyan f=6 p=1, {secs}s");
    println!("{}", header());
    for (topo_label, topo, payload) in [
        ("4 global DCs n=19", Topology::four_global_19(), 400_000u64),
        ("19 global DCs", Topology::nineteen_global(), 400_000),
    ] {
        let mut bytes = Vec::new();
        for piggyback in [false, true] {
            let label = format!("piggyback={}", if piggyback { "on" } else { "off" });
            let scenario = Scenario::new("banyan", topo.clone(), 6, 1)
                .payload(payload)
                .secs(secs)
                .seed(42)
                .piggyback(piggyback);
            let out = run(&scenario);
            assert!(out.safe, "safety violation with piggyback={piggyback}");
            println!("{}", row(&format!("{topo_label} {label}"), payload, &out));
            bytes.push((out.bytes, out.messages));
        }
        let saved = bytes[0].0 as f64 - bytes[1].0 as f64;
        println!(
            "  -> bytes saved: {:.2} MB ({:.2}%), messages: {} -> {}\n",
            saved / 1e6,
            saved / bytes[0].0 as f64 * 100.0,
            bytes[0].1,
            bytes[1].1
        );
    }
}
