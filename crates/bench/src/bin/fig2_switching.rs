//! **Figure 2**: integrated vs. sequential fast paths.
//!
//! Bosco/Zelma/CoD-style designs run the fast path *first* and fall back
//! to the slow path only after it fails (a timeout or an explicit abort),
//! paying a switching cost. SBFT runs both but its fast path has an extra
//! step. Banyan integrates the two: when the fast path cannot fire, the
//! slow path has **already** been running — zero switching cost.
//!
//! We emulate the comparison by making the fast path ineffective (crash
//! `p + 1` replicas so `n − p` fast votes can never assemble) and
//! measuring Banyan's finalization latency against (a) ICC (the pure slow
//! path — Banyan should match it exactly) and (b) a hypothetical
//! sequential-fallback design whose latency is `fast-path timeout + slow
//! path` (computed analytically, as the paper's Fig. 2 does graphically).
//!
//! Run: `cargo run --release -p banyan-bench --bin fig2_switching`

use banyan_bench::runner::{run, Scenario};
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::topology::Topology;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

fn main() {
    let one_way = 50u64;
    let delta_ms = one_way * 3 / 2;
    // n = 5 with f = 1, p = 1: crashing 2 non-leader replicas leaves
    // n − crashed = 3 < n − p = 4 fast votes → the fast path never fires,
    // but the slow-path quorum ⌈(n+f+1)/2⌉ = 4... also too large. Use
    // crashed = p = 1 < f + 1: fast path needs n − p = 4 of the 4 live
    // replicas including every straggler; with one crash it *cannot* fire
    // while the slow quorum of 4 still assembles... n = 5, crash 1:
    // live = 4 = slow quorum exactly. Fast quorum n − p = 4 is also
    // reachable! So crash 2 and use f = 1? Then slow quorum 4 > 3 live.
    // The clean construction: n = 7, f = 2, p = 1 (min n = 7). Fast
    // quorum 6; slow quorum ⌈(7+2+1)/2⌉ = 5. Crash 2 → 5 live: slow path
    // works, fast path (needs 6) never fires.
    let crashed = 2usize;
    let topo = Topology::uniform(7, Duration::from_millis(one_way));
    println!("# Figure 2 — switching cost when the fast path is ineffective");
    println!("# n=7, f=2, p=1; {crashed} replicas crashed ⇒ fast path can never fire");
    println!();

    let mut results = Vec::new();
    for (label, protocol) in [
        ("banyan (integrated)", "banyan"),
        ("icc (pure slow path)", "icc"),
    ] {
        let faults = FaultPlan::none()
            .crash(ReplicaId(5), Time::ZERO)
            .crash(ReplicaId(6), Time::ZERO);
        let scenario = Scenario::new(protocol, topo.clone(), 2, 1)
            .payload(1_000)
            .delta(Duration::from_millis(delta_ms))
            .secs(30)
            .seed(42)
            .faults(faults);
        let out = run(&scenario);
        assert!(out.safe, "safety violation in {label}");
        assert!(out.fast_share < 1e-9, "{label}: fast path must never fire");
        println!(
            "{:<22} lat.mean {:>7.1}ms  lat.p50 {:>7.1}ms  rounds {:>4}",
            label, out.latency.mean_ms, out.latency.p50_ms, out.committed_rounds
        );
        results.push(out.latency.mean_ms);
    }

    // The sequential-fallback strawman: wait a fast-path timeout (the
    // conservative 2Δ a deployment must allow for the fast round), then
    // run the slow path.
    let slow = results[1];
    let strawman = 2.0 * delta_ms as f64 + slow;
    println!(
        "{:<22} lat.mean {strawman:>7.1}ms  (analytic: 2Δ timeout + slow path)",
        "sequential fallback"
    );
    println!();
    let overhead = (results[0] - results[1]) / results[1] * 100.0;
    println!(
        "banyan overhead over pure slow path when fast path is dead: {overhead:+.1}% (paper: none)"
    );
    println!(
        "sequential-fallback penalty: {:+.1}%",
        (strawman - slow) / slow * 100.0
    );
}
