//! **Table 1**: analytic comparison of SMR protocols, plus measured
//! validation of the four implemented ones.
//!
//! The analytic half reproduces the paper's table from closed-form
//! latencies and requirements (see `banyan_core::model`). The measured
//! half runs each implemented protocol on a uniform-δ topology and
//! reports latency/δ — which should land on the analytic step count.
//!
//! Run: `cargo run --release -p banyan-bench --bin table1`

use banyan_bench::runner::{run, Scenario};
use banyan_core::model::render_table1;
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

fn main() {
    println!("# Table 1 (analytic) — instantiated at f=6, p*=1 (the paper's n=19 scenario)\n");
    println!("{}", render_table1(6, 1));
    println!("# Table 1 (analytic) — instantiated at f=4, p*=4\n");
    println!("{}", render_table1(4, 4));

    println!("# Measured step counts (uniform δ = 50 ms, n = 4, f = p = 1, tiny payload)\n");
    let one_way = 50u64;
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "protocol", "lat.mean", "steps", "analytic"
    );
    for (protocol, analytic) in [
        ("banyan", "2δ"),
        ("icc", "3δ"),
        ("hotstuff", "≥6δ"),
        ("streamlet", "6Δ"),
    ] {
        let scenario = Scenario::new(
            protocol,
            Topology::uniform(4, Duration::from_millis(one_way)),
            1,
            1,
        )
        .payload(1_000)
        .delta(Duration::from_millis(one_way * 3 / 2))
        .secs(30)
        .seed(42);
        let out = run(&scenario);
        assert!(out.safe);
        println!(
            "{:<12} {:>10.1}ms {:>10.2} {:>10}",
            protocol,
            out.latency.mean_ms,
            out.latency.mean_ms / one_way as f64,
            analytic
        );
    }
}
