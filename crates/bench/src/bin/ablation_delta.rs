//! **Ablation**: sensitivity to the `Δ` bound.
//!
//! §9.2: the paper sets Δ_prop/Δ_notary "larger than the message delay
//! experienced without network disruptions". This harness shows what
//! happens when Δ is set too small (higher-rank blocks start competing
//! with the leader's) or generously large (no cost in the fault-free
//! case, because delays only gate *non-leader* proposals — optimistic
//! responsiveness).
//!
//! Run: `cargo run --release -p banyan-bench --bin ablation_delta [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let payload = 400_000u64;
    let topo = Topology::four_global_4();
    let base = topo.max_one_way();
    println!(
        "# Ablation — Δ sensitivity, n=4 global, 400KB, {secs}s (max one-way = {:.1} ms)",
        base.as_millis_f64()
    );
    println!("{}", header());
    for (label_suffix, factor_num, factor_den) in [
        ("0.25x", 1u64, 4u64),
        ("0.5x", 1, 2),
        ("1x", 1, 1),
        ("2x", 2, 1),
        ("4x", 4, 1),
    ] {
        for protocol in ["banyan", "icc"] {
            let delta = Duration(base.as_nanos() * factor_num / factor_den);
            let label = format!("{protocol} Δ={label_suffix}");
            let scenario = Scenario::new(protocol, topo.clone(), 1, 1)
                .payload(payload)
                .secs(secs)
                .seed(42)
                .delta(delta);
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {label}");
            println!("{}", row(&label, payload, &out));
        }
        println!();
    }
    println!("(too-small Δ lets higher ranks propose before the leader's block lands:");
    println!(" extra blocks, extra traffic, possible slow-path rounds — but never unsafety)");
}
