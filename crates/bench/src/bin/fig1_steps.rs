//! **Figure 1**: Banyan terminates after two communication steps; existing
//! rotating-leader BFT protocols need at least three.
//!
//! On a uniform topology where every one-way delay is exactly δ and
//! payloads are negligible, the proposer-measured finalization latency
//! divided by δ *is* the protocol's communication-step count. We sweep δ
//! and report latency/δ for each protocol.
//!
//! Expected: Banyan ≈ 2.0, ICC ≈ 3.0, HotStuff ≳ 6, Streamlet `O(Δ)` ≫ 3.
//!
//! Run: `cargo run --release -p banyan-bench --bin fig1_steps`

use banyan_bench::runner::{run, Scenario};
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

fn main() {
    println!("# Figure 1 — communication steps to finalization (latency / δ, uniform topology)");
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>8}",
        "protocol", "δ (ms)", "lat.mean", "steps", "fast%"
    );
    for one_way_ms in [20u64, 50, 100] {
        for protocol in ["banyan", "icc", "hotstuff", "streamlet"] {
            let scenario = Scenario::new(
                protocol,
                Topology::uniform(4, Duration::from_millis(one_way_ms)),
                1,
                1,
            )
            .payload(1_000)
            .delta(Duration::from_millis(one_way_ms * 3 / 2))
            .secs(30)
            .seed(42);
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {protocol}");
            let steps = out.latency.mean_ms / one_way_ms as f64;
            println!(
                "{:<12} {:>8} {:>10.1}ms {:>10.2} {:>7.0}%",
                protocol,
                one_way_ms,
                out.latency.mean_ms,
                steps,
                out.fast_share * 100.0
            );
        }
        println!();
    }
    println!("(paper: Banyan = 2 steps, ICC/Simplex/Mysticeti/BBCA ≥ 3 steps — Table 1)");
}
