//! **Crypto microbenchmark**: individual vs RLC-batched Schnorr
//! verification, and naive vs compact aggregate-certificate checking.
//!
//! The verify plane's whole premise is that one random-linear-combination
//! equation over k signatures beats k independent equations, and that a
//! compact certificate (shared `s̃`, per-member `Rᵢ`) verifies in one
//! combined check instead of one equation per member. This harness
//! measures both claims directly on the toy scheme, wall-clock, outside
//! any simulator — the number the CI gate pins.
//!
//! Run: `cargo run --release -p banyan-bench --bin crypto_microbench -- \
//!       [--assert-speedup X] [--k K] [rounds]`
//!
//! * `--assert-speedup X` exits nonzero unless batched verification at
//!   the configured batch size is at least `X`× faster than individual
//!   verification (the CI regression gate; the PR that introduced the
//!   batcher measured ≥ 1.5× at k=32);
//! * `--k K` sets the batch/certificate size (default 32 — a quorum-ish
//!   burst);
//! * `rounds` sets how many timed repetitions to run (default 200; the
//!   fastest round is reported, which is the standard way to strip
//!   scheduler noise from a CPU-bound microbench).

use std::time::{Duration, Instant};

use banyan_crypto::sig::{BatchItem, SignatureScheme};
use banyan_crypto::ToySchnorr;

struct Args {
    assert_speedup: Option<f64>,
    k: usize,
    rounds: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        assert_speedup: None,
        k: 32,
        rounds: 200,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--assert-speedup" => {
                args.assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-speedup takes a ratio"),
                )
            }
            "--k" => {
                args.k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k: &usize| k >= 2)
                    .expect("--k takes a batch size of at least 2")
            }
            other => match other.parse() {
                Ok(v) => args.rounds = v,
                Err(_) => panic!("unknown argument {other:?}"),
            },
        }
    }
    args
}

/// The fastest of `rounds` timed repetitions of `work` — the standard
/// noise-stripping reduction for a CPU-bound microbench.
fn best_of(rounds: usize, mut work: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let args = parse_args();
    let k = args.k;
    let scheme = ToySchnorr::new();
    let compact = ToySchnorr::compact();

    // k distinct signers, each signing its own distinct message — the
    // shape of a vote burst arriving at a replica.
    let keys: Vec<_> = (0..k)
        .map(|i| {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&(i as u64).to_le_bytes());
            scheme.keygen(&seed)
        })
        .collect();
    let msgs: Vec<Vec<u8>> = (0..k).map(|i| format!("vote:{i}").into_bytes()).collect();
    let sigs: Vec<_> = keys
        .iter()
        .zip(&msgs)
        .map(|((sk, _), m)| scheme.sign(sk, m))
        .collect();
    let items: Vec<BatchItem<'_>> = keys
        .iter()
        .zip(&msgs)
        .zip(&sigs)
        .map(|(((_, pk), msg), sig)| BatchItem { pk, msg, sig })
        .collect();

    // --- individual vs batched verification --------------------------
    let individual = best_of(args.rounds, || {
        for it in &items {
            assert!(scheme.verify(it.pk, it.msg, it.sig));
        }
    });
    let batched = best_of(args.rounds, || {
        assert!(scheme.batch_verify(&items).iter().all(|&ok| ok));
    });
    let speedup = individual.as_secs_f64() / batched.as_secs_f64();
    let per_sig = |d: Duration| d.as_secs_f64() / k as f64;
    println!(
        "# ToySchnorr verification, k={k}, best of {} rounds",
        args.rounds
    );
    println!(
        "individual: {:>10.1} sigs/s  ({:.2} µs/sig)",
        1.0 / per_sig(individual),
        per_sig(individual) * 1e6
    );
    println!(
        "batched:    {:>10.1} sigs/s  ({:.2} µs/sig)   speedup {speedup:.2}x",
        1.0 / per_sig(batched),
        per_sig(batched) * 1e6
    );

    // --- naive vs compact aggregate certificates ----------------------
    // One quorum certificate: k signers over the *same* message.
    let cert_msg = b"certify:round-7".to_vec();
    let cert_sigs: Vec<_> = keys
        .iter()
        .enumerate()
        .map(|(i, (sk, _))| (i as u16, scheme.sign(sk, &cert_msg)))
        .collect();
    let pks: Vec<_> = keys.iter().map(|(_, pk)| *pk).collect();
    let naive_agg = scheme.aggregate(k, &cert_sigs);
    let compact_agg = compact.aggregate(k, &cert_sigs);
    let naive = best_of(args.rounds, || {
        assert!(scheme.verify_aggregate(&pks, &cert_msg, &naive_agg));
    });
    let compact_t = best_of(args.rounds, || {
        assert!(compact.verify_aggregate(&pks, &cert_msg, &compact_agg));
    });
    let agg_speedup = naive.as_secs_f64() / compact_t.as_secs_f64();
    println!("# aggregate certificate over {k} signers");
    println!(
        "naive:      {:>10.2} µs/cert  ({} bytes)",
        naive.as_secs_f64() * 1e6,
        naive_agg.data.len()
    );
    println!(
        "compact:    {:>10.2} µs/cert  ({} bytes)   speedup {agg_speedup:.2}x",
        compact_t.as_secs_f64() * 1e6,
        compact_agg.data.len()
    );

    if let Some(min) = args.assert_speedup {
        if speedup < min {
            eprintln!("FAIL: batched speedup {speedup:.2}x below the {min:.2}x gate at k={k}");
            std::process::exit(1);
        }
    }
}
