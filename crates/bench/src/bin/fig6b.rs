//! **Figure 6b**: throughput vs. proposal latency for n = 4 replicas
//! spread across 4 global datacenters, block sizes in 500 KB increments.
//!
//! Paper reference points (§9.3): at 1 MB blocks, ICC averages 224 ms
//! proposal finalization; Banyan improves 29.9% to 157 ms. With n = 4 and
//! p = 1 the fast path fires after 3 = n − p replies, "the same conditions
//! as regular notarization".
//!
//! Run: `cargo run --release -p banyan-bench --bin fig6b [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("# Figure 6b — n=4, one replica per global datacenter (f=1), {secs}s per point");
    println!("{}", header());
    for payload in [
        500_000u64, 1_000_000, 1_500_000, 2_000_000, 2_500_000, 3_000_000,
    ] {
        for (label, protocol, p) in [
            ("banyan p=1", "banyan", 1usize),
            ("icc", "icc", 0),
            ("hotstuff", "hotstuff", 0),
            ("streamlet", "streamlet", 0),
        ] {
            let scenario = Scenario::new(protocol, Topology::four_global_4(), 1, p.max(1))
                .payload(payload)
                .secs(secs)
                .seed(42);
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {label}");
            println!("{}", row(label, payload, &out));
        }
        println!();
    }
}
