//! **Figure 6e**: throughput vs. proposal latency for n = 19 replicas
//! spread across a global network of 19 datacenters (one each).
//!
//! Paper reference points (§9.5), 1 MB payloads: ICC 384 ms; Banyan
//! (f=6, p=1) 362 ms (−5.8%, "for free"); Banyan (f=4, p=4) 324 ms (−16%).
//!
//! Run: `cargo run --release -p banyan-bench --bin fig6e [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("# Figure 6e — n=19, one replica in each of 19 global datacenters, {secs}s per point");
    println!("{}", header());
    for payload in [250_000u64, 500_000, 1_000_000, 2_000_000] {
        for (label, protocol, f, p) in [
            ("banyan f=6 p=1", "banyan", 6usize, 1usize),
            ("banyan f=4 p=4", "banyan", 4, 4),
            ("icc f=6", "icc", 6, 1),
            ("hotstuff f=6", "hotstuff", 6, 1),
            ("streamlet f=6", "streamlet", 6, 1),
        ] {
            let scenario = Scenario::new(protocol, Topology::nineteen_global(), f, p)
                .payload(payload)
                .secs(secs)
                .seed(42);
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {label}");
            println!("{}", row(label, payload, &out));
        }
        println!();
    }
}
