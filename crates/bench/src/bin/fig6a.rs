//! **Figure 6a**: throughput vs. proposal latency for n = 19 replicas
//! spread across 4 global datacenters (5 + 5 + 5 + 4), varying block size.
//!
//! Paper reference points (§9.3): at 400 KB blocks, ICC averages 239 ms,
//! Banyan (f=6, p=1) 216 ms (≈10% better), Banyan (f=4, p=4) 179 ms
//! (25.1% better — closer to the theoretical 33% because the fast path can
//! exclude the furthest co-located stragglers).
//!
//! Run: `cargo run --release -p banyan-bench --bin fig6a [secs]`

use banyan_bench::runner::{header, row, run, Scenario};
use banyan_simnet::topology::Topology;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("# Figure 6a — n=19 across 4 global datacenters (5/5/5/4), {secs}s per point");
    println!("{}", header());
    for payload in [100_000u64, 200_000, 400_000, 800_000, 1_600_000] {
        for (label, protocol, f, p) in [
            ("banyan f=6 p=1", "banyan", 6usize, 1usize),
            ("banyan f=4 p=4", "banyan", 4, 4),
            ("icc f=6", "icc", 6, 1),
            ("hotstuff f=6", "hotstuff", 6, 1),
            ("streamlet f=6", "streamlet", 6, 1),
        ] {
            let scenario = Scenario::new(protocol, Topology::four_global_19(), f, p)
                .payload(payload)
                .secs(secs)
                .seed(42);
            let out = run(&scenario);
            assert!(out.safe, "safety violation in {label}");
            println!("{}", row(label, payload, &out));
        }
        println!();
    }
}
