//! **Figure 6c**: variance of Banyan and ICC proposal latencies with 1 MB
//! payload and n = 4 (one replica per global datacenter).
//!
//! The paper's claim: Banyan's ~30% latency win does **not** come at the
//! cost of higher variance. We print the full percentile ladder plus the
//! standard deviation for both protocols.
//!
//! Run: `cargo run --release -p banyan-bench --bin fig6c [secs]`

use banyan_bench::runner::{run, Scenario};
use banyan_simnet::topology::Topology;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    println!("# Figure 6c — latency distribution, n=4 global, 1MB payload, {secs}s");
    println!(
        "{:<12} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "protocol", "count", "mean", "std", "min", "p50", "p90", "p99", "max"
    );
    for (label, protocol) in [("banyan p=1", "banyan"), ("icc", "icc")] {
        let scenario = Scenario::new(protocol, Topology::four_global_4(), 1, 1)
            .payload(1_000_000)
            .secs(secs)
            .seed(42);
        let out = run(&scenario);
        assert!(out.safe, "safety violation in {label}");
        let s = &out.latency;
        println!(
            "{:<12} {:>7} {:>8.1}m {:>7.1}m {:>7.1}m {:>7.1}m {:>7.1}m {:>7.1}m {:>7.1}m",
            label, s.count, s.mean_ms, s.std_ms, s.min_ms, s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms
        );
    }
    println!("\n(paper: Banyan improves the mean ~29.9% at identical spread — std and the");
    println!(" p50→p99 ladder should shrink proportionally with the mean, not widen)");
}
