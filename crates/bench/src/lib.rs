//! Benchmark & paper-reproduction harness for the Banyan reproduction.
//!
//! * [`runner`] — the shared scenario runner (all experiments use the same
//!   measurement methodology, §9.2 of the paper);
//! * [`sweep`] — closed-loop saturation sweeps and knee detection (the
//!   `saturation_sweep` binary drives these);
//! * one binary per paper table/figure under `src/bin/` (see `DESIGN.md`
//!   for the experiment index);
//! * Criterion benches under `benches/` exercising scaled-down versions of
//!   each experiment plus microbenchmarks of the substrates.

#![warn(missing_docs)]

pub mod runner;
pub mod sweep;

pub use runner::{
    build_simulation, header, human_bytes, row, run, run_metrics, run_observed, CryptoMode,
    Outcome, Scenario,
};
pub use sweep::{knee_index, measure, point_json, point_row, sweep_header, sweep_json, SweepPoint};
