//! Shared experiment runner: one [`Scenario`] in, one [`Outcome`] out.
//!
//! Every figure/table harness and every Criterion macro-bench goes through
//! this module, so all experiments share the same measurement methodology
//! (§9.2 of the paper): proposer-measured finalization latency, committed
//! bytes per second at a non-faulty replica, per-replica block intervals.

use std::sync::Arc;

use banyan_core::builder::{ClusterBuilder, VerifyPlaneConfig};
use banyan_core::chained::{ByzantineMode, OptimisticConfig};
use banyan_crypto::ToySchnorr;
use banyan_mempool::BatchPolicy;
use banyan_runtime::driver::CommitSink;
use banyan_simnet::cohort::{CohortWorkload, LoadShape};
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::metrics::{LatencyStats, RunMetrics, SafetyAuditor};
use banyan_simnet::sim::{CryptoCost, SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_simnet::workload::{
    ClientWorkload, ClosedLoopWorkload, Mempool, MempoolSource, SharedMempool, DEFAULT_MAX_BATCH,
    DEFAULT_MEMPOOL_CAPACITY,
};
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

/// Which cryptographic configuration a scenario measures.
///
/// The paper's evaluation runs with signatures on; this knob makes that
/// cost — and the two optimizations that pay for it (RLC vote batching
/// and compact certificates with a verdict cache) — a first-class sweep
/// axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CryptoMode {
    /// The historical configuration: the `HashSig` placeholder scheme,
    /// no verify plane and no modeled CPU cost. Bit-identical to runs
    /// built before the crypto plane existed.
    #[default]
    Off,
    /// `ToySchnorr` with naive per-member aggregates, every signature
    /// checked by its own equation (no batching, no cert cache), and the
    /// simulator charging the full per-signature CPU cost.
    Unbatched,
    /// The measured configuration: `ToySchnorr` with compact
    /// certificates, RLC-batched vote checks and a certificate-verdict
    /// LRU cache; the simulator charges the batched CPU discount.
    Batched,
}

impl CryptoMode {
    /// Parses a `--crypto-mode` style argument.
    pub fn parse(s: &str) -> Option<CryptoMode> {
        match s {
            "off" => Some(CryptoMode::Off),
            "unbatched" => Some(CryptoMode::Unbatched),
            "batched" => Some(CryptoMode::Batched),
            _ => None,
        }
    }

    /// The mode's sweep label.
    pub fn label(self) -> &'static str {
        match self {
            CryptoMode::Off => "off",
            CryptoMode::Unbatched => "unbatched",
            CryptoMode::Batched => "batched",
        }
    }
}

/// A fully specified experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// "banyan", "icc", "hotstuff" or "streamlet".
    pub protocol: String,
    /// Where the replicas sit.
    pub topology: Topology,
    /// Fault bound `f`.
    pub f: usize,
    /// Fast-path parameter `p`.
    pub p: usize,
    /// Payload bytes per block (the paper's block size knob). Ignored
    /// for client-driven scenarios: block content then comes from the
    /// mempools.
    pub payload: u64,
    /// Open-loop client requests per second across the cluster; 0 (the
    /// default) keeps the paper's leader-minted synthetic workload.
    pub rate: u64,
    /// Closed-loop client population size; 0 (the default) means no
    /// closed loop. Takes precedence over `rate`.
    pub clients: u16,
    /// Cohort-aggregated modeled client population (see
    /// `banyan_simnet::cohort`); 0 (the default) means none. Takes
    /// precedence over `clients` and `rate` — this is how sweeps model
    /// 10⁵–10⁶ clients in `O(cohorts)` memory.
    pub modeled_clients: u64,
    /// Cohorts aggregating the modeled clients (only meaningful with
    /// `modeled_clients > 0`).
    pub cohorts: u16,
    /// Global in-flight admission cap for the cohort population; 0 (the
    /// default) means the full `modeled_clients × window`.
    pub max_outstanding: u64,
    /// Token-bucket pacing per *modeled* client (cohort population only);
    /// `None` resubmits freed slots immediately, the pure closed loop.
    pub member_interval: Option<Duration>,
    /// Aggregate load shape for the cohort population.
    pub shape: LoadShape,
    /// Propagation-limited gossip: forward pushes down a bounded-fanout
    /// tree of this degree with per-peer backpressure instead of
    /// broadcasting to every peer. 0 (the default) keeps broadcast
    /// gossip. Implies `gossip`.
    pub fanout_tree: usize,
    /// Outstanding-request window per closed-loop client.
    pub window: u32,
    /// Pause between a closed-loop completion and the resubmission.
    pub think_time: Duration,
    /// Bytes per client request (only meaningful with a client workload).
    pub request_size: u64,
    /// Gossip pending requests to every replica (dissemination layer).
    /// Off by default — the historical single-pool behavior.
    pub gossip: bool,
    /// Per-request client retransmission timeout; `None` (the default)
    /// means requests lost to never-finalized proposals stay lost.
    pub retry: Option<Duration>,
    /// Replicas each request is submitted to (1 = the historical single
    /// target; `f + 1` is the classic censorship-resistant setting).
    pub fanout: usize,
    /// Ancestor-aware **speculative drain**: leaders skip requests a live
    /// uncommitted ancestor already carries, and abandoned blocks release
    /// their requests back into the pool. Off by default — the historical
    /// blind FIFO drain.
    pub speculative: bool,
    /// Latency-targeted batching policy for the mempool sources; `None`
    /// (the default) drains eagerly on every proposal.
    pub batch_policy: Option<BatchPolicy>,
    /// Optimistic proposal pipelining (Moonshot-style): the next leader
    /// proposes on a received-but-uncertified parent instead of waiting
    /// for its certificate, falling back to the certified tip if the
    /// optimistic parent never certifies. Chained engines (banyan/icc)
    /// only — building a hotstuff/streamlet scenario with this on panics.
    /// Off by default — the historical certify-then-propose behavior.
    pub optimistic: bool,
    /// Pending-queue shards per mempool. The arrival-stamp merge makes
    /// drain order independent of the shard count, so any value sweeps
    /// bit-identically to 1 (the historical single FIFO) — the knob
    /// exists so sweeps can exercise and regression-pin that invariance.
    pub shards: usize,
    /// Per-client think-time multipliers for the closed loop (client `c`
    /// pauses `think_time × multipliers[c % len]`); empty = uniform.
    pub think_multipliers: Vec<u32>,
    /// Extra seconds to run after freezing the workload, letting
    /// in-flight requests drain to a commit. 0 (the default) skips the
    /// drain phase entirely, preserving historical figures bit-for-bit.
    pub drain_secs: u64,
    /// Per-replica Byzantine behaviors (chained engines only).
    pub byzantine: Vec<(u16, ByzantineMode)>,
    /// Protocol `Δ`; `None` picks `max one-way delay + 10 ms` per §9.2
    /// ("larger than the message delay experienced without network
    /// disruptions").
    pub delta: Option<Duration>,
    /// Simulated duration (the paper runs 120 s; scaled-down runs are fine
    /// for CI).
    pub secs: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Fault schedule.
    pub faults: FaultPlan,
    /// Tip forwarding on/off (§9.1 optimization; on by default).
    pub forwarding: bool,
    /// Remark 7.8 fast-vote piggyback (off by default, matching the
    /// paper's evaluated variant).
    pub piggyback: bool,
    /// View/epoch timeout for baselines and crash recovery.
    pub timeout: Duration,
    /// Cryptographic configuration (see [`CryptoMode`]). `Off` by
    /// default — the historical, cost-free placeholder scheme.
    pub crypto: CryptoMode,
}

impl Scenario {
    /// A scenario with the defaults the paper's §9.3 experiments use.
    pub fn new(protocol: &str, topology: Topology, f: usize, p: usize) -> Self {
        Scenario {
            protocol: protocol.to_string(),
            topology,
            f,
            p,
            payload: 0,
            rate: 0,
            clients: 0,
            modeled_clients: 0,
            cohorts: 0,
            max_outstanding: 0,
            member_interval: None,
            shape: LoadShape::Steady,
            fanout_tree: 0,
            window: 0,
            think_time: Duration::ZERO,
            request_size: 0,
            gossip: false,
            retry: None,
            fanout: 1,
            speculative: false,
            batch_policy: None,
            optimistic: false,
            shards: 1,
            think_multipliers: Vec::new(),
            drain_secs: 0,
            byzantine: Vec::new(),
            delta: None,
            secs: 30,
            seed: 42,
            faults: FaultPlan::none(),
            forwarding: true,
            piggyback: false,
            timeout: Duration::from_secs(3),
            crypto: CryptoMode::Off,
        }
    }

    /// Sets the payload size.
    pub fn payload(mut self, bytes: u64) -> Self {
        self.payload = bytes;
        self
    }

    /// Switches the scenario to an open-loop client workload of
    /// `req_per_sec` requests per second (fed into per-replica mempools;
    /// end-to-end submit→commit latency is then reported).
    pub fn rate(mut self, req_per_sec: u64) -> Self {
        self.rate = req_per_sec;
        self
    }

    /// Switches the scenario to a **closed-loop** client population:
    /// `clients` clients × `window` outstanding requests each, pausing
    /// `think_time` between a completion and the replacement submission.
    /// The offered load self-regulates to what the cluster commits, so
    /// sweeping `clients` traces a saturation (throughput-vs-latency)
    /// curve. Takes precedence over [`rate`](Self::rate).
    pub fn closed_loop(mut self, clients: u16, window: u32, think_time: Duration) -> Self {
        self.clients = clients;
        self.window = window;
        self.think_time = think_time;
        self
    }

    /// Switches the scenario to a **cohort-aggregated** closed-loop
    /// population: `modeled_clients` modeled clients folded into
    /// `cohorts` cohorts, each client keeping `window` outstanding
    /// requests with `think_time` between completion and resubmission.
    /// Memory and per-event work are `O(cohorts)`, so sweeping to 10⁶
    /// modeled clients costs the same as 64. Takes precedence over
    /// [`closed_loop`](Self::closed_loop) and [`rate`](Self::rate).
    pub fn cohort_load(
        mut self,
        modeled_clients: u64,
        cohorts: u16,
        window: u32,
        think_time: Duration,
    ) -> Self {
        self.modeled_clients = modeled_clients;
        self.cohorts = cohorts;
        self.window = window;
        self.think_time = think_time;
        self
    }

    /// Paces each modeled client at one submission per `interval`
    /// (cohort population only).
    pub fn member_interval(mut self, interval: Duration) -> Self {
        self.member_interval = Some(interval);
        self
    }

    /// Caps the cohort population's total in-flight requests (admission
    /// control; deferred demand is admitted as completions free slots).
    pub fn max_outstanding(mut self, cap: u64) -> Self {
        self.max_outstanding = cap;
        self
    }

    /// Installs an aggregate [`LoadShape`] for the cohort population
    /// (flash crowd, diurnal wave, regional outage with failover).
    pub fn load_shape(mut self, shape: LoadShape) -> Self {
        self.shape = shape;
        self
    }

    /// Switches gossip to **propagation-limited** mode: each replica
    /// forwards pushes only to `fanout` tree peers (ring successor +
    /// lowest-delay picks) through bounded per-peer queues with
    /// credit-based backpressure; first-time acceptors relay compact
    /// announcements down their own edges. Implies [`gossip`](Self::gossip).
    pub fn fanout_tree(mut self, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout-tree degree must be positive");
        self.fanout_tree = fanout;
        self.gossip = true;
        self
    }

    /// Sets the per-request size for the client workload.
    pub fn request_size(mut self, bytes: u64) -> Self {
        self.request_size = bytes;
        self
    }

    /// Enables pending-request gossip: a request submitted to any replica
    /// is forwarded to every peer (through the modeled network) within
    /// one gossip round, so every potential leader can batch it.
    pub fn gossip(mut self) -> Self {
        self.gossip = true;
        self
    }

    /// Enables client-side retransmission: a request not observed
    /// committed within `timeout` is resubmitted (same id, original
    /// submit timestamp) and re-armed until it commits.
    pub fn retry_timeout(mut self, timeout: Duration) -> Self {
        self.retry = Some(timeout);
        self
    }

    /// Submits every request to `fanout` replicas instead of one
    /// (clamped to the cluster size; `f + 1` tolerates any `f` censoring
    /// or crashed replicas).
    pub fn fanout(mut self, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        self.fanout = fanout;
        self
    }

    /// Enables the ancestor-aware speculative drain: drivers feed every
    /// observed block into per-replica lease tables, leaders skip
    /// requests leased to a live ancestor of their proposal (collapsing
    /// the `dups` column), and abandoned blocks release their requests
    /// back into the pool. Requires a client workload.
    pub fn speculative_drain(mut self) -> Self {
        self.speculative = true;
        self
    }

    /// Installs a latency-targeted batching policy: leaders defer (empty
    /// payload) until the eligible backlog reaches `min_bytes` or its
    /// oldest request has waited `max_age`.
    pub fn batch_policy(mut self, min_bytes: u64, max_age: Duration) -> Self {
        self.batch_policy = Some(BatchPolicy::target(min_bytes, max_age));
        self
    }

    /// Enables optimistic proposal pipelining (see
    /// [`Scenario::optimistic`]).
    pub fn optimistic(mut self) -> Self {
        self.optimistic = true;
        self
    }

    /// Shards each replica's pending queue `shards` ways (1 = the
    /// historical single FIFO). Results are bit-identical for any value —
    /// the determinism suite pins this.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Skews per-client submit rates in the closed loop: client `c`
    /// pauses `think_time × multipliers[c % len]` before resubmitting.
    pub fn think_multipliers(mut self, multipliers: Vec<u32>) -> Self {
        self.think_multipliers = multipliers;
        self
    }

    /// Adds a drain phase: after the measured `secs`, the workload is
    /// frozen (no new submissions) and the run continues `secs_extra`
    /// more seconds so in-flight requests finish. With retry and/or
    /// gossip on, `Outcome::requests_lost` must end at zero.
    pub fn drain(mut self, secs_extra: u64) -> Self {
        self.drain_secs = secs_extra;
        self
    }

    /// Marks `replica` as Byzantine with the given behavior (chained
    /// engines only; baselines ignore it).
    pub fn byzantine(mut self, replica: u16, mode: ByzantineMode) -> Self {
        self.byzantine.push((replica, mode));
        self
    }

    /// True when the scenario runs any client workload (open loop,
    /// closed loop, or cohort population) instead of leader-minted
    /// synthetic payloads.
    pub fn client_driven(&self) -> bool {
        self.modeled_clients > 0 || self.clients > 0 || self.rate > 0
    }

    /// True when any dissemination-layer feature (gossip, retry, submit
    /// fan-out) is enabled.
    pub fn disseminating(&self) -> bool {
        self.gossip || self.retry.is_some() || self.fanout > 1
    }

    /// Sets the simulated duration in seconds.
    pub fn secs(mut self, secs: u64) -> Self {
        self.secs = secs;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Schedules a crash-and-rejoin for `replica`: it drops all volatile
    /// state at `at`, rebuilds from its durable snapshot at `rejoin_at`,
    /// and catches up over ranged sync. Composable — call once per
    /// restart to stagger several.
    pub fn restart(mut self, replica: u16, at: Duration, rejoin_at: Duration) -> Self {
        self.faults = self.faults.restart(
            ReplicaId(replica),
            Time(at.as_nanos()),
            Time(rejoin_at.as_nanos()),
        );
        self
    }

    /// Overrides `Δ`.
    pub fn delta(mut self, delta: Duration) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Toggles tip forwarding.
    pub fn forwarding(mut self, on: bool) -> Self {
        self.forwarding = on;
        self
    }

    /// Toggles the Remark 7.8 fast-vote piggyback.
    pub fn piggyback(mut self, on: bool) -> Self {
        self.piggyback = on;
        self
    }

    /// Sets the baseline view/epoch timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the cryptographic configuration (see [`CryptoMode`]).
    pub fn crypto(mut self, mode: CryptoMode) -> Self {
        self.crypto = mode;
        self
    }
}

/// Aggregated results of one scenario run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Proposer-measured finalization latency (the paper's latency metric).
    pub latency: LatencyStats,
    /// Committed payload bytes per second at the best non-faulty replica,
    /// in MB/s.
    pub throughput_mbps: f64,
    /// Mean interval between commits at a non-faulty replica, ms.
    pub block_interval_ms: f64,
    /// Rounds per commit: the mean interval between **explicit** commits
    /// at the observer, normalized by the protocol `Δ` — i.e. how many
    /// Δ-spans pass between consecutive finalizations. The chained
    /// engine's certify-then-propose baseline needs several Δ per commit;
    /// optimistic pipelining overlaps the proposal with the parent's
    /// certification and pushes this down. 0 when fewer than two explicit
    /// commits were observed.
    pub rounds_per_commit: f64,
    /// End-to-end client latency (submit→commit), present only when the
    /// scenario ran a client workload (open or closed loop).
    pub client_latency: Option<LatencyStats>,
    /// Client requests submitted / committed (0/0 without a workload).
    pub requests_submitted: u64,
    /// Client requests that reached a committed block (deduped by id —
    /// a re-gossiped or retried request counts once).
    pub requests_committed: u64,
    /// Requests lost to the request path: submitted but neither observed
    /// committed nor pending in any pool at the end of the run (see
    /// `RunMetrics::requests_lost`). With retry/gossip plus a drain
    /// phase this must be 0.
    pub requests_lost: u64,
    /// Requests still pending in mempools at the end of the run.
    pub requests_pending: u64,
    /// Client retransmissions performed over the run.
    pub requests_retried: u64,
    /// Batched request occurrences suppressed by exactly-once dedup
    /// (copies of an already-committed id in a later block).
    pub duplicates_suppressed: u64,
    /// Goodput: committed client requests per second of *measured* time
    /// (0 without a workload) — the saturation sweep's y-axis. Commits
    /// landing in a drain phase still count (they were submitted during
    /// the measured window; draining just flushes the pipeline), but the
    /// drain seconds do not: identical to committed/end-time for runs
    /// without a drain phase.
    pub goodput_rps: f64,
    /// Share of explicit commits taken via the fast path at a non-faulty
    /// replica (0 for non-Banyan protocols).
    pub fast_share: f64,
    /// Catch-up fetches issued by rejoining replicas (frontier probes plus
    /// ranged block requests); 0 for runs without restarts.
    pub sync_requests: u64,
    /// Blocks served in `SyncMsg::ResponseBatch` replies over the run.
    pub sync_blocks_served: u64,
    /// Total milliseconds rejoining replicas spent catching up (rejoin →
    /// caught-up), summed over all restarts.
    pub restart_recovery_ms: u64,
    /// Write-ahead-log bytes held across all replicas at the end of the
    /// run (0 when engines run on in-memory stores).
    pub wal_bytes: u64,
    /// Signatures verified across all replicas (aggregate members count
    /// individually; 0 with [`CryptoMode::Off`]).
    pub sigs_verified: u64,
    /// Combined (RLC or multi-signature) checks performed.
    pub verify_batches: u64,
    /// Certificate verifications answered from the verdict cache.
    pub cert_cache_hits: u64,
    /// Virtual CPU milliseconds charged for verification across the run.
    pub verify_cpu_ms: u64,
    /// Rounds with at least one committed block.
    pub committed_rounds: usize,
    /// Network messages sent.
    pub messages: u64,
    /// Network bytes sent.
    pub bytes: u64,
    /// Dissemination-layer bytes sent (gossip `Forward` bodies plus
    /// fanout-tree `Announce` records; subset of `bytes`).
    pub gossip_bytes: u64,
    /// Forward-path losses: shared-outbox drops plus per-peer
    /// backpressure sheds across every pool.
    pub forwards_dropped: u64,
    /// No safety violation observed (must always be true).
    pub safe: bool,
}

/// Builds the simulation a scenario describes, without running it. All
/// harnesses construct runs through here so protocol wiring and topology
/// handling cannot drift between figures.
///
/// # Panics
///
/// Panics if the scenario's `(n, f, p)` triple is invalid.
pub fn build_simulation(scenario: &Scenario) -> Simulation {
    let n = scenario.topology.n();
    let delta = effective_delta(scenario);
    let mut builder = ClusterBuilder::new(n, scenario.f, scenario.p)
        .expect("valid (n, f, p)")
        .delta(delta)
        .forwarding(scenario.forwarding)
        .piggyback(scenario.piggyback)
        .baseline_timeout(scenario.timeout);
    if scenario.optimistic {
        builder = builder.optimistic(OptimisticConfig::default());
    }
    // Crypto plane: `Off` must not touch the builder at all, so the
    // historical configuration stays bit-identical to pre-crypto runs.
    builder = match scenario.crypto {
        CryptoMode::Off => builder,
        CryptoMode::Unbatched => {
            builder
                .scheme(Arc::new(ToySchnorr::new()))
                .verify_plane(VerifyPlaneConfig {
                    batch_votes: false,
                    cert_cache: 0,
                })
        }
        CryptoMode::Batched => builder
            .scheme(Arc::new(ToySchnorr::compact()))
            .verify_plane(VerifyPlaneConfig::default()),
    };
    for (replica, mode) in &scenario.byzantine {
        builder = builder.byzantine(*replica, mode.clone());
    }
    // Workload: either the paper's leader-minted synthetic payloads, or
    // per-replica mempools fed by a client population (closed loop takes
    // precedence over open loop). Gossiping pools queue local pushes for
    // forwarding from the first (priming) submission on.
    let mempools: Option<Vec<SharedMempool>> = scenario.client_driven().then(|| {
        (0..n)
            .map(|_| {
                std::sync::Arc::new(std::sync::Mutex::new(
                    Mempool::new(DEFAULT_MEMPOOL_CAPACITY)
                        .with_gossip(scenario.gossip)
                        .with_shards(scenario.shards),
                ))
            })
            .collect()
    });
    builder = match &mempools {
        Some(pools) => {
            let pools = pools.clone();
            let policy = scenario.batch_policy.unwrap_or(BatchPolicy::EAGER);
            builder.proposal_sources(move |i| {
                Box::new(
                    MempoolSource::new(pools[i as usize].clone(), DEFAULT_MAX_BATCH)
                        .with_batch_policy(policy),
                )
            })
        }
        None => builder.payload_size(scenario.payload),
    };
    assert!(
        !scenario.speculative || mempools.is_some(),
        "speculative drain needs a client workload"
    );
    let payload_chunk = builder.protocol_config().payload_chunk;
    let engines = builder.build(&scenario.protocol);
    let mut sim_config = SimConfig::with_seed(scenario.seed);
    if scenario.crypto != CryptoMode::Off {
        // Charge the calibrated per-verify cost so the sweep measures
        // crypto as CPU time, not just counters. Both crypto modes pay
        // the same constants; batching earns its discount through the
        // `sigs_batched` counter, not a different price list.
        sim_config = sim_config.with_crypto_cost(CryptoCost::default());
    }
    let mut sim = Simulation::new(
        scenario.topology.clone(),
        engines,
        scenario.faults.clone(),
        sim_config,
    );
    if let Some(pools) = mempools {
        // Decorrelate the client stream from network jitter while keeping
        // everything a function of the one scenario seed.
        let client_seed = scenario
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        if scenario.modeled_clients > 0 {
            let mut workload = CohortWorkload::new(
                scenario.modeled_clients,
                scenario.cohorts.max(1),
                scenario.window,
                scenario.think_time,
                scenario.request_size,
                client_seed,
                pools,
            );
            if scenario.max_outstanding > 0 {
                workload = workload.with_max_outstanding(scenario.max_outstanding);
            }
            if let Some(interval) = scenario.member_interval {
                workload = workload.with_member_interval(interval);
            }
            if scenario.shape != LoadShape::Steady {
                workload = workload.with_shape(scenario.shape.clone());
            }
            if let Some(timeout) = scenario.retry {
                workload = workload.with_retry(timeout);
            }
            if scenario.fanout > 1 {
                workload = workload.with_fanout(scenario.fanout);
            }
            sim.attach_cohorts(workload);
        } else if scenario.clients > 0 {
            let mut workload = ClosedLoopWorkload::new(
                scenario.clients,
                scenario.window,
                scenario.think_time,
                scenario.request_size,
                client_seed,
                pools,
            );
            if let Some(timeout) = scenario.retry {
                workload = workload.with_retry(timeout);
            }
            if scenario.fanout > 1 {
                workload = workload.with_fanout(scenario.fanout);
            }
            if !scenario.think_multipliers.is_empty() {
                workload = workload.with_think_multipliers(scenario.think_multipliers.clone());
            }
            sim.attach_closed_loop(workload);
        } else {
            let mut workload =
                ClientWorkload::open_loop(scenario.rate, scenario.request_size, client_seed, pools);
            if let Some(timeout) = scenario.retry {
                workload = workload.with_retry(timeout);
            }
            if scenario.fanout > 1 {
                workload = workload.with_fanout(scenario.fanout);
            }
            sim.attach_workload(workload);
        }
        if scenario.disseminating() || scenario.speculative {
            // Speculation rides the dissemination wiring: commits must
            // reach the pools to retire/release leases even when gossip,
            // retry and fan-out are all off.
            sim.enable_dissemination(scenario.gossip);
        }
        if scenario.fanout_tree > 0 {
            sim.enable_fanout_tree(scenario.fanout_tree);
        }
        if scenario.speculative {
            sim.enable_speculation(payload_chunk);
        }
    }
    if !scenario.faults.restarts().is_empty() {
        // Rejoining replicas are rebuilt from the same cluster wiring
        // (registry, beacon, proposal sources — mempools are shared by
        // Arc, so the rebuilt engine drains the surviving pool) and then
        // restored from the snapshot captured at the crash, which stands
        // in for the durable state a WAL-backed deployment reopens.
        let rebuild = builder.clone();
        let protocol = scenario.protocol.clone();
        sim.set_restart_builder(Box::new(move |replica, snapshot| {
            let mut engine = rebuild.build_replica(&protocol, replica.0);
            engine.restore(snapshot);
            engine
        }));
    }
    sim
}

/// The protocol `Δ` a scenario resolves to: the explicit override, or
/// `max one-way delay + 10 ms` per §9.2. The same value
/// [`build_simulation`] configures the cluster with, exposed so reports
/// can normalize time by it.
pub fn effective_delta(scenario: &Scenario) -> Duration {
    scenario
        .delta
        .unwrap_or_else(|| scenario.topology.max_one_way() + Duration::from_millis(10))
}

/// Runs a scenario to completion, returning the raw measurement state:
/// the full [`RunMetrics`] commit log and the safety auditor. Same seed ⇒
/// bit-identical result (the determinism tests assert exactly this).
///
/// # Panics
///
/// Panics if the scenario's `(n, f, p)` triple is invalid.
pub fn run_metrics(scenario: &Scenario) -> (RunMetrics, SafetyAuditor) {
    let mut sim = build_simulation(scenario);
    sim.run_until(Time(Duration::from_secs(scenario.secs).as_nanos()));
    if scenario.drain_secs > 0 {
        // Drain phase: freeze the client population (retries of
        // already-submitted requests keep firing) and let in-flight work
        // finish, so loss accounting reflects requests that can *never*
        // commit rather than ones still in the pipe.
        sim.freeze_workload();
        sim.run_until(Time(
            Duration::from_secs(scenario.secs + scenario.drain_secs).as_nanos(),
        ));
    }
    sim.into_results()
}

/// Runs a scenario and additionally replays every observed commit, in
/// observation order, into `sink` — the same [`CommitSink`] abstraction
/// the simulator and the TCP runner collect through. Harnesses use this
/// to stream commits (e.g. to a log) without re-deriving them from the
/// aggregate metrics.
pub fn run_observed(scenario: &Scenario, sink: &mut dyn CommitSink) -> Outcome {
    let (metrics, auditor) = run_metrics(scenario);
    for c in &metrics.commits {
        sink.on_commit(c.replica, c.entry.clone());
    }
    summarize(scenario, &metrics, &auditor)
}

/// Runs a scenario to completion.
///
/// # Panics
///
/// Panics if the scenario's `(n, f, p)` triple is invalid.
pub fn run(scenario: &Scenario) -> Outcome {
    let (metrics, auditor) = run_metrics(scenario);
    summarize(scenario, &metrics, &auditor)
}

/// Reduces a finished run to the paper's headline numbers.
fn summarize(scenario: &Scenario, m: &RunMetrics, auditor: &SafetyAuditor) -> Outcome {
    // Report at the first replica that never crashes.
    let crashed = scenario.faults.crashed_replicas();
    let observer = (0..scenario.topology.n() as u16)
        .map(ReplicaId)
        .find(|r| !crashed.contains(r))
        .expect("at least one live replica");

    let intervals = m.block_intervals(observer);
    let interval_stats = LatencyStats::from_samples(&intervals);
    // One decode pass over the commit log serves the latency stats, the
    // committed-request count and the duplicate counter.
    let client_report = scenario
        .client_driven()
        .then(|| m.client_samples_with_duplicates());
    let client_samples: Option<Vec<Duration>> = client_report
        .as_ref()
        .map(|(samples, _)| samples.iter().map(|&(_, d)| d).collect());
    let requests_committed = client_samples.as_ref().map_or(0, |s| s.len() as u64);
    Outcome {
        latency: m.proposer_latency_stats(),
        throughput_mbps: m.throughput_bps(observer) / 1e6,
        block_interval_ms: interval_stats.mean_ms,
        rounds_per_commit: m.mean_commit_interval_ms(observer)
            / effective_delta(scenario).as_millis_f64(),
        client_latency: client_samples.as_deref().map(LatencyStats::from_samples),
        requests_submitted: m.requests_submitted,
        requests_committed,
        requests_lost: m.requests_lost(),
        requests_pending: m.requests_pending,
        requests_retried: m.requests_retried,
        duplicates_suppressed: client_report.as_ref().map_or(0, |&(_, dups)| dups),
        goodput_rps: banyan_simnet::metrics::per_second(requests_committed, scenario.secs as f64),
        fast_share: m.fast_path_share(observer),
        sync_requests: m.sync_requests,
        sync_blocks_served: m.sync_blocks_served,
        restart_recovery_ms: m.restart_recovery_ms,
        wal_bytes: m.wal_bytes,
        sigs_verified: m.sigs_verified,
        verify_batches: m.verify_batches,
        cert_cache_hits: m.cert_cache_hits,
        verify_cpu_ms: m.verify_cpu_ms,
        committed_rounds: auditor.committed_rounds(),
        messages: m.messages_sent,
        bytes: m.bytes_sent,
        gossip_bytes: m.gossip_bytes,
        forwards_dropped: m.forwards_dropped,
        safe: auditor.is_safe(),
    }
}

/// Formats a standard result row (used by all harnesses for consistency).
/// The end-to-end columns show dashes for leader-minted (non-client) runs.
pub fn row(label: &str, payload: u64, out: &Outcome) -> String {
    let (e2e_p50, e2e_p99) = match &out.client_latency {
        Some(stats) => (
            format!("{:.1}", stats.p50_ms),
            format!("{:.1}", stats.p99_ms),
        ),
        None => ("-".to_string(), "-".to_string()),
    };
    format!(
        "{:<22} {:>9} {:>10.1} {:>9.1} {:>9.1} {:>9} {:>9} {:>10.2} {:>7.0}% {:>8} {:>6}",
        label,
        human_bytes(payload),
        out.latency.mean_ms,
        out.latency.p50_ms,
        out.latency.p90_ms,
        e2e_p50,
        e2e_p99,
        out.throughput_mbps,
        out.fast_share * 100.0,
        out.committed_rounds,
        if out.safe { "ok" } else { "UNSAFE" },
    )
}

/// Header matching [`row`].
pub fn header() -> String {
    format!(
        "{:<22} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8} {:>6}",
        "protocol",
        "payload",
        "lat.mean",
        "lat.p50",
        "lat.p90",
        "e2e.p50",
        "e2e.p99",
        "MB/s",
        "fast",
        "rounds",
        "safe"
    )
}

/// Human-readable byte count (e.g. "400KB").
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1}MB", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{}KB", bytes / 1_000)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builder_chains() {
        let s = Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(10)),
            1,
            1,
        )
        .payload(1000)
        .secs(5)
        .seed(7)
        .forwarding(false);
        assert_eq!(s.payload, 1000);
        assert_eq!(s.secs, 5);
        assert!(!s.forwarding);
    }

    #[test]
    fn quick_run_produces_commits() {
        let s = Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(5)),
            1,
            1,
        )
        .payload(100)
        .secs(3);
        let out = run(&s);
        assert!(out.safe);
        assert!(out.committed_rounds > 10);
        assert!(out.latency.count > 5);
        assert!(out.throughput_mbps > 0.0);
    }

    #[test]
    fn open_loop_scenario_reports_end_to_end_latency() {
        let s = Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(5)),
            1,
            1,
        )
        .rate(200)
        .request_size(128)
        .secs(3);
        let out = run(&s);
        assert!(out.safe);
        assert!(out.requests_submitted > 300);
        assert!(out.requests_committed > 0);
        let e2e = out.client_latency.as_ref().expect("workload configured");
        assert!(e2e.count > 0);
        assert!(
            e2e.p50_ms >= out.latency.p50_ms,
            "e2e must dominate proposer latency"
        );
    }

    #[test]
    fn optimistic_scenario_commits_and_reports_rounds_per_commit() {
        // The icc (slow-path chained) engine is where the proposal /
        // certification overlap pays at every load; the banyan fast path
        // trades a fast-vote hop for the overlap and only wins once
        // payload transmission dominates, so it is exercised for safety
        // and determinism here, not cadence.
        let base = Scenario::new("icc", Topology::uniform(4, Duration::from_millis(5)), 1, 1)
            .payload(100)
            .secs(3);
        let off = run(&base);
        let on = run(&base.clone().optimistic());
        assert!(off.safe && on.safe);
        assert!(on.committed_rounds > 10, "pipelined chain makes progress");
        assert!(off.rounds_per_commit > 0.0 && on.rounds_per_commit > 0.0);
        assert!(
            on.rounds_per_commit < off.rounds_per_commit,
            "pipelining must shorten the commit cadence: on={} off={}",
            on.rounds_per_commit,
            off.rounds_per_commit
        );
        let banyan = run(&Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(5)),
            1,
            1,
        )
        .payload(100)
        .secs(3)
        .optimistic());
        assert!(banyan.safe && banyan.committed_rounds > 10);
    }

    #[test]
    fn row_dashes_e2e_without_workload() {
        let s = Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(5)),
            1,
            1,
        )
        .payload(100)
        .secs(2);
        let out = run(&s);
        assert!(out.client_latency.is_none());
        let line = row("banyan", 100, &out);
        assert_eq!(line.matches(" -").count(), 2, "two dashed e2e columns");
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(500), "500B");
        assert_eq!(human_bytes(400_000), "400KB");
        assert_eq!(human_bytes(1_500_000), "1.5MB");
    }
}
