//! End-to-end tests of the ancestor-aware speculative drain and the
//! latency-targeted batch policy (ISSUE 5 acceptance criteria): under
//! gossip, blind FIFO drains re-batch whatever uncommitted ancestors
//! already carry — the speculative drain must collapse those duplicate
//! inclusions by ≥90% for the commit-lagged baselines while losing
//! nothing and keeping goodput, and every knob must default off.

use banyan_bench::runner::{run_metrics, Scenario};
use banyan_mempool::WorkloadBatch;
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

/// The PR 4 dissemination setting where duplicate inclusions are worst:
/// saturated closed loop, gossip + retry, drained so loss accounting
/// settles.
fn gossiped(protocol: &str) -> Scenario {
    Scenario::new(
        protocol,
        Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000),
        1,
        1,
    )
    .closed_loop(128, 4, Duration::ZERO)
    .request_size(512)
    .secs(2)
    .seed(42)
    .gossip()
    .retry_timeout(Duration::from_millis(200))
    .drain(3)
}

/// The acceptance criterion: the speculative drain cuts the `dups`
/// column by ≥90% for HotStuff and Streamlet (whose commit lag made
/// blind drains re-batch multiple ancestor blocks), keeps it no worse
/// for Banyan, loses zero requests, and does not cost goodput.
#[test]
fn speculative_drain_collapses_duplicates_under_gossip() {
    for protocol in ["banyan", "hotstuff", "streamlet"] {
        let (blind, _) = run_metrics(&gossiped(protocol));
        let (spec, auditor) = run_metrics(&gossiped(protocol).speculative_drain());
        assert!(auditor.is_safe(), "{protocol}: unsafe speculative run");

        let blind_dups = blind.duplicate_requests_suppressed();
        let spec_dups = spec.duplicate_requests_suppressed();
        if matches!(protocol, "hotstuff" | "streamlet") {
            assert!(
                blind_dups >= 10,
                "{protocol}: control lost its duplication pathology \
                 ({blind_dups} dups) — the regression meter is gone"
            );
            assert!(
                (spec_dups as f64) <= 0.1 * blind_dups as f64,
                "{protocol}: speculative drain must cut dups >=90%: \
                 {blind_dups} -> {spec_dups}"
            );
        } else {
            assert!(
                spec_dups <= blind_dups,
                "{protocol}: speculation must never add dups: \
                 {blind_dups} -> {spec_dups}"
            );
        }

        // Zero loss: released leases put abandoned blocks' requests back.
        assert_eq!(
            spec.requests_lost(),
            0,
            "{protocol}: lost requests despite gossip+retry+speculation"
        );
        assert_eq!(
            spec.requests_completed, spec.requests_submitted,
            "{protocol}: every submitted request must commit after the drain"
        );
        // No goodput loss: the work the blind drain wasted on duplicates
        // is reclaimed, so useful commits must hold (tolerance for the
        // schedule shifting under different batch compositions).
        assert!(
            spec.requests_committed() as f64 >= 0.9 * blind.requests_committed() as f64,
            "{protocol}: goodput regressed: {} -> {} committed",
            blind.requests_committed(),
            spec.requests_committed()
        );
    }
}

/// With the dissemination layer fully off, speculation alone already
/// repairs the baseline's loss pathology: requests drained into
/// never-finalized proposals are released back into the pool instead of
/// being stranded (`banyan` loses plenty in this regime without it — see
/// `dissemination.rs::baseline_without_dissemination_strands_requests`).
#[test]
fn speculation_releases_what_the_baseline_loses() {
    let base = Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000),
        1,
        1,
    )
    .closed_loop(128, 4, Duration::ZERO)
    .request_size(512)
    .secs(2)
    .seed(42)
    .drain(3);
    let (blind, _) = run_metrics(&base);
    let (spec, auditor) = run_metrics(&base.speculative_drain());
    assert!(auditor.is_safe());
    assert!(
        blind.requests_lost() > 0,
        "the no-dissemination control must strand requests past the knee"
    );
    assert!(
        spec.requests_lost() < blind.requests_lost(),
        "release-on-abandon must recover stranded requests: {} -> {}",
        blind.requests_lost(),
        spec.requests_lost()
    );
}

/// The latency-targeted batch policy holds blocks until a size or age
/// target: at a trickle load, eager draining ships many near-empty
/// batches, while the policy ships fewer, fuller ones — without losing a
/// request and with the added latency bounded by `max_age`.
#[test]
fn batch_policy_trades_bounded_latency_for_fuller_blocks() {
    let low = |policy: bool| {
        let mut s = Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(5)),
            1,
            1,
        )
        .closed_loop(4, 2, Duration::from_millis(5))
        .request_size(256)
        .secs(3)
        .seed(42)
        .gossip()
        .retry_timeout(Duration::from_millis(400))
        .drain(2);
        if policy {
            // ~8 requests per block, or a 60 ms old request.
            s = s.batch_policy(2_048, Duration::from_millis(60));
        }
        s
    };
    let batches_of = |m: &banyan_simnet::metrics::RunMetrics| {
        let mut batches = 0u64;
        let mut records = 0u64;
        for c in m.commits.iter().filter(|c| c.replica == c.entry.proposer) {
            if let Some(b) = WorkloadBatch::decode(&c.entry.payload) {
                batches += 1;
                records += b.requests.len() as u64;
            }
        }
        (batches, records as f64 / batches.max(1) as f64)
    };

    let (eager, _) = run_metrics(&low(false));
    let (held, auditor) = run_metrics(&low(true));
    assert!(auditor.is_safe());
    let (eager_batches, eager_fill) = batches_of(&eager);
    let (held_batches, held_fill) = batches_of(&held);
    assert!(eager_batches > 0 && held_batches > 0);
    assert!(
        held_fill > eager_fill,
        "policy must produce fuller batches: {eager_fill:.2} -> {held_fill:.2} records/batch"
    );
    assert_eq!(held.requests_lost(), 0, "deferral must never lose work");
    assert_eq!(
        held.requests_completed, held.requests_submitted,
        "every request still commits under the policy"
    );
    // The age escape bounds the latency cost: p99 grows by at most the
    // 60 ms target plus scheduling slack, never unboundedly.
    let (eager_p99, held_p99) = (
        eager.client_latency_stats().p99_ms,
        held.client_latency_stats().p99_ms,
    );
    assert!(
        held_p99 <= eager_p99 + 120.0,
        "deferral latency must stay bounded by max_age: p99 {eager_p99:.1} -> {held_p99:.1} ms"
    );
}

/// Speculation and batch policy ride the same deterministic event loop:
/// same seed ⇒ bit-identical runs, different seed ⇒ divergence.
#[test]
fn speculative_runs_are_deterministic() {
    let scenario = |seed: u64| {
        gossiped("hotstuff")
            .seed(seed)
            .speculative_drain()
            .batch_policy(1_024, Duration::from_millis(40))
    };
    let (a, auditor) = run_metrics(&scenario(42));
    let (b, _) = run_metrics(&scenario(42));
    assert!(auditor.is_safe());
    assert_eq!(a, b, "same seed must reproduce the speculative run exactly");
    let (c, _) = run_metrics(&scenario(43));
    assert_ne!(a, c, "different seeds must diverge");
}
