//! End-to-end tests of optimistic proposal pipelining (ISSUE 8): the
//! Moonshot-style overlap must shorten the chained engine's commit
//! cadence, survive a leader that *equivocates on its optimistic slot*
//! (different optimistic proposals to different peers), and lose nothing
//! under gossip + retry.

use banyan_bench::runner::{run_metrics, Scenario};
use banyan_core::chained::ByzantineMode;
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

/// A gossiping, retrying closed loop with optimism on — the setting
/// where an abandoned optimistic proposal would surface as lost or
/// duplicated requests if the fallback/release machinery were wrong.
fn optimistic_loop(protocol: &str) -> Scenario {
    Scenario::new(
        protocol,
        Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000),
        1,
        1,
    )
    .closed_loop(32, 4, Duration::ZERO)
    .request_size(512)
    .secs(3)
    .seed(42)
    .gossip()
    .retry_timeout(Duration::from_millis(200))
    .drain(3)
    .speculative_drain()
    .optimistic()
}

/// The pipelining headline, end to end: with optimism on, the icc
/// engine's explicit-commit cadence (rounds per commit) must be strictly
/// shorter than the flag-off baseline on the same workload.
#[test]
fn optimistic_pipelining_shortens_the_commit_cadence() {
    let on = optimistic_loop("icc");
    let mut off = optimistic_loop("icc");
    off.optimistic = false;
    let (m_on, a_on) = run_metrics(&on);
    let (m_off, a_off) = run_metrics(&off);
    assert!(a_on.is_safe() && a_off.is_safe());
    let observer = banyan_types::ids::ReplicaId(0);
    let (cadence_on, cadence_off) = (
        m_on.mean_commit_interval_ms(observer),
        m_off.mean_commit_interval_ms(observer),
    );
    assert!(
        cadence_on > 0.0 && cadence_off > 0.0,
        "both runs must commit"
    );
    assert!(
        cadence_on < cadence_off,
        "optimism must shorten the commit cadence: {cadence_on:.3} ms !< {cadence_off:.3} ms"
    );
}

/// The equivocation regression: replica 1 sends *different* optimistic
/// proposals to different halves of the cluster whenever it holds the
/// next round's leader slot. The honest majority must refuse to certify
/// the split proposal, fall back to the certified parent, and keep
/// committing — with zero requests lost and agreement intact.
#[test]
fn optimistic_equivocation_falls_back_and_loses_nothing() {
    for protocol in ["banyan", "icc"] {
        let honest = optimistic_loop(protocol);
        let attacked = optimistic_loop(protocol).byzantine(1, ByzantineMode::EquivocateOptimistic);
        let (h, _) = run_metrics(&honest);
        let (m, auditor) = run_metrics(&attacked);
        assert!(
            auditor.is_safe(),
            "{protocol}: equivocating optimistic leader broke agreement: {:?}",
            auditor.violations()
        );
        assert_eq!(
            m.requests_lost(),
            0,
            "{protocol}: requests lost under optimistic equivocation"
        );
        assert!(
            auditor.committed_rounds() > 50,
            "{protocol}: commit progress did not resume past the equivocator \
             ({} rounds)",
            auditor.committed_rounds()
        );
        // One equivocator out of four leader slots costs its own rounds at
        // worst — the honest majority's cadence must survive.
        assert!(
            m.commits.len() * 2 > h.commits.len(),
            "{protocol}: equivocation collapsed throughput ({} vs honest {})",
            m.commits.len(),
            h.commits.len()
        );
    }
}

/// Abandoned optimistic inclusions must not double-commit: the lease
/// release returns requests with their original identity and the
/// exactly-once dedup keeps duplicate inclusions within the 1% gate even
/// while an equivocator forces abandonment every fourth round.
#[test]
fn optimistic_equivocation_stays_within_the_duplicate_budget() {
    let attacked = optimistic_loop("banyan").byzantine(1, ByzantineMode::EquivocateOptimistic);
    let (m, auditor) = run_metrics(&attacked);
    assert!(auditor.is_safe());
    let committed = m.requests_committed();
    let dups = m.duplicate_requests_suppressed();
    assert!(committed > 500, "attack run barely committed ({committed})");
    assert!(
        (dups as f64) <= 0.01 * committed as f64,
        "duplicate inclusions blew the 1% budget: {dups} of {committed}"
    );
}
