//! Determinism of the full scenario pipeline: the shared driver layer
//! orders every event by `(time, seq)` and all randomness flows from the
//! scenario seed, so the same `Scenario` must reproduce *bit-identical*
//! `RunMetrics` — the whole commit log, every counter — and a different
//! seed must diverge.

use banyan_bench::runner::{build_simulation, run_metrics, run_observed, Scenario};
use banyan_bench::sweep::{knee_index, measure};
use banyan_runtime::driver::CommitSink;
use banyan_simnet::topology::Topology;
use banyan_types::engine::CommitEntry;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

fn scenario(seed: u64) -> Scenario {
    Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(10)),
        1,
        1,
    )
    .payload(2_000)
    .secs(3)
    .seed(seed)
}

/// An open-loop client workload: 400 req/s of 300 B each into per-replica
/// mempools, replacing the leader-minted payloads.
fn client_scenario(seed: u64) -> Scenario {
    Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(10)),
        1,
        1,
    )
    .rate(400)
    .request_size(300)
    .secs(3)
    .seed(seed)
}

#[test]
fn same_seed_reproduces_bit_identical_metrics() {
    let (first, auditor_a) = run_metrics(&scenario(42));
    let (second, auditor_b) = run_metrics(&scenario(42));
    assert!(auditor_a.is_safe() && auditor_b.is_safe());
    assert!(!first.commits.is_empty(), "scenario must make progress");
    // Full structural equality: commit log, counters, end time.
    assert_eq!(first, second, "same seed must reproduce the run exactly");
}

#[test]
fn different_seed_diverges() {
    let (first, _) = run_metrics(&scenario(42));
    let (other, _) = run_metrics(&scenario(43));
    // Jitter reshuffles arrival times, so the runs must not be identical.
    assert_ne!(
        first, other,
        "different seeds should produce different runs"
    );
}

#[test]
fn determinism_holds_for_every_protocol() {
    for protocol in ["banyan", "icc", "hotstuff", "streamlet"] {
        let build = || {
            Scenario::new(
                protocol,
                Topology::uniform(4, Duration::from_millis(10)),
                1,
                1,
            )
            .payload(500)
            .secs(2)
            .seed(7)
        };
        let (a, _) = run_metrics(&build());
        let (b, _) = run_metrics(&build());
        assert_eq!(a, b, "{protocol}: same seed must reproduce the run");
        assert!(!a.commits.is_empty(), "{protocol}: no progress");
    }
}

#[test]
fn open_loop_workload_reproduces_bit_identical_metrics() {
    let (first, auditor_a) = run_metrics(&client_scenario(42));
    let (second, auditor_b) = run_metrics(&client_scenario(42));
    assert!(auditor_a.is_safe() && auditor_b.is_safe());
    assert!(
        first.requests_submitted > 500,
        "open loop submitted only {}",
        first.requests_submitted
    );
    assert!(
        first.requests_committed() > 0,
        "no client request reached a committed block"
    );
    // Bit-identical: the commit log (including every batched request's
    // submit timestamp) and all counters must match across reruns.
    assert_eq!(first, second, "same seed must reproduce the run exactly");
    assert_eq!(
        first.client_latencies(),
        second.client_latencies(),
        "end-to-end samples must replay exactly"
    );
}

#[test]
fn open_loop_workload_diverges_across_seeds() {
    let (first, _) = run_metrics(&client_scenario(42));
    let (other, _) = run_metrics(&client_scenario(43));
    assert_ne!(
        first, other,
        "different seeds should retarget clients and reshuffle jitter"
    );
}

/// Sanity invariant of the end-to-end metric: a request is submitted
/// before the block carrying it is proposed, so submit→commit latency
/// dominates the paper's proposer latency at every percentile we report.
/// (Strictly, dominance is per-block, not cross-population — the
/// percentile comparison is a regression guard that holds for this
/// pinned seed, where the continuous request stream puts a batch in
/// essentially every block and mempool wait adds a fat margin.)
#[test]
fn client_latency_dominates_proposer_latency() {
    let (metrics, auditor) = run_metrics(&client_scenario(7));
    assert!(auditor.is_safe());
    let proposer = metrics.proposer_latency_stats();
    let client = metrics.client_latency_stats();
    assert!(client.count > 100, "only {} client samples", client.count);
    assert!(
        client.p50_ms >= proposer.p50_ms,
        "e2e p50 {:.2} ms < proposer p50 {:.2} ms",
        client.p50_ms,
        proposer.p50_ms
    );
    assert!(
        client.p99_ms >= proposer.p99_ms,
        "e2e p99 {:.2} ms < proposer p99 {:.2} ms",
        client.p99_ms,
        proposer.p99_ms
    );
}

/// A closed-loop population: 12 clients × 4 outstanding requests of 300 B
/// each, 2 ms think time.
fn closed_scenario(seed: u64) -> Scenario {
    Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(10)),
        1,
        1,
    )
    .closed_loop(12, 4, Duration::from_millis(2))
    .request_size(300)
    .secs(3)
    .seed(seed)
}

#[test]
fn closed_loop_reproduces_bit_identical_metrics() {
    let (first, auditor_a) = run_metrics(&closed_scenario(42));
    let (second, auditor_b) = run_metrics(&closed_scenario(42));
    assert!(auditor_a.is_safe() && auditor_b.is_safe());
    assert!(
        first.requests_committed() > 100,
        "closed loop committed only {}",
        first.requests_committed()
    );
    // Bit-identical: completions, resubmissions and every batched
    // submit timestamp must replay exactly.
    assert_eq!(first, second, "same seed must reproduce the run exactly");
    assert_eq!(first.client_latencies(), second.client_latencies());
    let (other, _) = run_metrics(&closed_scenario(43));
    assert_ne!(first, other, "different seeds should diverge");
}

/// The defining closed-loop invariant: the population never has more than
/// `clients × window` uncommitted requests in flight, and the workload's
/// own bookkeeping balances (submitted = completed + in flight).
#[test]
fn closed_loop_window_invariant_holds() {
    let scenario = closed_scenario(42);
    let mut sim = build_simulation(&scenario);
    // Check the invariant at several points mid-run, not just at the end.
    for step in 1..=6 {
        sim.run_until(Time(Duration::from_millis(step * 500).as_nanos()));
        let w = sim.closed_loop().expect("closed loop attached");
        assert!(
            w.in_flight() as u64 <= w.max_in_flight(),
            "at {step}: {} in flight exceeds the {}-request cap",
            w.in_flight(),
            w.max_in_flight()
        );
        assert_eq!(
            w.submitted(),
            w.completed() + w.in_flight() as u64,
            "workload bookkeeping must balance"
        );
    }
    let w = sim.closed_loop().expect("closed loop attached");
    assert_eq!(w.max_in_flight(), 48);
    assert!(w.completed() > 0, "the loop must actually turn over");
    assert_eq!(
        sim.metrics().requests_submitted,
        w.submitted(),
        "simulator and workload must agree on submissions"
    );
}

/// Goodput must grow with offered load up to the knee: more closed-loop
/// clients commit more requests per second until the cluster saturates.
/// Deterministic (seeded), so this is a stable regression guard.
#[test]
fn saturation_sweep_is_monotone_up_to_the_knee() {
    let base = Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(5)),
        1,
        1,
    )
    .request_size(256)
    .secs(3)
    .seed(42);
    let points: Vec<_> = [2u16, 8, 32]
        .iter()
        .map(|&clients| measure(&base, clients, 4, Duration::ZERO))
        .collect();
    let knee = knee_index(&points).expect("sweep commits requests");
    for i in 1..=knee {
        assert!(
            points[i].goodput_rps > points[i - 1].goodput_rps,
            "goodput must rise before the knee: {:?}",
            points
        );
    }
    // End-to-end latency stays sane (nonzero, bounded) at every point.
    for p in &points {
        assert!(p.p50_ms > 0.0 && p.p99_ms >= p.p50_ms);
    }
}

/// Sharding the pending queue must be invisible to every observable
/// number: the per-request arrival stamps give the merge a total order,
/// so `shards(4)` replays the historical single-FIFO run bit-for-bit —
/// commit log, counters, latency samples, everything. Exercised both on
/// the open-loop stream and on a gossiping closed loop with the
/// speculative drain, where drain order feeds back into proposals.
#[test]
fn shard_count_never_changes_the_run() {
    let (single, auditor_a) = run_metrics(&client_scenario(42).shards(1));
    let (sharded, auditor_b) = run_metrics(&client_scenario(42).shards(4));
    assert!(auditor_a.is_safe() && auditor_b.is_safe());
    assert!(single.requests_committed() > 0, "no progress");
    assert_eq!(
        single, sharded,
        "shards(4) must replay the single-FIFO run bit-for-bit"
    );
    assert_eq!(single.client_latencies(), sharded.client_latencies());

    let contended = |shards: usize| {
        closed_scenario(42)
            .gossip()
            .speculative_drain()
            .shards(shards)
    };
    let (single, _) = run_metrics(&contended(1));
    for shards in [2, 4, 7] {
        let (sharded, auditor) = run_metrics(&contended(shards));
        assert!(auditor.is_safe());
        assert_eq!(
            single, sharded,
            "shards({shards}) diverged under gossip + speculative drain"
        );
    }
}

/// Flag-off bit-identity: with `Scenario::optimistic` left at its
/// default, the run must reproduce the pre-pipelining (PR 7) numbers
/// exactly — the goldens below were captured from a build of that
/// revision and every engine must still hit them, down to the total
/// byte count. Any drift means a "defaults-off" code path picked up
/// optimistic behavior.
#[test]
fn optimistic_off_is_bit_identical_to_seed() {
    // (protocol, commits, messages, bytes) on the `scenario(42)` shape.
    let goldens = [
        ("banyan", 584usize, 5_262u64, 4_778_241u64),
        ("icc", 580, 8_724, 4_634_532),
        ("hotstuff", 576, 882, 1_029_615),
        ("streamlet", 296, 1_131, 585_207),
    ];
    for (protocol, commits, messages, bytes) in goldens {
        let build = || {
            Scenario::new(
                protocol,
                Topology::uniform(4, Duration::from_millis(10)),
                1,
                1,
            )
            .payload(2_000)
            .secs(3)
            .seed(42)
        };
        assert!(!build().optimistic, "flag must default off");
        let (a, auditor) = run_metrics(&build());
        assert!(auditor.is_safe());
        assert_eq!(a.commits.len(), commits, "{protocol}: commit count drifted");
        assert_eq!(
            a.messages_sent, messages,
            "{protocol}: message count drifted"
        );
        assert_eq!(a.bytes_sent, bytes, "{protocol}: byte count drifted");
        // And the rerun reproduces every latency sample bit-for-bit.
        let (b, _) = run_metrics(&build());
        assert_eq!(a, b, "{protocol}: flag-off run must replay exactly");
        assert_eq!(a.proposer_latencies(), b.proposer_latencies());
    }
}

/// With optimism on, the run is still a pure function of the seed: same
/// seed ⇒ identical `RunMetrics` (commit log, counters, every latency
/// sample), different seed ⇒ divergence.
#[test]
fn optimistic_on_is_deterministic_per_seed() {
    for protocol in ["banyan", "icc"] {
        let build = |seed| {
            Scenario::new(
                protocol,
                Topology::uniform(4, Duration::from_millis(10)),
                1,
                1,
            )
            .rate(400)
            .request_size(300)
            .secs(3)
            .seed(seed)
            .optimistic()
        };
        let (a, auditor_a) = run_metrics(&build(42));
        let (b, auditor_b) = run_metrics(&build(42));
        assert!(auditor_a.is_safe() && auditor_b.is_safe());
        assert!(
            !a.commits.is_empty(),
            "{protocol}: no progress with optimism"
        );
        assert_eq!(a, b, "{protocol}: optimistic run must replay exactly");
        assert_eq!(a.client_latencies(), b.client_latencies());
        let (other, _) = run_metrics(&build(43));
        assert_ne!(a, other, "{protocol}: different seeds should diverge");
    }
}

/// The measured-crypto configurations are still pure functions of the
/// seed: same seed ⇒ identical `RunMetrics` down to the new verify
/// counters — and each mode's counters show the behavior that names it
/// (unbatched never batches or caches; batched does both).
#[test]
fn crypto_modes_are_deterministic_and_charge_as_configured() {
    use banyan_bench::runner::CryptoMode;
    for mode in [CryptoMode::Unbatched, CryptoMode::Batched] {
        let build = || scenario(42).crypto(mode);
        let (a, auditor_a) = run_metrics(&build());
        let (b, auditor_b) = run_metrics(&build());
        assert!(auditor_a.is_safe() && auditor_b.is_safe());
        assert!(!a.commits.is_empty(), "{mode:?}: no progress");
        assert_eq!(a, b, "{mode:?}: same seed must replay exactly");
        assert!(a.sigs_verified > 0, "{mode:?}: verified nothing");
        assert!(a.verify_cpu_ms > 0, "{mode:?}: charged no CPU time");
        match mode {
            CryptoMode::Batched => {
                assert!(a.verify_batches > 0, "batched mode never batched");
                assert!(a.cert_cache_hits > 0, "cert cache never hit");
            }
            _ => {
                assert_eq!(a.verify_batches, 0, "unbatched mode batched");
                assert_eq!(a.cert_cache_hits, 0, "unbatched mode cached");
            }
        }
    }
    // Crypto off (the default) must charge and cache nothing — that run
    // is the one the flag-off goldens above pin bit-for-bit.
    let (off, _) = run_metrics(&scenario(42));
    assert_eq!(off.verify_cpu_ms, 0, "crypto-off charged CPU time");
    assert_eq!(off.cert_cache_hits, 0, "crypto-off hit a cache");
}

/// A sink that tallies commits per replica — exercises the same
/// `CommitSink` trait the simulator and TCP runner collect through.
#[derive(Default)]
struct CountingSink {
    per_replica: std::collections::BTreeMap<u16, usize>,
    total: usize,
}

impl CommitSink for CountingSink {
    fn on_commit(&mut self, replica: ReplicaId, _entry: CommitEntry) {
        *self.per_replica.entry(replica.0).or_insert(0) += 1;
        self.total += 1;
    }
}

#[test]
fn observed_runs_stream_every_commit_through_the_shared_sink() {
    let mut sink = CountingSink::default();
    let outcome = run_observed(&scenario(42), &mut sink);
    assert!(outcome.safe);
    let (metrics, _) = run_metrics(&scenario(42));
    assert_eq!(
        sink.total,
        metrics.commits.len(),
        "sink must see every observed commit"
    );
    // All four replicas are live in this scenario; each should commit.
    assert_eq!(sink.per_replica.len(), 4);
}
