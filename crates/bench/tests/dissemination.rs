//! End-to-end tests of the request-dissemination layer: gossip, client
//! retry and submit fan-out recover requests that the baseline loses to
//! never-finalized proposals, commit every request exactly once, and stay
//! bit-deterministic per seed.

use banyan_bench::runner::{run_metrics, Scenario};
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

/// A closed-loop population big enough to push all three engines past
/// their saturation knee on this topology (where the baseline provably
/// loses requests — see the `saturation_sweep` harness).
fn saturated(protocol: &str) -> Scenario {
    Scenario::new(
        protocol,
        Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000),
        1,
        1,
    )
    .closed_loop(128, 4, Duration::ZERO)
    .request_size(512)
    .secs(2)
    .seed(42)
}

/// The acceptance criterion: with gossip + retry enabled, a drained
/// closed-loop run loses nothing — every submitted request is observed
/// committed, for all three engines.
#[test]
fn gossip_and_retry_drain_to_zero_loss() {
    for protocol in ["banyan", "hotstuff", "streamlet"] {
        let scenario = saturated(protocol)
            .gossip()
            .retry_timeout(Duration::from_millis(200))
            .drain(3);
        let (m, auditor) = run_metrics(&scenario);
        assert!(auditor.is_safe(), "{protocol}: unsafe run");
        assert!(m.requests_submitted > 0, "{protocol}: nothing submitted");
        assert_eq!(
            m.requests_lost(),
            0,
            "{protocol}: lost {} of {} requests despite gossip+retry \
             (completed {}, pending {})",
            m.requests_lost(),
            m.requests_submitted,
            m.requests_completed,
            m.requests_pending
        );
        assert_eq!(
            m.requests_completed, m.requests_submitted,
            "{protocol}: after the drain every submitted request must have committed"
        );
        assert_eq!(m.requests_pending, 0, "{protocol}: pools must drain");
    }
}

/// The baseline control: the same saturated scenario without the
/// dissemination layer strands requests even after a drain phase — the
/// exact failure mode the layer exists to fix.
#[test]
fn baseline_without_dissemination_strands_requests() {
    // drain_secs alone does not enable dissemination features, so this
    // stays a pure control: frozen population, no retry, no gossip.
    let (m, auditor) = run_metrics(&saturated("banyan").drain(3));
    assert!(auditor.is_safe());
    assert!(
        m.requests_lost() > 0,
        "expected the no-retry baseline to lose requests past the knee \
         (submitted {}, completed {}, pending {})",
        m.requests_submitted,
        m.requests_completed,
        m.requests_pending
    );
    assert_eq!(m.requests_retried, 0, "baseline must not retry");
}

/// Exactly-once: a request fanned out to every pool, gossiped, and
/// aggressively retried still commits (and is measured) exactly once.
#[test]
fn fanned_out_gossiped_and_retried_requests_commit_exactly_once() {
    let scenario = Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(5)),
        1,
        1,
    )
    .closed_loop(8, 2, Duration::ZERO)
    .request_size(256)
    .secs(2)
    .seed(7)
    .gossip()
    .fanout(4)
    .retry_timeout(Duration::from_millis(30))
    .drain(1);
    let (m, auditor) = run_metrics(&scenario);
    assert!(auditor.is_safe());
    // Every request committed, none lost, none double-counted: the
    // deduped committed count equals the workload's first-delivery count
    // equals the number of distinct submitted ids.
    assert_eq!(m.requests_lost(), 0);
    assert_eq!(m.requests_completed, m.requests_submitted);
    assert_eq!(
        m.requests_committed(),
        m.requests_submitted,
        "deduped commit count must equal distinct submitted requests"
    );
    assert_eq!(
        m.client_latencies().len() as u64,
        m.requests_submitted,
        "one latency sample per request, never two"
    );
}

/// Dissemination traffic rides the same deterministic event loop as
/// consensus: same seed ⇒ bit-identical run, different seed ⇒ divergence.
#[test]
fn dissemination_runs_are_deterministic() {
    let scenario = |seed: u64| {
        saturated("banyan")
            .seed(seed)
            .gossip()
            .fanout(2)
            .retry_timeout(Duration::from_millis(100))
            .drain(2)
    };
    let (a, auditor_a) = run_metrics(&scenario(42));
    let (b, _) = run_metrics(&scenario(42));
    assert!(auditor_a.is_safe());
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    let (c, _) = run_metrics(&scenario(43));
    assert_ne!(a, c, "different seeds must diverge");
}

/// Gossip's latency claim (ROADMAP "Request dissemination"): at low
/// rates, a request no longer waits in one replica's pool until that
/// replica happens to lead — it reaches every potential leader within
/// one gossip round, cutting the end-to-end tail for every engine.
#[test]
fn gossip_cuts_tail_latency_at_low_rates() {
    let low = |protocol: &str| {
        Scenario::new(
            protocol,
            Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000),
            1,
            1,
        )
        .closed_loop(2, 1, Duration::from_millis(20))
        .request_size(512)
        .secs(3)
        .seed(42)
    };
    for protocol in ["banyan", "hotstuff", "streamlet"] {
        let baseline = banyan_bench::runner::run(&low(protocol));
        let gossiped = banyan_bench::runner::run(&low(protocol).gossip());
        let (b, g) = (
            baseline.client_latency.expect("client-driven"),
            gossiped.client_latency.expect("client-driven"),
        );
        assert!(
            g.p99_ms < b.p99_ms,
            "{protocol}: gossip must cut the e2e tail, got p99 {:.2} -> {:.2} ms",
            b.p99_ms,
            g.p99_ms
        );
    }
}

/// The propagation-limited tree (ISSUE 10): pushing through a bounded
/// degree-2 fanout tree with compact announce relays must still reach
/// every potential leader — zero loss with *no* client retry to mask a
/// hole in the tree — while spending at most half of broadcast gossip's
/// bytes per request on an n=8 cluster.
#[test]
fn fanout_tree_reaches_every_replica_at_half_the_gossip_bytes() {
    let n8 = |tree: bool| {
        let mut s = Scenario::new(
            "banyan",
            Topology::uniform(8, Duration::from_millis(5)).with_egress_bps(100_000_000),
            2,
            1,
        )
        .closed_loop(16, 2, Duration::ZERO)
        .request_size(512)
        .secs(2)
        .seed(42)
        .gossip()
        .drain(3);
        if tree {
            s = s.fanout_tree(2);
        }
        s
    };
    let (broadcast, _) = run_metrics(&n8(false));
    let (tree, auditor) = run_metrics(&n8(true));
    assert!(auditor.is_safe());
    assert!(tree.requests_submitted > 0);
    assert_eq!(
        tree.requests_lost(),
        0,
        "a request pushed down the tree must reach a leader without retry \
         (completed {} of {})",
        tree.requests_completed,
        tree.requests_submitted
    );
    assert_eq!(tree.requests_completed, tree.requests_submitted);
    assert!(tree.gossip_bytes > 0, "tree gossip must be metered");
    let tree_per_req = tree.gossip_bytes as f64 / tree.requests_submitted as f64;
    let bcast_per_req = broadcast.gossip_bytes as f64 / broadcast.requests_submitted as f64;
    assert!(
        tree_per_req <= 0.5 * bcast_per_req,
        "tree must spend at most half of broadcast's gossip bytes per \
         request, got {tree_per_req:.1} vs {bcast_per_req:.1}"
    );
}

/// A cohort-aggregated population riding the fanout tree is still
/// bit-deterministic per seed — the tentpole pair composes without
/// breaking the simulator's reproducibility contract.
#[test]
fn cohort_tree_runs_are_deterministic() {
    let scenario = |seed: u64| {
        Scenario::new(
            "banyan",
            Topology::uniform(4, Duration::from_millis(5)).with_egress_bps(100_000_000),
            1,
            1,
        )
        .cohort_load(100_000, 32, 4, Duration::ZERO)
        .member_interval(Duration::from_secs(25))
        .max_outstanding(256)
        .fanout_tree(2)
        .request_size(512)
        .secs(2)
        .seed(seed)
        .drain(2)
    };
    let (a, auditor_a) = run_metrics(&scenario(42));
    let (b, _) = run_metrics(&scenario(42));
    assert!(auditor_a.is_safe());
    assert!(a.requests_submitted > 1_000, "the modeled load must flow");
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    let (c, _) = run_metrics(&scenario(43));
    assert_ne!(a, c, "different seeds must diverge");
}
