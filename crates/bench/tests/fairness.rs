//! Per-client fairness under a censoring Byzantine leader (ROADMAP
//! "Per-client fairness" follow-up): a replica that silently drops the
//! targeted clients' requests when batching hurts *only* those clients —
//! and the dissemination layer (gossip + retry) restores their service.
//!
//! The mechanism: a targeted request that lands in the censor's pool is
//! drained and discarded. With retry (but no gossip) the client must wait
//! out a full retransmission period — and the retry may land in the
//! censor's pool again — so the targeted clients' mean end-to-end latency
//! blows up while everyone else's stays at the consensus floor. With
//! gossip on top, every honest replica holds a copy, so the next honest
//! leader commits it within a round or two and the spread collapses.

use banyan_bench::runner::{run_metrics, Scenario};
use banyan_core::chained::ByzantineMode;
use banyan_simnet::topology::Topology;
use banyan_types::time::Duration;

/// Clients targeted by the censor (of 8 clients total).
const TARGETED: [u16; 2] = [0, 1];
const UNTARGETED: [u16; 6] = [2, 3, 4, 5, 6, 7];

/// 8 closed-loop clients on a 4-replica cluster; replica 1 censors
/// clients 0 and 1 whenever it proposes. Retry is always on (without it
/// censored requests are simply lost and produce *no* latency samples at
/// all — the slot leaks instead of the latency blowing up).
fn censored(gossip: bool) -> Scenario {
    let mut scenario = Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(5)),
        1,
        1,
    )
    .closed_loop(8, 2, Duration::ZERO)
    .request_size(256)
    .secs(4)
    .seed(42)
    .retry_timeout(Duration::from_millis(400))
    .drain(2)
    .byzantine(
        1,
        ByzantineMode::CensorClients {
            clients: TARGETED.to_vec(),
        },
    );
    if gossip {
        scenario = scenario.gossip();
    }
    scenario
}

#[test]
fn censorship_blows_up_only_the_targeted_clients_spread() {
    let (m, auditor) = run_metrics(&censored(false));
    assert!(auditor.is_safe(), "censorship is protocol-valid");

    let targeted_max = m.max_client_mean_ms(&TARGETED);
    let untargeted_max = m.max_client_mean_ms(&UNTARGETED);
    assert!(untargeted_max > 0.0, "untargeted clients must commit");
    assert!(
        targeted_max > 3.0 * untargeted_max,
        "targeted clients' mean latency must blow up: targeted max \
         {targeted_max:.1} ms vs untargeted max {untargeted_max:.1} ms"
    );

    // The ClientLoadSummary spread tells the same story: its worst
    // per-client mean IS a targeted client, its best is untouched.
    let summary = m.client_load_summary();
    assert_eq!(summary.clients_observed, 8, "nobody is starved outright");
    assert!(
        (summary.max_client_mean_ms - targeted_max).abs() < 1e-9,
        "the summary's worst client must be a censored one"
    );
    assert!(
        summary.min_client_mean_ms <= untargeted_max,
        "the summary's best client must be an untouched one"
    );
}

/// Starvation under *skewed submit rates* (the last open fairness ROADMAP
/// bullet): a client that submits 40× slower than its peers must neither
/// vanish from service nor see its latency blow up — heavy clients'
/// floods may not starve light ones out of the leaders' batches.
#[test]
fn skewed_submit_rates_do_not_starve_slow_clients() {
    const SLOW: u16 = 7;
    let scenario = Scenario::new(
        "banyan",
        Topology::uniform(4, Duration::from_millis(5)),
        1,
        1,
    )
    .closed_loop(8, 2, Duration::from_millis(2))
    // Clients 0..=6 resubmit after 2 ms; client 7 after 80 ms.
    .think_multipliers(vec![1, 1, 1, 1, 1, 1, 1, 40])
    .request_size(256)
    .secs(4)
    .seed(42)
    .gossip()
    .retry_timeout(Duration::from_millis(400))
    .drain(2);
    let (m, auditor) = run_metrics(&scenario);
    assert!(auditor.is_safe());

    let series = m.per_client_latencies();
    assert_eq!(
        series.len(),
        8,
        "every client commits, including the slow one"
    );
    let fast_total: usize = (0..SLOW).map(|c| series[&c].len()).sum();
    let slow_count = series[&SLOW].len();
    assert!(
        slow_count * 8 < fast_total,
        "the x40 client must actually offer far less load: {slow_count} vs {fast_total}"
    );
    // The starvation check: a light client's *latency* stays at the
    // consensus floor — its rare requests ride the next blocks like
    // anyone else's instead of queueing behind the heavy clients.
    let slow_mean = m.max_client_mean_ms(&[SLOW]);
    let fast_max = m.max_client_mean_ms(&[0, 1, 2, 3, 4, 5, 6]);
    assert!(slow_mean > 0.0 && fast_max > 0.0);
    assert!(
        slow_mean < 2.0 * fast_max,
        "slow client starved: mean {slow_mean:.1} ms vs busiest fast client {fast_max:.1} ms"
    );
    assert_eq!(m.requests_lost(), 0, "skew must not strand requests");
}

#[test]
fn gossip_plus_retry_restore_fairness_under_censorship() {
    let (m, auditor) = run_metrics(&censored(true));
    assert!(auditor.is_safe());

    let targeted_max = m.max_client_mean_ms(&TARGETED);
    let untargeted_max = m.max_client_mean_ms(&UNTARGETED);
    assert!(untargeted_max > 0.0, "untargeted clients must commit");
    assert!(
        targeted_max < 2.0 * untargeted_max,
        "with gossip every honest replica holds a copy, so censored \
         requests commit via the next honest leader: targeted max \
         {targeted_max:.1} ms vs untargeted max {untargeted_max:.1} ms"
    );
    // And nothing is lost: the censor can delay the targeted clients'
    // requests, not make them disappear.
    assert_eq!(m.requests_lost(), 0);
}
