//! CI rolling-restart acceptance gate.
//!
//! Two staggered replica restarts under a gossiping, retrying closed-loop
//! workload must lose zero requests and re-converge for every engine:
//! each restarted replica drops all volatile state at the crash, rebuilds
//! from its durable snapshot at the rejoin, catches up (ranged sync for
//! the chained and Streamlet engines, native view sync for HotStuff), and
//! commits new blocks afterwards. The run is agreement-checked throughout
//! by the safety auditor.

use banyan_bench::runner::{run_metrics, Scenario};
use banyan_simnet::topology::Topology;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

/// Builds the gate scenario: 4 replicas on a uniform 5 ms WAN, a
/// closed-loop population with gossip + client retry, and two staggered
/// restarts — replica 1 is down for seconds 2–4, replica 2 for 4–6 — so
/// the cluster never dips below `n − f` live replicas.
fn gate_scenario(protocol: &str) -> Scenario {
    Scenario::new(
        protocol,
        Topology::uniform(4, Duration::from_millis(5)),
        1,
        1,
    )
    .closed_loop(8, 2, Duration::ZERO)
    .request_size(256)
    .gossip()
    .retry_timeout(Duration::from_millis(500))
    .drain(3)
    .secs(8)
    .seed(7)
    .restart(1, Duration::from_secs(2), Duration::from_secs(4))
    .restart(2, Duration::from_secs(4), Duration::from_secs(6))
}

fn rolling_restart_gate(protocol: &str) {
    let scenario = gate_scenario(protocol);
    let (m, auditor) = run_metrics(&scenario);

    assert!(
        auditor.is_safe(),
        "{protocol}: safety violated across restarts"
    );
    assert!(m.requests_submitted > 0, "{protocol}: workload never ran");
    assert_eq!(
        m.requests_lost(),
        0,
        "{protocol}: requests lost across restarts despite gossip+retry"
    );

    // The catch-up machinery engaged: every rejoin probes the frontier and
    // fetches (or, for HotStuff, gives up on fetching and re-converges
    // natively), and the recovery clock was recorded for both restarts.
    assert!(
        m.sync_requests > 0,
        "{protocol}: no catch-up traffic issued"
    );
    assert!(
        m.restart_recovery_ms > 0,
        "{protocol}: restart recovery never completed"
    );

    // Re-convergence: both restarted replicas commit new blocks after
    // their rejoin times.
    for (replica, rejoin_s) in [(ReplicaId(1), 4u64), (ReplicaId(2), 6u64)] {
        let rejoin = Time(Duration::from_secs(rejoin_s).as_nanos());
        assert!(
            m.commits
                .iter()
                .any(|c| c.replica == replica && c.entry.committed_at > rejoin),
            "{protocol}: replica {} never committed after rejoining",
            replica.0
        );
    }
}

#[test]
fn rolling_restart_gate_banyan() {
    rolling_restart_gate("banyan");
}

#[test]
fn rolling_restart_gate_hotstuff() {
    rolling_restart_gate("hotstuff");
}

#[test]
fn rolling_restart_gate_streamlet() {
    rolling_restart_gate("streamlet");
}

/// The chained engine actually serves ranged fetches, so its gate run
/// must show blocks flowing over `ResponseBatch`.
#[test]
fn chained_catchup_serves_blocks() {
    let (m, _) = run_metrics(&gate_scenario("banyan"));
    assert!(
        m.sync_blocks_served > 0,
        "no blocks served over ranged sync"
    );
}

/// Restart runs are as deterministic as everything else: same seed, same
/// schedule, bit-identical metrics.
#[test]
fn restart_run_reproduces_bit_for_bit() {
    let (a, _) = run_metrics(&gate_scenario("banyan"));
    let (b, _) = run_metrics(&gate_scenario("banyan"));
    assert_eq!(a, b, "restart run not reproducible");
}
