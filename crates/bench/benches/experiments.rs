//! Scaled-down versions of every paper experiment, as Criterion benches.
//!
//! Each bench runs the corresponding figure's scenario for a short
//! simulated window so `cargo bench --workspace` exercises the entire
//! experiment matrix end-to-end. The full-length harness binaries (see
//! `src/bin/`) regenerate the actual figures; these benches measure the
//! *simulator's* wall-clock cost per simulated second and continuously
//! guard every scenario against regressions (each run asserts safety and
//! progress).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use banyan_bench::runner::{run, Scenario};
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::topology::Topology;
use banyan_types::time::{Duration, Time};

/// One simulated second per iteration keeps bench runs short.
const SIM_SECS: u64 = 1;

fn check(out: &banyan_bench::runner::Outcome) {
    assert!(out.safe, "safety violation inside a bench scenario");
    assert!(
        out.committed_rounds > 0,
        "no progress inside a bench scenario"
    );
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_steps");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    for protocol in ["banyan", "icc", "hotstuff", "streamlet"] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, proto| {
                b.iter(|| {
                    let s =
                        Scenario::new(proto, Topology::uniform(4, Duration::from_millis(20)), 1, 1)
                            .payload(1_000)
                            .delta(Duration::from_millis(30))
                            .secs(SIM_SECS);
                    check(&run(&s));
                });
            },
        );
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_switching");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    for protocol in ["banyan", "icc"] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, proto| {
                b.iter(|| {
                    use banyan_types::ids::ReplicaId;
                    let faults = FaultPlan::none()
                        .crash(ReplicaId(5), Time::ZERO)
                        .crash(ReplicaId(6), Time::ZERO);
                    let s =
                        Scenario::new(proto, Topology::uniform(7, Duration::from_millis(20)), 2, 1)
                            .payload(1_000)
                            .delta(Duration::from_millis(30))
                            .faults(faults)
                            .secs(SIM_SECS);
                    check(&run(&s));
                });
            },
        );
    }
    g.finish();
}

fn bench_fig6a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6a_n19_4dc");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    for (label, protocol, f, p) in [
        ("banyan_p1", "banyan", 6usize, 1usize),
        ("banyan_p4", "banyan", 4, 4),
        ("icc", "icc", 6, 1),
        ("hotstuff", "hotstuff", 6, 1),
        ("streamlet", "streamlet", 6, 1),
    ] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let s = Scenario::new(protocol, Topology::four_global_19(), f, p)
                    .payload(400_000)
                    .secs(SIM_SECS);
                check(&run(&s));
            });
        });
    }
    g.finish();
}

fn bench_fig6b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6b_n4_global");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    for protocol in ["banyan", "icc"] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            &protocol,
            |b, proto| {
                b.iter(|| {
                    let s = Scenario::new(proto, Topology::four_global_4(), 1, 1)
                        .payload(1_000_000)
                        .secs(SIM_SECS);
                    check(&run(&s));
                });
            },
        );
    }
    g.finish();
}

fn bench_fig6c(c: &mut Criterion) {
    // Fig 6c is the same scenario as 6b with distribution reporting; the
    // bench validates the percentile pipeline as well.
    let mut g = c.benchmark_group("fig6c_variance");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("banyan_1mb_percentiles", |b| {
        b.iter(|| {
            let s = Scenario::new("banyan", Topology::four_global_4(), 1, 1)
                .payload(1_000_000)
                .secs(SIM_SECS);
            let out = run(&s);
            check(&out);
            assert!(out.latency.p99_ms >= out.latency.p50_ms);
        });
    });
    g.finish();
}

fn bench_fig6d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6d_crashes");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    for crashed in [0usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(crashed),
            &crashed,
            |b, &crashed| {
                b.iter(|| {
                    let faults = FaultPlan::none().crash_spread(crashed, 19, Time::ZERO);
                    let s = Scenario::new("banyan", Topology::four_us_19(), 6, 1)
                        .payload(100_000)
                        .delta(Duration::from_millis(200))
                        .faults(faults)
                        .secs(2); // needs a couple of timeouts to make progress
                    let out = run(&s);
                    assert!(out.safe);
                });
            },
        );
    }
    g.finish();
}

fn bench_fig6e(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6e_19dc");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(5));
    for (label, protocol, f, p) in [
        ("banyan_p1", "banyan", 6usize, 1usize),
        ("banyan_p4", "banyan", 4, 4),
        ("icc", "icc", 6, 1),
    ] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let s = Scenario::new(protocol, Topology::nineteen_global(), f, p)
                    .payload(1_000_000)
                    .secs(SIM_SECS);
                check(&run(&s));
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig6a,
    bench_fig6b,
    bench_fig6c,
    bench_fig6d,
    bench_fig6e
);
criterion_main!(benches);
