//! Wire-codec microbenchmarks: encode/decode cost of the hot message
//! types (votes dominate message counts, proposals dominate bytes).

use criterion::{criterion_group, criterion_main, Criterion};

use banyan_crypto::{AggregateSignature, Signature, SignerBitmap};
use banyan_types::block::Block;
use banyan_types::certs::Notarization;
use banyan_types::codec::Wire;
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::message::{ChainedMsg, Message};
use banyan_types::payload::Payload;
use banyan_types::time::Time;
use banyan_types::vote::{Vote, VoteKind};

fn vote() -> Vote {
    Vote {
        kind: VoteKind::Fast,
        round: Round(1234),
        block: BlockHash([7; 32]),
        voter: ReplicaId(11),
        signature: Signature([9; 64]),
    }
}

fn proposal() -> Message {
    let mut bm = SignerBitmap::new(19);
    for i in 0..13 {
        bm.set(i);
    }
    Message::Chained(ChainedMsg::Proposal {
        block: Block {
            round: Round(1234),
            proposer: ReplicaId(3),
            rank: Rank(0),
            parent: BlockHash([1; 32]),
            proposed_at: Time(55),
            payload: Payload::synthetic(1 << 20, 3),
            signature: Signature([2; 64]),
        },
        parent_notarization: Some(Notarization::from_votes(
            Round(1233),
            BlockHash([1; 32]),
            AggregateSignature {
                signers: bm,
                data: vec![0xCD; 32],
            },
        )),
        parent_unlock: None,
        fast_vote: Some(vote()),
    })
}

fn bench_codec(c: &mut Criterion) {
    let votes = Message::Chained(ChainedMsg::Votes(vec![vote(), vote()]));
    let vote_bytes = votes.to_bytes();
    c.bench_function("codec/encode_votes2", |b| b.iter(|| votes.to_bytes()));
    c.bench_function("codec/decode_votes2", |b| {
        b.iter(|| Message::from_bytes(&vote_bytes).expect("roundtrip"))
    });

    let prop = proposal();
    let prop_bytes = prop.to_bytes();
    c.bench_function("codec/encode_proposal", |b| b.iter(|| prop.to_bytes()));
    c.bench_function("codec/decode_proposal", |b| {
        b.iter(|| Message::from_bytes(&prop_bytes).expect("roundtrip"))
    });
    c.bench_function("codec/wire_len_proposal", |b| b.iter(|| prop.wire_len()));
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
