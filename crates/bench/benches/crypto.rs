//! Microbenchmarks of the cryptographic substrate: hashing, signing,
//! verification, aggregation — the per-message costs every protocol pays.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use banyan_crypto::hashsig::HashSig;
use banyan_crypto::hmac::hmac_sha256;
use banyan_crypto::merkle::payload_root;
use banyan_crypto::registry::KeyRegistry;
use banyan_crypto::schnorr::ToySchnorr;
use banyan_crypto::sha256::sha256;
use banyan_crypto::sig::{SignatureScheme, SignerIndex};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(data));
        });
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac_sha256(b"key", &data))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_payload_root");
    for size in [65536usize, 1 << 20] {
        let payload = vec![7u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, p| {
            b.iter(|| payload_root(p, 64 * 1024));
        });
    }
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let schemes: Vec<(&str, Arc<dyn SignatureScheme>)> = vec![
        ("hashsig", Arc::new(HashSig)),
        ("schnorr", Arc::new(ToySchnorr::new())),
    ];
    for (name, scheme) in schemes {
        let (sk, pk) = scheme.keygen(&[1u8; 32]);
        let msg = b"notarization vote / round 1234 / block abcd";
        let sig = scheme.sign(&sk, msg);
        c.bench_function(format!("{name}/sign"), |b| b.iter(|| scheme.sign(&sk, msg)));
        c.bench_function(format!("{name}/verify"), |b| {
            b.iter(|| assert!(scheme.verify(&pk, msg, &sig)))
        });

        // Quorum-scale aggregation: 13 of 19 (the paper's notarization
        // quorum at f = 6).
        let keys: Vec<_> = (0..19u8).map(|i| scheme.keygen(&[i; 32])).collect();
        let pks: Vec<_> = keys.iter().map(|(_, pk)| *pk).collect();
        let votes: Vec<(SignerIndex, _)> = keys
            .iter()
            .take(13)
            .enumerate()
            .map(|(i, (sk, _))| (i as SignerIndex, scheme.sign(sk, msg)))
            .collect();
        c.bench_function(format!("{name}/aggregate13"), |b| {
            b.iter(|| scheme.aggregate(19, &votes))
        });
        let agg = scheme.aggregate(19, &votes);
        c.bench_function(format!("{name}/verify_aggregate13"), |b| {
            b.iter(|| assert!(scheme.verify_aggregate(&pks, msg, &agg)))
        });
    }
}

fn bench_registry(c: &mut Criterion) {
    c.bench_function("registry/generate_n19", |b| {
        b.iter(|| KeyRegistry::generate(Arc::new(HashSig), 42, 19, 0))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_merkle,
    bench_schemes,
    bench_registry
);
criterion_main!(benches);
