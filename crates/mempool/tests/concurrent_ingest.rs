//! Contended-ingest loopback test: N producer threads blast pushes and
//! forwards through cloned [`PoolIngest`] handles while a drainer thread
//! concurrently drains batches. Every request that was accepted into the
//! channel must come out of a drain exactly once — no loss, no
//! duplication — regardless of thread interleaving.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use banyan_mempool::{BatchPolicy, ConcurrentPool, Mempool, Request};
use banyan_types::app::ProposalContext;
use banyan_types::ids::Round;
use banyan_types::time::Time;

fn req(id: u64) -> Request {
    Request {
        id,
        client: (id % 13) as u16,
        size: 64,
        submitted_at: Time(id),
    }
}

#[test]
fn contended_ingest_loses_and_duplicates_nothing() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 5_000;
    let total = PRODUCERS * PER_PRODUCER;

    // Capacity and ingest cap comfortably above the workload: every send
    // that the channel accepts must surface in a drain.
    let pool = ConcurrentPool::new(Mempool::new(2 * total as usize), 2 * total as usize);

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ingest = pool.ingest();
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let id = p * PER_PRODUCER + i + 1;
                    // Alternate local pushes and gossip-style forwards.
                    let ok = if id.is_multiple_of(2) {
                        ingest.push(req(id))
                    } else {
                        ingest.forward(req(id))
                    };
                    assert!(ok, "ingest channel sized for the whole workload");
                }
            })
        })
        .collect();

    // The drainer races the producers: drain mid-stream, then join and
    // drain the remainder.
    let drainer = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            let mut got: Vec<Request> = Vec::new();
            let mut spins = 0u32;
            while got.len() < total as usize && spins < 1_000_000 {
                let out = pool.next_batch(
                    512,
                    u64::MAX,
                    &ProposalContext::root(Round(1), Time(1)),
                    &BatchPolicy::EAGER,
                );
                if out.is_empty() {
                    spins += 1;
                    thread::yield_now();
                } else {
                    got.extend(out);
                }
            }
            got
        })
    };

    for p in producers {
        p.join().unwrap();
    }
    let got = drainer.join().unwrap();

    assert_eq!(pool.ingest_dropped(), 0, "channel never overflowed");
    assert_eq!(got.len(), total as usize, "no request lost");
    let unique: HashSet<u64> = got.iter().map(|r| r.id).collect();
    assert_eq!(unique.len(), got.len(), "no request drained twice");
    assert!(pool.is_empty(), "everything drained");
    // Requests come out with their original identity intact.
    for r in &got {
        assert_eq!(r.submitted_at, Time(r.id));
        assert_eq!(r.size, 64);
    }
}
