//! Property test of the shard-merge rule: for the **same** operation
//! sequence — pushes, forwards, bounded drains, commits, lease
//! observations and releases — pools with 1, 2 and 8 shards drain the
//! **identical** request order, step for step. The global arrival-stamp
//! merge makes the shard count an implementation detail: `shards(1)` is
//! the historical single-FIFO pool, so this also pins every other count
//! to the historical behavior bit-for-bit.

use proptest::prelude::*;

use banyan_mempool::{BatchPolicy, Mempool, PushOutcome, Request};
use banyan_types::app::ProposalContext;
use banyan_types::ids::{BlockHash, Round};
use banyan_types::time::Time;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn req(id: u64) -> Request {
    Request {
        id,
        client: (id % 5) as u16,
        // Mixed sizes so the byte cap bites at different records.
        size: 50 + (id % 4) * 150,
        submitted_at: Time(id),
    }
}

fn block_hash(counter: u64) -> BlockHash {
    let mut h = [0u8; 32];
    h[..8].copy_from_slice(&counter.to_le_bytes());
    h[31] = 0x5D;
    BlockHash(h)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same ops, shard counts 1 / 2 / 8 → identical drain order (and
    /// identical push outcomes, lengths and lease counts) at every step.
    #[test]
    fn shard_count_never_changes_the_drain_order(
        ops in proptest::collection::vec((0u8..5, 0u8..10), 1..120)
    ) {
        // A small capacity so eviction paths get exercised too.
        let mut pools: Vec<Mempool> = SHARD_COUNTS
            .iter()
            .map(|&s| Mempool::new(64).with_speculation(1024).with_shards(s))
            .collect();
        let mut next_id = 0u64;
        let mut round = 0u64;
        let mut blocks = 0u64;
        // Blocks every pool has observed (all pools see the same events,
        // so their lease tables stay in lockstep).
        let mut live_blocks: Vec<(u64, BlockHash, Vec<u64>)> = Vec::new();

        for (op, arg) in ops {
            match op {
                // Push a burst of fresh requests (same ids everywhere).
                0 => {
                    for _ in 0..=arg {
                        next_id += 1;
                        let outcomes: Vec<PushOutcome> =
                            pools.iter_mut().map(|p| p.push(req(next_id))).collect();
                        prop_assert!(
                            outcomes.windows(2).all(|w| w[0] == w[1]),
                            "push outcomes diverge: {outcomes:?}"
                        );
                    }
                }
                // Bounded drain with varying record and byte caps; the
                // drained sequences must be identical.
                1 => {
                    let max_records = usize::from(arg) + 1;
                    let max_bytes = 200u64 * (u64::from(arg) + 1);
                    let drained: Vec<Vec<Request>> = pools
                        .iter_mut()
                        .map(|p| p.drain_bounded(max_records, max_bytes))
                        .collect();
                    prop_assert!(
                        drained.windows(2).all(|w| w[0] == w[1]),
                        "drain order diverges across shard counts: {drained:?}"
                    );
                    // Observed as a new own block: its lease steers later
                    // speculative drains and its release path.
                    let out = &drained[0];
                    if !out.is_empty() {
                        round += 1;
                        blocks += 1;
                        let hash = block_hash(blocks);
                        for p in &mut pools {
                            p.observe_block(hash, Round(round), out.clone());
                        }
                        live_blocks.push((round, hash, out.iter().map(|r| r.id).collect()));
                    }
                }
                // Speculative drain excluding every live block as an
                // ancestor.
                2 => {
                    let ancestors: Vec<BlockHash> =
                        live_blocks.iter().map(|(_, h, _)| *h).collect();
                    let ctx = ProposalContext {
                        round: Round(round + 1),
                        now: Time(next_id),
                        parent: ancestors.first().copied().unwrap_or(BlockHash::ZERO),
                        ancestors,
                    };
                    let drained: Vec<Vec<Request>> = pools
                        .iter_mut()
                        .map(|p| {
                            p.drain_speculative(
                                usize::from(arg) + 1,
                                u64::MAX,
                                &ctx,
                                &BatchPolicy::EAGER,
                            )
                        })
                        .collect();
                    prop_assert!(
                        drained.windows(2).all(|w| w[0] == w[1]),
                        "speculative drain diverges: {drained:?}"
                    );
                }
                // Commit a live block (retires its lease, releases every
                // lease at or below its round — the release re-insertion
                // order must also match).
                3 => {
                    if !live_blocks.is_empty() {
                        let idx = usize::from(arg) % live_blocks.len();
                        let (r, hash, ids) = live_blocks.remove(idx);
                        let requests: Vec<Request> = ids.iter().map(|&id| req(id)).collect();
                        for p in &mut pools {
                            p.mark_committed_block(hash, Round(r), &requests);
                        }
                        live_blocks.retain(|(lr, _, _)| *lr > r);
                    }
                }
                // Release (abandon) a live block.
                _ => {
                    if !live_blocks.is_empty() {
                        let idx = usize::from(arg) % live_blocks.len();
                        let (_, hash, _) = live_blocks.remove(idx);
                        let released: Vec<usize> =
                            pools.iter_mut().map(|p| p.release(hash)).collect();
                        prop_assert!(
                            released.windows(2).all(|w| w[0] == w[1]),
                            "release counts diverge: {released:?}"
                        );
                    }
                }
            }
            let lens: Vec<usize> = pools.iter().map(Mempool::len).collect();
            prop_assert!(lens.windows(2).all(|w| w[0] == w[1]), "lens diverge: {lens:?}");
            let bytes: Vec<u64> = pools.iter().map(Mempool::pending_bytes).collect();
            prop_assert!(
                bytes.windows(2).all(|w| w[0] == w[1]),
                "byte accounting diverges: {bytes:?}"
            );
        }

        // Final flush: everything left drains in the same order.
        let rest: Vec<Vec<Request>> = pools
            .iter_mut()
            .map(|p| p.drain(usize::MAX))
            .collect();
        prop_assert!(rest.windows(2).all(|w| w[0] == w[1]), "final drain diverges");
    }
}
