//! Property tests of the speculative lease lifecycle: under any
//! interleaving of pushes, speculative drains, peer-block observations,
//! commits and releases, the pool neither loses a request nor lets one
//! commit twice.
//!
//! The model mirrors the pool's contract: every pushed id is always in
//! exactly one reachable state — *pending* in the queue, *leased* to at
//! least one live block, or *committed* — and transitions only along
//! pending → leased (drain / peer inclusion) → committed (its block wins)
//! or → pending again (its block is abandoned).

use std::collections::HashSet;

use proptest::prelude::*;

use banyan_mempool::{BatchPolicy, Mempool, Request};
use banyan_types::app::ProposalContext;
use banyan_types::ids::{BlockHash, Round};
use banyan_types::time::Time;

/// One live lease in the model: a block (own proposal drained out of the
/// queue, or a peer's block observed alongside its pending copies) and
/// the request ids it carries.
struct ModelLease {
    round: u64,
    block: BlockHash,
    ids: Vec<u64>,
}

struct Model {
    pending: HashSet<u64>,
    committed: HashSet<u64>,
    leases: Vec<ModelLease>,
    pushed: u64,
}

impl Model {
    /// The model's half of `mark_committed_block`: the winner's ids
    /// commit, and every lease at or below its round releases.
    fn commit(&mut self, idx: usize) {
        let winner = self.leases.remove(idx);
        for id in &winner.ids {
            self.committed.insert(*id);
            self.pending.remove(id);
        }
        let round = winner.round;
        let (doomed, alive): (Vec<ModelLease>, Vec<ModelLease>) = std::mem::take(&mut self.leases)
            .into_iter()
            .partition(|l| l.round <= round);
        self.leases = alive;
        for lease in doomed {
            self.release_ids(lease);
        }
    }

    fn release_ids(&mut self, lease: ModelLease) {
        for id in lease.ids {
            if !self.committed.contains(&id) {
                self.pending.insert(id);
            }
        }
    }
}

fn req(id: u64) -> Request {
    Request {
        id,
        client: (id % 5) as u16,
        size: 100,
        submitted_at: Time(id),
    }
}

fn block_hash(counter: u64) -> BlockHash {
    let mut h = [0u8; 32];
    h[..8].copy_from_slice(&counter.to_le_bytes());
    h[31] = 0xB1;
    BlockHash(h)
}

fn check_invariants(pool: &Mempool, model: &Model) {
    assert_eq!(pool.len(), model.pending.len(), "pending sets agree");
    assert_eq!(pool.live_leases(), model.leases.len(), "lease counts agree");
    for id in 1..=model.pushed {
        assert_eq!(
            pool.is_committed(id),
            model.committed.contains(&id),
            "committed state of {id} agrees"
        );
        let leased = model.leases.iter().any(|l| l.ids.contains(&id));
        assert!(
            model.pending.contains(&id) || leased || model.committed.contains(&id),
            "request {id} was lost: neither pending, leased nor committed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved push / speculative-drain / observe / commit / release
    /// never loses a request and never commits one twice.
    #[test]
    fn lease_lifecycle_never_loses_or_double_commits(
        ops in proptest::collection::vec((0u8..5, 0u8..8), 1..100)
    ) {
        let mut pool = Mempool::new(100_000).with_speculation(64 * 1024);
        let mut model = Model {
            pending: HashSet::new(),
            committed: HashSet::new(),
            leases: Vec::new(),
            pushed: 0,
        };
        let mut round = 0u64;
        let mut blocks = 0u64;

        for (op, arg) in ops {
            match op {
                // Push a burst of fresh requests.
                0 => {
                    for _ in 0..=arg {
                        model.pushed += 1;
                        pool.push(req(model.pushed));
                        model.pending.insert(model.pushed);
                    }
                }
                // Speculative drain into a new own block, excluding every
                // live lease (they are all "ancestors" of our proposal).
                1 => {
                    let ancestors: Vec<BlockHash> =
                        model.leases.iter().map(|l| l.block).collect();
                    let ctx = ProposalContext {
                        round: Round(round + 1),
                        now: Time(round),
                        parent: ancestors.first().copied().unwrap_or(BlockHash::ZERO),
                        ancestors,
                    };
                    let out = pool.drain_speculative(
                        usize::from(arg) + 1,
                        u64::MAX,
                        &ctx,
                        &BatchPolicy::EAGER,
                    );
                    for r in &out {
                        prop_assert!(!model.committed.contains(&r.id),
                            "drained a committed id");
                        prop_assert!(
                            !model.leases.iter().any(|l| l.ids.contains(&r.id)),
                            "drained an ancestor-leased id"
                        );
                    }
                    if !out.is_empty() {
                        round += 1;
                        blocks += 1;
                        let hash = block_hash(blocks);
                        let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
                        pool.observe_block(hash, Round(round), out);
                        for id in &ids {
                            model.pending.remove(id);
                        }
                        model.leases.push(ModelLease { round, block: hash, ids });
                    }
                }
                // Observe a peer's block carrying some currently pending
                // requests (their pending copies stay in the queue).
                2 => {
                    let mut ids: Vec<u64> = model.pending.iter().copied().collect();
                    ids.sort_unstable();
                    ids.truncate(usize::from(arg));
                    if !ids.is_empty() {
                        round += 1;
                        blocks += 1;
                        let hash = block_hash(blocks);
                        pool.observe_block(
                            hash,
                            Round(round),
                            ids.iter().map(|&id| req(id)).collect(),
                        );
                        model.leases.push(ModelLease { round, block: hash, ids });
                    }
                }
                // Commit a live lease's block.
                3 => {
                    if !model.leases.is_empty() {
                        let idx = usize::from(arg) % model.leases.len();
                        let (block, r, ids) = {
                            let l = &model.leases[idx];
                            (l.block, l.round, l.ids.clone())
                        };
                        let requests: Vec<Request> =
                            ids.iter().map(|&id| req(id)).collect();
                        pool.mark_committed_block(block, Round(r), &requests);
                        model.commit(idx);
                    }
                }
                // Explicitly release (abandon) a live lease's block.
                _ => {
                    if !model.leases.is_empty() {
                        let idx = usize::from(arg) % model.leases.len();
                        let lease = model.leases.remove(idx);
                        pool.release(lease.block);
                        model.release_ids(lease);
                    }
                }
            }
            check_invariants(&pool, &model);
        }

        // Terminal drain: committing every remaining lease then draining
        // the queue accounts for every id ever pushed, exactly once.
        while !model.leases.is_empty() {
            let (block, r, ids) = {
                let l = &model.leases[0];
                (l.block, l.round, l.ids.clone())
            };
            let requests: Vec<Request> = ids.iter().map(|&id| req(id)).collect();
            pool.mark_committed_block(block, Round(r), &requests);
            model.commit(0);
            check_invariants(&pool, &model);
        }
        let rest = pool.drain_speculative(
            usize::MAX,
            u64::MAX,
            &ProposalContext::root(Round(0), Time(round)),
            &BatchPolicy::EAGER,
        );
        let drained: HashSet<u64> = rest.iter().map(|r| r.id).collect();
        prop_assert_eq!(drained.len(), rest.len(), "no id drains twice");
        for id in 1..=model.pushed {
            let committed = model.committed.contains(&id);
            prop_assert!(
                committed ^ drained.contains(&id),
                "id {} must end exactly once: committed {} drained {}",
                id, committed, drained.contains(&id)
            );
        }
    }
}
