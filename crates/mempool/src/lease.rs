//! The speculative lease table: `block → the requests it carries`.
//!
//! A **lease** records that an observed (not yet committed) block carries
//! a set of requests. The table answers the two questions the speculative
//! drain machinery asks:
//!
//! * *exclusion* — which request ids are leased to a live ancestor of the
//!   block being proposed (those must not be re-batched);
//! * *release* — which leases died when a round-`r` block committed
//!   (every lease at or below `r` belongs to a losing fork or a skipped
//!   round; its requests go back to the pending queue).
//!
//! [`Mempool`](crate::Mempool) embeds one table behind its single lock;
//! the lock-split [`ConcurrentPool`](crate::ConcurrentPool) keeps one in
//! a separately-guarded coordinator so commit retirement never blocks
//! client ingest. Both paths share this implementation, so the
//! deterministic (round, block-id) retirement order can't drift between
//! them.

use std::collections::{BTreeMap, HashMap, HashSet};

use banyan_types::ids::{BlockHash, Round};

use crate::Request;

/// Where a leased block came from, relative to the chain it extends.
///
/// The distinction matters at commit time: an [`Optimistic`] lease names
/// its parent, so the table can tell — the moment a *conflicting* block
/// commits at the parent's round — that the leased block extends a dead
/// fork and release its requests eagerly instead of stranding them until
/// the next commit sweeps their round.
///
/// [`Optimistic`]: LeaseProvenance::Optimistic
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseProvenance {
    /// Observed without parent linkage (raw [`LeaseTable::observe`]
    /// callers); only the round-sweep release applies.
    Unlinked,
    /// An observed proposal linked to the parent block it extends —
    /// every proposal observed off the wire is *optimistic* in the sense
    /// that its block is uncertified at observe time.
    Optimistic {
        /// The parent block the leased block extends.
        parent: BlockHash,
    },
}

/// Live leases, ordered by `(round, block id)` so retirement sweeps are
/// deterministic.
#[derive(Debug, Default)]
pub struct LeaseTable {
    /// `(round, block) → the requests the block carries`.
    leases: BTreeMap<(u64, BlockHash), Vec<Request>>,
    /// Block → round index into `leases`.
    rounds: HashMap<BlockHash, u64>,
    /// Block → provenance (absent entries are [`LeaseProvenance::Unlinked`]).
    provenance: HashMap<BlockHash, LeaseProvenance>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        LeaseTable::default()
    }

    /// Records that `block` (of `round`) carries `requests`. Idempotent
    /// per block id; returns `true` when newly recorded. Empty request
    /// lists are not recorded (nothing to exclude or release).
    pub fn observe(&mut self, block: BlockHash, round: Round, requests: Vec<Request>) -> bool {
        self.observe_with_provenance(block, round, requests, LeaseProvenance::Unlinked)
    }

    /// [`observe`](Self::observe) with an explicit [`LeaseProvenance`].
    pub fn observe_with_provenance(
        &mut self,
        block: BlockHash,
        round: Round,
        requests: Vec<Request>,
        provenance: LeaseProvenance,
    ) -> bool {
        if requests.is_empty() || self.rounds.contains_key(&block) {
            return false;
        }
        self.rounds.insert(block, round.0);
        self.leases.insert((round.0, block), requests);
        if provenance != LeaseProvenance::Unlinked {
            self.provenance.insert(block, provenance);
        }
        true
    }

    /// The provenance of `block`'s live lease, if one exists.
    pub fn provenance(&self, block: &BlockHash) -> Option<LeaseProvenance> {
        if !self.rounds.contains_key(block) {
            return None;
        }
        Some(
            self.provenance
                .get(block)
                .copied()
                .unwrap_or(LeaseProvenance::Unlinked),
        )
    }

    /// Drops `block`'s lease and returns its requests, if one is live.
    pub fn remove(&mut self, block: &BlockHash) -> Option<Vec<Request>> {
        let round = self.rounds.remove(block)?;
        self.provenance.remove(block);
        Some(
            self.leases
                .remove(&(round, *block))
                .expect("lease index and table agree"),
        )
    }

    /// Certificate-conflict sweep: a round-`round` block `committed`
    /// just won its round, so every round-`round + 1` lease whose
    /// [`Optimistic`](LeaseProvenance::Optimistic) parent is a *known
    /// round-≤-`round` block other than `committed`* extends a dead fork
    /// and can never commit. Removes those leases and returns their
    /// request lists in block-id order.
    ///
    /// Must run **before** the round-sweep release for `round`: the
    /// losing parent's own live lease is what pins its round here. A
    /// parent whose round is unknown (no live lease — e.g. an empty
    /// block, or a block that already committed at a skipped-past round)
    /// is left alone; the next commit's round sweep still covers it, so
    /// this is strictly an eagerness improvement, never a new loss.
    pub fn take_conflicting(&mut self, round: Round, committed: &BlockHash) -> Vec<Vec<Request>> {
        let next = round.0.saturating_add(1);
        let doomed: Vec<BlockHash> = self
            .leases
            .range((next, BlockHash([0x00; 32]))..=(next, BlockHash([0xFF; 32])))
            .filter(|((_, block), _)| match self.provenance.get(block) {
                Some(LeaseProvenance::Optimistic { parent }) => {
                    parent != committed && self.rounds.get(parent).is_some_and(|r| *r <= round.0)
                }
                _ => false,
            })
            .map(|((_, block), _)| *block)
            .collect();
        doomed
            .into_iter()
            .map(|block| self.remove(&block).expect("collected above"))
            .collect()
    }

    /// Removes every lease whose round is ≤ `round` — those blocks lost
    /// the fork (or their round was skipped past) once a round-`round`
    /// block committed — returning their request lists in deterministic
    /// (round, block-id) order.
    pub fn take_at_or_below(&mut self, round: Round) -> Vec<Vec<Request>> {
        let doomed: Vec<(u64, BlockHash)> = self
            .leases
            .range(..=(round.0, BlockHash([0xFF; 32])))
            .map(|(k, _)| *k)
            .collect();
        doomed
            .into_iter()
            .map(|(r, block)| {
                self.rounds.remove(&block);
                self.leases.remove(&(r, block)).expect("collected above")
            })
            .collect()
    }

    /// The drain-exclusion set of an ancestor chain: every id leased to
    /// one of `ancestors`. A lease on a *competing* fork is deliberately
    /// not excluded — only one fork commits, so batching its requests on
    /// this fork is no duplicate.
    pub fn exclusions(&self, ancestors: &[BlockHash]) -> HashSet<u64> {
        let mut excluded = HashSet::new();
        if self.leases.is_empty() {
            return excluded;
        }
        for block in ancestors {
            if let Some(round) = self.rounds.get(block) {
                if let Some(requests) = self.leases.get(&(*round, *block)) {
                    excluded.extend(requests.iter().map(|r| r.id));
                }
            }
        }
        excluded
    }

    /// The leased requests of `block`, if a live lease exists.
    pub fn get(&self, block: &BlockHash) -> Option<&[Request]> {
        let round = self.rounds.get(block)?;
        self.leases.get(&(*round, *block)).map(Vec::as_slice)
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// True when no lease is live.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_types::time::Time;

    fn req(id: u64) -> Request {
        Request {
            id,
            client: 0,
            size: 100,
            submitted_at: Time(id),
        }
    }

    fn hash(tag: u8) -> BlockHash {
        BlockHash([tag; 32])
    }

    #[test]
    fn observe_is_idempotent_and_skips_empty() {
        let mut t = LeaseTable::new();
        assert!(!t.observe(hash(1), Round(1), vec![]));
        assert!(t.observe(hash(1), Round(1), vec![req(1)]));
        assert!(!t.observe(hash(1), Round(2), vec![req(2)]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&hash(1)).unwrap()[0].id, 1);
    }

    #[test]
    fn take_at_or_below_sweeps_in_round_then_block_order() {
        let mut t = LeaseTable::new();
        t.observe(hash(3), Round(2), vec![req(3)]);
        t.observe(hash(1), Round(1), vec![req(1)]);
        t.observe(hash(2), Round(2), vec![req(2)]);
        t.observe(hash(9), Round(9), vec![req(9)]);
        let swept: Vec<u64> = t
            .take_at_or_below(Round(2))
            .into_iter()
            .flatten()
            .map(|r| r.id)
            .collect();
        assert_eq!(swept, [1, 2, 3], "round-major, block-id-minor order");
        assert_eq!(t.len(), 1, "the round-9 lease survives");
        assert!(t.get(&hash(9)).is_some());
    }

    #[test]
    fn exclusions_cover_ancestors_only() {
        let mut t = LeaseTable::new();
        t.observe(hash(1), Round(1), vec![req(1), req(2)]);
        t.observe(hash(2), Round(1), vec![req(3)]);
        let ex = t.exclusions(&[hash(1)]);
        assert!(ex.contains(&1) && ex.contains(&2));
        assert!(!ex.contains(&3), "competing fork is not excluded");
        assert!(t.exclusions(&[]).is_empty());
    }

    #[test]
    fn provenance_is_recorded_and_cleared_with_the_lease() {
        let mut t = LeaseTable::new();
        t.observe(hash(1), Round(1), vec![req(1)]);
        t.observe_with_provenance(
            hash(2),
            Round(2),
            vec![req(2)],
            LeaseProvenance::Optimistic { parent: hash(1) },
        );
        assert_eq!(t.provenance(&hash(1)), Some(LeaseProvenance::Unlinked));
        assert_eq!(
            t.provenance(&hash(2)),
            Some(LeaseProvenance::Optimistic { parent: hash(1) })
        );
        t.remove(&hash(2));
        assert_eq!(t.provenance(&hash(2)), None);
    }

    #[test]
    fn take_conflicting_releases_only_dead_fork_children() {
        let mut t = LeaseTable::new();
        // Round 1: winner `hash(1)` (committed, so no live lease) and
        // loser `hash(2)` (live lease pins its round).
        t.observe(hash(2), Round(1), vec![req(2)]);
        // Round 2: a child of each, plus an unlinked lease.
        t.observe_with_provenance(
            hash(3),
            Round(2),
            vec![req(3)],
            LeaseProvenance::Optimistic { parent: hash(1) },
        );
        t.observe_with_provenance(
            hash(4),
            Round(2),
            vec![req(4)],
            LeaseProvenance::Optimistic { parent: hash(2) },
        );
        t.observe(hash(5), Round(2), vec![req(5)]);
        let released: Vec<u64> = t
            .take_conflicting(Round(1), &hash(1))
            .into_iter()
            .flatten()
            .map(|r| r.id)
            .collect();
        assert_eq!(released, [4], "only the dead-fork child is released");
        assert!(t.get(&hash(3)).is_some(), "winner's child survives");
        assert!(t.get(&hash(5)).is_some(), "unlinked lease survives");
        assert!(
            t.get(&hash(2)).is_some(),
            "the loser itself awaits the round sweep"
        );
    }

    #[test]
    fn take_conflicting_leaves_unknown_round_parents_alone() {
        let mut t = LeaseTable::new();
        // Parent has no live lease, so its round can't be established:
        // it might be a committed skipped-round ancestor. Keep the lease.
        t.observe_with_provenance(
            hash(4),
            Round(2),
            vec![req(4)],
            LeaseProvenance::Optimistic { parent: hash(7) },
        );
        assert!(t.take_conflicting(Round(1), &hash(1)).is_empty());
        assert!(t.get(&hash(4)).is_some());
    }

    #[test]
    fn remove_is_idempotent() {
        let mut t = LeaseTable::new();
        t.observe(hash(1), Round(1), vec![req(1)]);
        assert_eq!(t.remove(&hash(1)).unwrap().len(), 1);
        assert!(t.remove(&hash(1)).is_none());
        assert!(t.is_empty());
    }
}
