//! The lock-split concurrent pool: send-only ingest, a separately-guarded
//! lease coordinator, and the sharded pending queue behind its own lock.
//!
//! [`SharedMempool`](crate::SharedMempool) serializes *every* operation —
//! client push, gossip accept, lease bookkeeping, speculative drain — on
//! one mutex. [`ConcurrentPool`] splits that into three independent
//! pieces so the staged replica pipeline can scale across cores:
//!
//! * **Ingest** — pushes and gossip accepts go through a bounded MPMC
//!   channel (`crossbeam::channel`). The hot path is a single `try_send`
//!   by a cloneable [`PoolIngest`] handle: no lock, no waiting. Queued
//!   operations are applied to the pending shards at the next drain or
//!   observation point ([`ConcurrentPool::sync_ingest`], called
//!   internally by every consumer-side entry point). A full channel
//!   sheds the request (counted in
//!   [`ingest_dropped`](ConcurrentPool::ingest_dropped)) — clients
//!   retry, so a shed ingest is a delayed request, never a lost one,
//!   exactly like a gossip-outbox drop.
//! * **Lease coordination** — `observe_proposal` / `mark_committed_block`
//!   / `release` operate on a [`LeaseTable`] behind its own small mutex,
//!   so commit retirement and proposal observation never block client
//!   ingest or each other's fast paths.
//! * **Pending shards** — the [`Mempool`] itself (sharded, see the
//!   crate-level *Sharding* section) behind the pending lock, touched
//!   only by drains, ingest application and commit tombstoning.
//!
//! Lock order is always **coordinator → pending** (never both the other
//! way), so the two can't deadlock. Determinism note: the simulator keeps
//! using the plain [`SharedMempool`] — its whole point is a single
//! deterministic event order. `ConcurrentPool` is for the real-threads
//! TCP pipeline, where the channel hand-off trades a bounded reordering
//! window (ingest lands at the next sync point) for lock-free submission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use banyan_types::app::{ProposalContext, ProposalSource};
use banyan_types::block::Block;
use banyan_types::ids::{BlockHash, Round};
use banyan_types::payload::Payload;

use crossbeam::channel;

use crate::{BatchPolicy, Mempool, PushOutcome, Request, WorkloadBatch};

/// Default bound on the ingest channel (queued pushes + gossip accepts).
pub const DEFAULT_INGEST_CAP: usize = 65_536;

/// One queued ingest operation.
enum IngestOp {
    /// A locally submitted request ([`Mempool::push`] semantics: gossips
    /// if the pool gossips).
    Push(Request),
    /// A peer-forwarded request ([`Mempool::accept_forwarded`] semantics:
    /// never re-gossiped).
    Forward(Request),
}

/// The cloneable, send-only ingest handle: what reader/verify threads
/// hold. A send is one `try_send` on the bounded MPMC channel — the
/// caller never touches the pending lock.
#[derive(Clone)]
pub struct PoolIngest {
    tx: channel::Sender<IngestOp>,
    dropped: Arc<AtomicU64>,
}

impl PoolIngest {
    /// Queues a locally submitted request. Returns `false` (and counts a
    /// drop) when the ingest channel is full or closed.
    pub fn push(&self, req: Request) -> bool {
        self.send(IngestOp::Push(req))
    }

    /// Queues a peer-forwarded request. Returns `false` (and counts a
    /// drop) when the ingest channel is full or closed.
    pub fn forward(&self, req: Request) -> bool {
        self.send(IngestOp::Forward(req))
    }

    fn send(&self, op: IngestOp) -> bool {
        match self.tx.try_send(op) {
            Ok(()) => true,
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

/// Lease state guarded separately from the pending shards, so commit
/// retirement no longer blocks client ingest.
#[derive(Debug, Default)]
struct LeaseCoordinator {
    /// `Some(payload_chunk)` when speculation is on (parameterizes block
    /// hashing in observation).
    speculation: Option<usize>,
    leases: crate::LeaseTable,
}

/// A [`Mempool`] split across three independently-guarded pieces: a
/// bounded MPMC ingest channel, a lease coordinator, and the sharded
/// pending queue. See the module docs for the locking story.
pub struct ConcurrentPool {
    pending: Mutex<Mempool>,
    coordinator: Mutex<LeaseCoordinator>,
    ingest_tx: channel::Sender<IngestOp>,
    ingest_rx: channel::Receiver<IngestOp>,
    ingest_dropped: Arc<AtomicU64>,
}

/// The `Arc` handle drivers, pipeline stages and sources share.
pub type SharedConcurrentPool = Arc<ConcurrentPool>;

impl ConcurrentPool {
    /// Wraps `pool` with an ingest channel of capacity `ingest_cap`.
    /// Speculation configured on `pool` migrates to the coordinator: the
    /// lease table lives there, not behind the pending lock.
    pub fn new(pool: Mempool, ingest_cap: usize) -> SharedConcurrentPool {
        let mut pool = pool;
        let speculation = pool.speculation_chunk();
        // The inner pool's own lease machinery stays off — exclusions
        // are computed by the coordinator and passed into the drain core.
        pool.set_speculation(None);
        let (ingest_tx, ingest_rx) = channel::bounded(ingest_cap.max(1));
        Arc::new(ConcurrentPool {
            pending: Mutex::new(pool),
            coordinator: Mutex::new(LeaseCoordinator {
                speculation,
                leases: crate::LeaseTable::new(),
            }),
            ingest_tx,
            ingest_rx,
            ingest_dropped: Arc::new(AtomicU64::new(0)),
        })
    }

    /// A new send-only ingest handle (cloneable; hand one to every
    /// producer thread).
    pub fn ingest(&self) -> PoolIngest {
        PoolIngest {
            tx: self.ingest_tx.clone(),
            dropped: self.ingest_dropped.clone(),
        }
    }

    /// Ingest operations shed because the channel was full.
    pub fn ingest_dropped(&self) -> u64 {
        self.ingest_dropped.load(Ordering::Relaxed)
    }

    /// Applies every queued ingest operation to the pending shards and
    /// returns how many were applied. Called internally at each drain /
    /// observation point; exposed for drivers that want an explicit sync
    /// (e.g. before reading [`len`](Self::len) in a test).
    pub fn sync_ingest(&self) -> usize {
        let mut pool = self.pending.lock().expect("pending lock");
        Self::apply_ingest(&self.ingest_rx, &mut pool)
    }

    fn apply_ingest(rx: &channel::Receiver<IngestOp>, pool: &mut Mempool) -> usize {
        let mut applied = 0;
        for op in rx.try_iter() {
            match op {
                IngestOp::Push(req) => {
                    pool.push(req);
                }
                IngestOp::Forward(req) => {
                    pool.accept_forwarded(req);
                }
            }
            applied += 1;
        }
        applied
    }

    /// Drains the next batch: applies queued ingest, computes the
    /// ancestor-exclusion set under the coordinator lock, then runs the
    /// shared bounded-drain core under the pending lock.
    pub fn next_batch(
        &self,
        max_records: usize,
        max_bytes: u64,
        ctx: &ProposalContext,
        policy: &BatchPolicy,
    ) -> Vec<Request> {
        let excluded = {
            let coordinator = self.coordinator.lock().expect("coordinator lock");
            coordinator.leases.exclusions(&ctx.ancestors)
        };
        let mut pool = self.pending.lock().expect("pending lock");
        Self::apply_ingest(&self.ingest_rx, &mut pool);
        pool.drain_core(max_records, max_bytes, &excluded, policy, ctx.now)
    }

    /// Observes one block crossing the wire (see
    /// [`Mempool::observe_proposal`]): decodes outside any lock, records
    /// the lease under the coordinator lock only. Returns `true` when a
    /// new lease was recorded.
    pub fn observe_proposal(&self, block: &Block) -> bool {
        let chunk = {
            let coordinator = self.coordinator.lock().expect("coordinator lock");
            match coordinator.speculation {
                Some(chunk) => chunk,
                None => return false,
            }
        };
        let Some(batch) = WorkloadBatch::decode(&block.payload) else {
            return false;
        };
        if batch.requests.is_empty() {
            return false;
        }
        let hash = block.hash(chunk);
        let mut coordinator = self.coordinator.lock().expect("coordinator lock");
        coordinator.leases.observe_with_provenance(
            hash,
            block.round,
            batch.requests,
            crate::LeaseProvenance::Optimistic {
                parent: block.parent,
            },
        )
    }

    /// Records a lease for a block whose batch was already decoded and
    /// whose hash was already computed — the staged pipeline's verify
    /// workers do both outside any lock and call this, so the decode and
    /// the commitment walk are never repeated under the coordinator.
    /// No-op (returns `false`) when speculation is off or the batch is
    /// empty; idempotent per block like
    /// [`observe_proposal`](Self::observe_proposal). `parent` links the
    /// lease for the eager certificate-conflict release.
    pub fn observe_decoded(
        &self,
        block: BlockHash,
        round: Round,
        parent: BlockHash,
        requests: Vec<Request>,
    ) -> bool {
        if requests.is_empty() {
            return false;
        }
        let mut coordinator = self.coordinator.lock().expect("coordinator lock");
        if coordinator.speculation.is_none() {
            return false;
        }
        coordinator.leases.observe_with_provenance(
            block,
            round,
            requests,
            crate::LeaseProvenance::Optimistic { parent },
        )
    }

    /// Commit-side retirement (see [`Mempool::mark_committed_block`]):
    /// lease removal and release collection happen under the coordinator
    /// lock; tombstoning and re-pending under the pending lock — in that
    /// order, never interleaved the other way.
    pub fn mark_committed_block(&self, block: BlockHash, round: Round, requests: &[Request]) {
        let released = {
            let mut coordinator = self.coordinator.lock().expect("coordinator lock");
            // The committed block's own lease is fulfilled, not released.
            coordinator.leases.remove(&block);
            // Dead-fork children first (their losing parents' live leases
            // pin the parent rounds), then the round sweep; re-pend in
            // ascending round order to match `Mempool`.
            let conflicting = coordinator.leases.take_conflicting(round, &block);
            let mut released = coordinator.leases.take_at_or_below(round);
            released.extend(conflicting);
            released
        };
        let mut pool = self.pending.lock().expect("pending lock");
        Self::apply_ingest(&self.ingest_rx, &mut pool);
        for req in requests {
            pool.mark_committed(req.id);
        }
        for requests in released {
            pool.reinsert_all(requests);
        }
    }

    /// Fork abandonment (see [`Mempool::release`]): returns how many
    /// requests re-entered the pending queue.
    pub fn release(&self, block: BlockHash) -> usize {
        let Some(requests) = self
            .coordinator
            .lock()
            .expect("coordinator lock")
            .leases
            .remove(&block)
        else {
            return 0;
        };
        let mut pool = self.pending.lock().expect("pending lock");
        pool.reinsert_all(requests)
    }

    /// Number of live leases in the coordinator.
    pub fn live_leases(&self) -> usize {
        self.coordinator
            .lock()
            .expect("coordinator lock")
            .leases
            .len()
    }

    /// Drains the gossip outbox (applies queued ingest first, so freshly
    /// pushed requests are forwarded without waiting for a drain point).
    pub fn take_outbox(&self) -> Vec<Request> {
        let mut pool = self.pending.lock().expect("pending lock");
        Self::apply_ingest(&self.ingest_rx, &mut pool);
        pool.take_outbox()
    }

    /// Synchronous push, bypassing the ingest channel (setup paths and
    /// tests; producer threads should use a [`PoolIngest`] handle).
    pub fn push_now(&self, req: Request) -> PushOutcome {
        self.pending.lock().expect("pending lock").push(req)
    }

    /// Marks one id committed (delivery-layer dedup hook).
    pub fn mark_committed(&self, id: u64) -> bool {
        self.pending
            .lock()
            .expect("pending lock")
            .mark_committed(id)
    }

    /// Live pending requests (after applying queued ingest).
    pub fn len(&self) -> usize {
        let mut pool = self.pending.lock().expect("pending lock");
        Self::apply_ingest(&self.ingest_rx, &mut pool);
        pool.len()
    }

    /// True when nothing is pending and nothing is queued for ingest.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct access to the pending pool (metrics, post-run inspection).
    /// Queued ingest is *not* applied; call
    /// [`sync_ingest`](Self::sync_ingest) first when it matters.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    pub fn pool(&self) -> MutexGuard<'_, Mempool> {
        self.pending.lock().expect("pending lock")
    }
}

impl std::fmt::Debug for ConcurrentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentPool")
            .field("ingest_queued", &self.ingest_rx.len())
            .field("ingest_dropped", &self.ingest_dropped())
            .finish_non_exhaustive()
    }
}

/// A [`ProposalSource`] draining a [`ConcurrentPool`] — the lock-split
/// counterpart of [`MempoolSource`](crate::MempoolSource), with the same
/// record/byte bounds and batch policy.
#[derive(Debug)]
pub struct ConcurrentMempoolSource {
    pool: SharedConcurrentPool,
    max_batch: usize,
    max_bytes: u64,
    policy: BatchPolicy,
}

impl ConcurrentMempoolSource {
    /// A source draining `pool`, at most `max_batch` requests and
    /// [`DEFAULT_MAX_BATCH_BYTES`](crate::DEFAULT_MAX_BATCH_BYTES)
    /// nominal bytes per block.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(pool: SharedConcurrentPool, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch record cap must be positive");
        ConcurrentMempoolSource {
            pool,
            max_batch,
            max_bytes: crate::DEFAULT_MAX_BATCH_BYTES,
            policy: BatchPolicy::EAGER,
        }
    }

    /// Overrides the nominal byte bound per batch.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Installs a latency-targeted [`BatchPolicy`].
    pub fn with_batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl ProposalSource for ConcurrentMempoolSource {
    fn next_payload(&mut self, ctx: &ProposalContext) -> Payload {
        let requests = self
            .pool
            .next_batch(self.max_batch, self.max_bytes, ctx, &self.policy);
        if requests.is_empty() {
            Payload::empty()
        } else {
            WorkloadBatch { requests }.into_payload()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_types::time::Time;

    fn req(id: u64, at: u64) -> Request {
        Request {
            id,
            client: (id % 7) as u16,
            size: 100,
            submitted_at: Time(at),
        }
    }

    fn hash(tag: u8) -> BlockHash {
        BlockHash([tag; 32])
    }

    #[test]
    fn ingest_is_applied_at_drain_points() {
        let pool = ConcurrentPool::new(Mempool::new(100), 64);
        let ingest = pool.ingest();
        assert!(ingest.push(req(1, 1)));
        assert!(ingest.forward(req(2, 2)));
        // Nothing is in the pending shards until a sync point.
        assert_eq!(pool.pool().len(), 0);
        let out = pool.next_batch(
            10,
            u64::MAX,
            &ProposalContext::root(Round(1), Time(3)),
            &BatchPolicy::EAGER,
        );
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn full_ingest_channel_sheds_and_counts() {
        let pool = ConcurrentPool::new(Mempool::new(100), 2);
        let ingest = pool.ingest();
        assert!(ingest.push(req(1, 1)));
        assert!(ingest.push(req(2, 2)));
        assert!(!ingest.push(req(3, 3)), "third push exceeds cap 2");
        assert_eq!(pool.ingest_dropped(), 1);
        assert_eq!(pool.sync_ingest(), 2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn coordinator_leases_steer_the_drain() {
        let pool = ConcurrentPool::new(Mempool::new(100).with_speculation(1024), 64);
        let ingest = pool.ingest();
        for id in 1..=4 {
            ingest.push(req(id, id));
        }
        pool.sync_ingest();
        // Lease {1,2} to an ancestor block via the coordinator.
        let batch = WorkloadBatch {
            requests: vec![req(1, 1), req(2, 2)],
        };
        use banyan_crypto::Signature;
        use banyan_types::ids::{Rank, ReplicaId};
        let block = Block {
            round: Round(3),
            proposer: ReplicaId(0),
            rank: Rank(0),
            parent: BlockHash::ZERO,
            proposed_at: Time(1),
            payload: batch.into_payload(),
            signature: Signature::zero(),
        };
        assert!(pool.observe_proposal(&block));
        assert_eq!(pool.live_leases(), 1);
        let ctx = ProposalContext {
            round: Round(4),
            now: Time(5),
            parent: block.hash(1024),
            ancestors: vec![block.hash(1024)],
        };
        let out = pool.next_batch(10, u64::MAX, &ctx, &BatchPolicy::EAGER);
        assert_eq!(
            out.iter().map(|r| r.id).collect::<Vec<_>>(),
            [3, 4],
            "ancestor-leased requests are skipped"
        );
        // Commit a competing block at the same round: the lease releases
        // {1,2} back into the pending queue.
        pool.mark_committed_block(hash(0xB), Round(3), &[req(9, 9)]);
        assert_eq!(pool.live_leases(), 0);
        let back = pool.next_batch(
            10,
            u64::MAX,
            &ProposalContext::root(Round(5), Time(6)),
            &BatchPolicy::EAGER,
        );
        assert_eq!(back.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn concurrent_source_drains_batches() {
        let pool = ConcurrentPool::new(Mempool::new(100), 64);
        let ingest = pool.ingest();
        for id in 1..=5 {
            ingest.push(req(id, id));
        }
        let mut src = ConcurrentMempoolSource::new(pool, 3);
        let payload = src.next_payload(&ProposalContext::root(Round(1), Time(9)));
        let batch = WorkloadBatch::decode(&payload).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 2, 3]
        );
    }

    #[test]
    fn release_reinserts_through_the_pending_lock() {
        let pool = ConcurrentPool::new(Mempool::new(100).with_speculation(1024), 64);
        let mut coordinator = pool.coordinator.lock().unwrap();
        coordinator
            .leases
            .observe(hash(0xA), Round(2), vec![req(7, 7), req(8, 8)]);
        drop(coordinator);
        assert_eq!(pool.release(hash(0xA)), 2);
        assert_eq!(pool.release(hash(0xA)), 0, "idempotent");
        assert_eq!(pool.len(), 2);
    }
}
