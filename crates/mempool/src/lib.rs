//! The request-dissemination layer: shared mempools, batch encoding,
//! pending-request gossip and exactly-once commit dedup.
//!
//! Banyan's latency claims assume client requests reach the *current*
//! leader promptly, but a request submitted to one replica's FIFO would
//! otherwise sit there until that replica happens to lead — and a request
//! batched into a proposal that never finalizes would be silently lost.
//! This crate owns everything between a client submission and an engine's
//! `next_payload` pull:
//!
//! * [`Mempool`] — a deterministic FIFO of pending [`Request`]s with
//!   capacity eviction, duplicate-id rejection, an optional **gossip
//!   outbox** (locally submitted requests queued for forwarding to peers)
//!   and **committed-id tracking** (the exactly-once dedup rule: a
//!   request observed committed is purged from the pending queue and
//!   every future push or forward of its id is rejected);
//! * [`SharedMempool`] — the `Arc<Mutex<_>>` handle the driver (producer
//!   side) and the engine's [`MempoolSource`] (consumer side) share;
//! * [`MempoolSource`] — a [`ProposalSource`] that drains the pool into
//!   one [`WorkloadBatch`] payload per proposal, bounded by a record cap
//!   and a nominal-byte cap;
//! * [`WorkloadBatch`] — the self-identifying wire encoding of a batch
//!   (request records + zero padding to the nominal byte size, so the
//!   bandwidth model charges what a real deployment would ship).
//!
//! The gossip traffic itself travels as
//! [`banyan_types::message::DisseminationMsg`] frames: drivers (the
//! simulator, the TCP runner) drain [`Mempool::take_outbox`] into
//! `Forward` broadcasts and apply received forwards via
//! [`Mempool::accept_forwarded`] — engines never see dissemination
//! traffic, preserving the purity contract (engines just pull
//! `next_payload`).
//!
//! # The exactly-once dedup rule
//!
//! A request id commits **exactly once** at the delivery layer even when
//! gossip, submit fan-out or client retries put copies of it in several
//! pools:
//!
//! 1. every driver, on observing a commit, calls
//!    [`Mempool::mark_committed`] for each batched id on *its own*
//!    replica's pool — purging still-pending copies cluster-wide within
//!    one commit round and rejecting any later push/forward/retry of the
//!    id;
//! 2. copies already drained into in-flight proposals can still land in a
//!    second committed block (the pool cannot recall them); the metrics
//!    and `App`-delivery layers therefore dedup by id — the first
//!    committed occurrence wins, later ones are counted as *suppressed
//!    duplicates*, never delivered or measured twice.
//!
//! Everything is a deterministic function of inputs: replays of a seeded
//! run reproduce the same pools, batches and forwards bit-for-bit.

#![warn(missing_docs)]

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use banyan_types::app::ProposalSource;
use banyan_types::codec::{Reader, Wire, Writer};
use banyan_types::ids::Round;
use banyan_types::payload::Payload;
use banyan_types::time::Time;

pub use banyan_types::message::PendingRequest as Request;

/// Magic prefix identifying a [`WorkloadBatch`] payload.
const BATCH_MAGIC: &[u8; 8] = b"BanyanWB";

/// Default mempool capacity (pending requests per replica).
pub const DEFAULT_MEMPOOL_CAPACITY: usize = 65_536;

/// Default maximum requests drained into one block.
pub const DEFAULT_MAX_BATCH: usize = 4_096;

/// Default maximum *nominal bytes* drained into one block (2 MB — twice
/// the largest block size the paper evaluates), so large requests cannot
/// inflate a single batch to gigabytes regardless of the record cap.
pub const DEFAULT_MAX_BATCH_BYTES: u64 = 2_000_000;

/// Outcome of a [`Mempool::push`] (or [`Mempool::accept_forwarded`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted; nothing evicted.
    Accepted,
    /// Accepted, and the oldest pending request was evicted to make room.
    AcceptedEvicting(u64),
    /// Rejected: a request with the same id is already pending.
    Duplicate,
    /// Rejected: a request with this id was already observed committed
    /// (the exactly-once dedup rule; see the crate docs).
    Committed,
}

/// A deterministic FIFO mempool with bounded capacity, an optional gossip
/// outbox and committed-id tracking.
///
/// Requests are served strictly in submission order. A request whose id is
/// already pending is rejected ([`PushOutcome::Duplicate`]); one whose id
/// was already [marked committed](Self::mark_committed) is rejected
/// forever ([`PushOutcome::Committed`]). When the pool is full, pushing a
/// new request evicts the *oldest* pending one (clients keep the freshest
/// work).
///
/// Committed-id purging is lazy: [`mark_committed`](Self::mark_committed)
/// removes the id from the pending set in O(1) and leaves a tombstone in
/// the FIFO, which drains skip — so commit-time dedup stays cheap even
/// for large pools. [`len`](Self::len) counts live (non-tombstone)
/// requests only.
#[derive(Debug)]
pub struct Mempool {
    capacity: usize,
    queue: VecDeque<Request>,
    pending_ids: HashSet<u64>,
    /// Ids observed committed; never accepted again.
    committed_ids: HashSet<u64>,
    /// When true, locally pushed requests are queued for gossip.
    gossip: bool,
    /// Locally submitted requests awaiting a driver's forward broadcast.
    outbox: VecDeque<Request>,
    accepted: u64,
    evicted: u64,
    duplicates: u64,
    forwarded_in: u64,
    rejected_committed: u64,
}

impl Mempool {
    /// An empty mempool holding at most `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            capacity,
            queue: VecDeque::new(),
            pending_ids: HashSet::new(),
            committed_ids: HashSet::new(),
            gossip: false,
            outbox: VecDeque::new(),
            accepted: 0,
            evicted: 0,
            duplicates: 0,
            forwarded_in: 0,
            rejected_committed: 0,
        }
    }

    /// Builder-style: enables (or disables) the gossip outbox. When
    /// enabled, every locally [`push`](Self::push)ed request is also
    /// queued for the driver to forward to peers via
    /// [`take_outbox`](Self::take_outbox).
    pub fn with_gossip(mut self, on: bool) -> Self {
        self.set_gossip(on);
        self
    }

    /// Enables (or disables) the gossip outbox in place — the
    /// shared-handle counterpart of [`with_gossip`](Self::with_gossip).
    pub fn set_gossip(&mut self, on: bool) {
        self.gossip = on;
    }

    /// A new mempool behind the `Arc<Mutex<_>>` the driver and the
    /// engine's [`MempoolSource`] share.
    pub fn shared(capacity: usize) -> SharedMempool {
        Arc::new(Mutex::new(Mempool::new(capacity)))
    }

    /// Like [`shared`](Self::shared), with the gossip outbox enabled.
    pub fn shared_gossiping(capacity: usize) -> SharedMempool {
        Arc::new(Mutex::new(Mempool::new(capacity).with_gossip(true)))
    }

    /// True when the gossip outbox is enabled.
    pub fn gossip_enabled(&self) -> bool {
        self.gossip
    }

    /// Submits one locally received request. FIFO position is acquisition
    /// order; with gossip enabled, an accepted request is also queued for
    /// forwarding.
    pub fn push(&mut self, req: Request) -> PushOutcome {
        let outcome = self.insert(req);
        if self.gossip
            && matches!(
                outcome,
                PushOutcome::Accepted | PushOutcome::AcceptedEvicting(_)
            )
        {
            self.outbox.push_back(req);
        }
        outcome
    }

    /// Accepts a request forwarded by a peer's gossip. Identical to
    /// [`push`](Self::push) except the request is **not** re-queued for
    /// gossip (dissemination is one round — forwards never cascade).
    pub fn accept_forwarded(&mut self, req: Request) -> PushOutcome {
        let outcome = self.insert(req);
        if matches!(
            outcome,
            PushOutcome::Accepted | PushOutcome::AcceptedEvicting(_)
        ) {
            self.forwarded_in += 1;
        }
        outcome
    }

    fn insert(&mut self, req: Request) -> PushOutcome {
        if self.committed_ids.contains(&req.id) {
            self.rejected_committed += 1;
            return PushOutcome::Committed;
        }
        if !self.pending_ids.insert(req.id) {
            self.duplicates += 1;
            return PushOutcome::Duplicate;
        }
        self.accepted += 1;
        self.queue.push_back(req);
        if self.pending_ids.len() > self.capacity {
            let oldest = self.pop_live().expect("over capacity implies a live entry");
            self.evicted += 1;
            return PushOutcome::AcceptedEvicting(oldest.id);
        }
        PushOutcome::Accepted
    }

    /// Pops the oldest *live* (non-tombstone) request, discarding any
    /// leading tombstones left by [`mark_committed`](Self::mark_committed).
    fn pop_live(&mut self) -> Option<Request> {
        while let Some(front) = self.queue.pop_front() {
            if self.pending_ids.remove(&front.id) {
                return Some(front);
            }
        }
        None
    }

    /// Records that `id` was observed committed: any pending copy becomes
    /// a tombstone (skipped by future drains) and every later push,
    /// forward or retry of the id is rejected with
    /// [`PushOutcome::Committed`]. Returns `true` the first time the id is
    /// marked.
    pub fn mark_committed(&mut self, id: u64) -> bool {
        if !self.committed_ids.insert(id) {
            return false;
        }
        self.pending_ids.remove(&id);
        true
    }

    /// True if `id` was ever [marked committed](Self::mark_committed).
    pub fn is_committed(&self, id: u64) -> bool {
        self.committed_ids.contains(&id)
    }

    /// Drains the gossip outbox: the locally pushed requests a driver
    /// should forward to peers, oldest first. Requests already observed
    /// committed in the meantime are dropped rather than forwarded.
    pub fn take_outbox(&mut self) -> Vec<Request> {
        self.outbox
            .drain(..)
            .filter(|r| !self.committed_ids.contains(&r.id))
            .collect()
    }

    /// Removes and returns up to `max` requests, oldest first.
    pub fn drain(&mut self, max: usize) -> Vec<Request> {
        self.drain_bounded(max, u64::MAX)
    }

    /// Removes and returns requests, oldest first, stopping before
    /// `max_records` is exceeded and before the *nominal* byte total
    /// (the sum of [`Request::size`]) would exceed `max_bytes`. When
    /// `max_records > 0`, at least one request is taken when any is
    /// pending — a single oversized request still ships rather than
    /// wedging the pool ([`MempoolSource`] rejects a zero record cap at
    /// construction for the same reason). Tombstones of committed ids are
    /// discarded along the way, never returned.
    pub fn drain_bounded(&mut self, max_records: usize, max_bytes: u64) -> Vec<Request> {
        let mut out = Vec::new();
        let mut bytes = 0u64;
        while out.len() < max_records {
            let Some(front) = self.queue.front() else {
                break;
            };
            if !self.pending_ids.contains(&front.id) {
                self.queue.pop_front();
                continue;
            }
            let next = bytes.saturating_add(front.size);
            if !out.is_empty() && next > max_bytes {
                break;
            }
            bytes = next;
            let req = self.queue.pop_front().expect("front just checked");
            self.pending_ids.remove(&req.id);
            out.push(req);
        }
        out
    }

    /// Pending (live) requests.
    pub fn len(&self) -> usize {
        self.pending_ids.len()
    }

    /// Ids of the pending (live) requests, in no particular order. Used
    /// by loss accounting to count *unique* uncommitted requests across
    /// pools — with gossip or fan-out, one request can have live copies
    /// in several pools, and summing [`len`](Self::len)s would hide real
    /// losses behind surviving copies of other requests.
    pub fn pending_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.pending_ids.iter().copied()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending_ids.is_empty()
    }

    /// Requests accepted so far (including later-evicted ones; local
    /// pushes and peer forwards alike).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Requests evicted by capacity pressure so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Requests rejected as pending duplicates so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Peer-forwarded requests accepted so far.
    pub fn forwarded_in(&self) -> u64 {
        self.forwarded_in
    }

    /// Pushes/forwards rejected because the id had already committed.
    pub fn rejected_committed(&self) -> u64 {
        self.rejected_committed
    }
}

/// A mempool shared between a driver (producer side) and an engine's
/// [`MempoolSource`] (consumer side).
pub type SharedMempool = Arc<Mutex<Mempool>>;

/// The requests carried by one block payload, recoverable from the
/// committed payload bytes.
///
/// # Wire encoding
///
/// ```text
/// "BanyanWB"             8-byte magic prefix (self-identification)
/// count: u32 LE          number of request records
/// count × 26-byte record, each little-endian:
///   id: u64  client: u16  size: u64  submitted_at: u64 (ns)
/// zero padding           up to the batch's nominal size
/// ```
///
/// The record layout is [`banyan_types::message::PendingRequest`]'s —
/// the same 26 bytes a `DisseminationMsg::Forward` ships per request.
/// The nominal size is the sum of request sizes, so the simulator's
/// bandwidth model charges what shipping the real request bytes would
/// cost. Payloads without the magic prefix (synthetic payloads, empty
/// blocks, foreign inline content) [`decode`](Self::decode) to `None`;
/// a truncated or corrupt batch is rejected, never a panic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadBatch {
    /// The batched requests, in mempool (FIFO) order.
    pub requests: Vec<Request>,
}

impl WorkloadBatch {
    /// Bytes of one encoded request record (the [`Request`] `Wire`
    /// encoding — the same 26 bytes a `DisseminationMsg::Forward`
    /// ships).
    const RECORD: usize = 8 + 2 + 8 + 8;

    /// Nominal batch size: the sum of request sizes.
    pub fn nominal_size(&self) -> u64 {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Encodes the batch as an inline payload (see the type docs).
    /// Records are written through [`Request`]'s `Wire` impl, so the
    /// batch layout can never drift from the dissemination layer's.
    pub fn into_payload(self) -> Payload {
        let header = BATCH_MAGIC.len() + 4 + self.requests.len() * Self::RECORD;
        let total = (self.nominal_size() as usize).max(header);
        let mut w = Writer::with_capacity(total);
        w.raw(BATCH_MAGIC);
        w.u32(self.requests.len() as u32);
        for req in &self.requests {
            req.encode(&mut w);
        }
        let mut bytes = w.into_bytes();
        bytes.resize(total, 0);
        Payload::Inline(bytes)
    }

    /// Decodes a batch from a committed payload. Returns `None` for
    /// payloads that are not workload batches (synthetic payloads, empty
    /// blocks, foreign inline content); a truncated or corrupt batch is
    /// rejected, never a panic.
    pub fn decode(payload: &Payload) -> Option<WorkloadBatch> {
        let Payload::Inline(bytes) = payload else {
            return None;
        };
        let rest = bytes.strip_prefix(BATCH_MAGIC.as_slice())?;
        let mut reader = Reader::new(rest);
        let count = reader.u32().ok()? as usize;
        // A corrupt count must fail the length check here, not reserve
        // gigabytes below: never trust it beyond what the bytes can hold.
        if count > reader.remaining() / Self::RECORD {
            return None;
        }
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            requests.push(Request::decode(&mut reader).ok()?);
        }
        Some(WorkloadBatch { requests })
    }
}

/// A [`ProposalSource`] that drains a [`SharedMempool`] into one
/// [`WorkloadBatch`] payload per proposal. An empty mempool yields an
/// empty payload (the chain keeps moving; blocks just carry no work).
///
/// Each batch is bounded two ways: at most `max_batch` request records
/// *and* at most [`max_bytes`](Self::with_max_bytes) nominal bytes (the
/// sum of request sizes — what the bandwidth model will charge for the
/// block). Without the byte bound, large requests would let the record
/// cap admit multi-gigabyte blocks.
///
/// Draining is destructive: a request batched into a proposal that never
/// finalizes (a backup proposal that loses to the leader's, or an
/// equivocator's second block) is gone *from this pool* — the engine
/// cannot know at drain time whether its block will win. With the
/// dissemination layer off that means the request is lost outright
/// (visible as `requests_lost` in the metrics); with gossip, fan-out or
/// client retry enabled another copy survives elsewhere and commits
/// exactly once (see the crate docs).
#[derive(Debug)]
pub struct MempoolSource {
    mempool: SharedMempool,
    max_batch: usize,
    max_bytes: u64,
}

impl MempoolSource {
    /// A source draining `mempool`, at most `max_batch` requests and
    /// [`DEFAULT_MAX_BATCH_BYTES`] nominal bytes per block.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (every block would be empty forever
    /// while requests pile up in the pool).
    pub fn new(mempool: SharedMempool, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch record cap must be positive");
        MempoolSource {
            mempool,
            max_batch,
            max_bytes: DEFAULT_MAX_BATCH_BYTES,
        }
    }

    /// Overrides the nominal byte bound per batch.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }
}

impl ProposalSource for MempoolSource {
    fn next_payload(&mut self, _round: Round, _now: Time) -> Payload {
        let requests = self
            .mempool
            .lock()
            .expect("mempool lock")
            .drain_bounded(self.max_batch, self.max_bytes);
        if requests.is_empty() {
            Payload::empty()
        } else {
            WorkloadBatch { requests }.into_payload()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, at: u64) -> Request {
        Request {
            id,
            client: (id % 7) as u16,
            size: 100,
            submitted_at: Time(at),
        }
    }

    #[test]
    fn mempool_serves_fifo_order() {
        let mut mp = Mempool::new(10);
        for id in 1..=5 {
            assert_eq!(mp.push(req(id, id)), PushOutcome::Accepted);
        }
        let drained = mp.drain(3);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        let rest = mp.drain(usize::MAX);
        assert_eq!(rest.iter().map(|r| r.id).collect::<Vec<_>>(), [4, 5]);
        assert!(mp.is_empty());
    }

    #[test]
    fn mempool_rejects_pending_duplicates_only() {
        let mut mp = Mempool::new(10);
        assert_eq!(mp.push(req(1, 0)), PushOutcome::Accepted);
        assert_eq!(mp.push(req(1, 1)), PushOutcome::Duplicate);
        assert_eq!(mp.len(), 1);
        assert_eq!(mp.duplicates(), 1);
        // Once drained, the id may be resubmitted (e.g. a client retry).
        mp.drain(1);
        assert_eq!(mp.push(req(1, 2)), PushOutcome::Accepted);
    }

    #[test]
    fn mempool_capacity_evicts_oldest() {
        let mut mp = Mempool::new(3);
        for id in 1..=3 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.push(req(4, 4)), PushOutcome::AcceptedEvicting(1));
        assert_eq!(mp.len(), 3);
        assert_eq!(mp.evicted(), 1);
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [2, 3, 4]);
        // The evicted id is free again.
        assert_eq!(mp.push(req(1, 9)), PushOutcome::Accepted);
    }

    #[test]
    fn committed_ids_are_rejected_forever() {
        let mut mp = Mempool::new(10);
        mp.push(req(1, 0));
        mp.drain(1);
        assert!(mp.mark_committed(1), "first mark reports newly committed");
        assert!(!mp.mark_committed(1), "second mark is a no-op");
        assert!(mp.is_committed(1));
        // A retry (or re-gossip) of the committed id is rejected.
        assert_eq!(mp.push(req(1, 5)), PushOutcome::Committed);
        assert_eq!(mp.accept_forwarded(req(1, 6)), PushOutcome::Committed);
        assert_eq!(mp.rejected_committed(), 2);
    }

    #[test]
    fn mark_committed_tombstones_pending_copies() {
        let mut mp = Mempool::new(10);
        for id in 1..=4 {
            mp.push(req(id, id));
        }
        // Another replica's block carrying 2 commits before we drain.
        mp.mark_committed(2);
        assert_eq!(mp.len(), 3, "tombstones do not count as pending");
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 3, 4], "the committed copy is never drained");
    }

    #[test]
    fn eviction_skips_tombstones() {
        let mut mp = Mempool::new(2);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        mp.mark_committed(1); // tombstone at the queue front
        mp.push(req(3, 3));
        // Live set {2, 3} is within capacity: nothing to evict.
        assert_eq!(mp.len(), 2);
        assert_eq!(mp.push(req(4, 4)), PushOutcome::AcceptedEvicting(2));
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [3, 4]);
    }

    #[test]
    fn gossip_outbox_tracks_local_pushes_only() {
        let mut mp = Mempool::new(10).with_gossip(true);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        // A forwarded request never re-enters the outbox (one round).
        assert_eq!(mp.accept_forwarded(req(3, 3)), PushOutcome::Accepted);
        // A rejected push is not queued for forwarding either.
        assert_eq!(mp.push(req(1, 4)), PushOutcome::Duplicate);
        let out: Vec<u64> = mp.take_outbox().iter().map(|r| r.id).collect();
        assert_eq!(out, [1, 2]);
        assert!(mp.take_outbox().is_empty(), "outbox drains");
        assert_eq!(mp.forwarded_in(), 1);
        assert_eq!(mp.len(), 3, "all three requests are pending");
    }

    #[test]
    fn outbox_drops_requests_committed_before_the_flush() {
        let mut mp = Mempool::new(10).with_gossip(true);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        mp.mark_committed(1);
        let out: Vec<u64> = mp.take_outbox().iter().map(|r| r.id).collect();
        assert_eq!(out, [2], "no bandwidth spent forwarding committed work");
    }

    #[test]
    fn outbox_disabled_by_default() {
        let mut mp = Mempool::new(10);
        assert!(!mp.gossip_enabled());
        mp.push(req(1, 1));
        assert!(mp.take_outbox().is_empty());
    }

    #[test]
    fn batch_roundtrips_and_pads_to_nominal_size() {
        let batch = WorkloadBatch {
            requests: vec![req(7, 100), req(8, 250)],
        };
        assert_eq!(batch.nominal_size(), 200);
        let payload = batch.clone().into_payload();
        // Padded to the nominal byte size: bandwidth is charged as if the
        // real request bytes were on the wire.
        assert_eq!(payload.len(), 200);
        assert_eq!(WorkloadBatch::decode(&payload), Some(batch));
    }

    #[test]
    fn tiny_batches_keep_their_header() {
        // 2 one-byte requests: the header exceeds the nominal size, so the
        // payload grows to fit the records.
        let batch = WorkloadBatch {
            requests: vec![
                Request {
                    id: 1,
                    client: 0,
                    size: 1,
                    submitted_at: Time(5),
                },
                Request {
                    id: 2,
                    client: 1,
                    size: 1,
                    submitted_at: Time(6),
                },
            ],
        };
        let payload = batch.clone().into_payload();
        assert!(payload.len() > 2);
        assert_eq!(WorkloadBatch::decode(&payload), Some(batch));
    }

    #[test]
    fn non_batch_payloads_decode_to_none() {
        assert_eq!(WorkloadBatch::decode(&Payload::empty()), None);
        assert_eq!(WorkloadBatch::decode(&Payload::synthetic(1_000, 3)), None);
        assert_eq!(
            WorkloadBatch::decode(&Payload::Inline(b"not a batch".to_vec())),
            None
        );
        // Truncated batch (magic but no count) is rejected, not a panic.
        assert_eq!(
            WorkloadBatch::decode(&Payload::Inline(BATCH_MAGIC.to_vec())),
            None
        );
    }

    #[test]
    fn mempool_source_drains_in_batches() {
        let shared = Mempool::shared(100);
        {
            let mut mp = shared.lock().unwrap();
            for id in 1..=5 {
                mp.push(req(id, id));
            }
        }
        let mut src = MempoolSource::new(shared.clone(), 3);
        let first = src.next_payload(Round(1), Time(10));
        let batch = WorkloadBatch::decode(&first).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let second = src.next_payload(Round(2), Time(20));
        let batch = WorkloadBatch::decode(&second).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [4, 5]
        );
        // Empty mempool → empty payload, not a stall.
        assert!(src.next_payload(Round(3), Time(30)).is_empty());
    }

    #[test]
    fn drain_bounded_enforces_nominal_byte_cap() {
        // Regression: with large requests, the record cap alone admitted
        // arbitrarily many bytes per batch.
        let mut mp = Mempool::new(100);
        for id in 1..=10 {
            mp.push(Request {
                id,
                client: 0,
                size: 1_000_000,
                submitted_at: Time(id),
            });
        }
        let batch = mp.drain_bounded(4_096, DEFAULT_MAX_BATCH_BYTES);
        assert_eq!(
            batch.len(),
            2,
            "2 MB cap must stop a 1 MB-request drain at two records"
        );
        // An oversized single request still ships (no wedge).
        let mut mp = Mempool::new(10);
        mp.push(Request {
            id: 1,
            client: 0,
            size: 10_000_000,
            submitted_at: Time(1),
        });
        assert_eq!(mp.drain_bounded(4_096, DEFAULT_MAX_BATCH_BYTES).len(), 1);
        // The record cap still applies to small requests.
        let mut mp = Mempool::new(10);
        for id in 1..=5 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.drain_bounded(3, u64::MAX).len(), 3);
    }

    #[test]
    fn mempool_source_honors_byte_cap() {
        let shared = Mempool::shared(100);
        {
            let mut mp = shared.lock().unwrap();
            for id in 1..=6 {
                mp.push(Request {
                    id,
                    client: 0,
                    size: 400,
                    submitted_at: Time(id),
                });
            }
        }
        let mut src = MempoolSource::new(shared, 4_096).with_max_bytes(1_000);
        let batch = WorkloadBatch::decode(&src.next_payload(Round(1), Time(1))).unwrap();
        assert_eq!(batch.requests.len(), 2, "400+400 fits, +400 would not");
        assert!(batch.nominal_size() <= 1_000);
    }
}
