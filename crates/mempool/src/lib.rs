//! The request-dissemination layer: shared mempools, batch encoding,
//! pending-request gossip, exactly-once commit dedup and the
//! **speculative drain** (ancestor-aware leases + latency-targeted
//! batching).
//!
//! Banyan's latency claims assume client requests reach the *current*
//! leader promptly, but a request submitted to one replica's FIFO would
//! otherwise sit there until that replica happens to lead — and a request
//! batched into a proposal that never finalizes would be silently lost.
//! This crate owns everything between a client submission and an engine's
//! `next_payload` pull:
//!
//! * [`Mempool`] — a deterministic FIFO of pending [`Request`]s with
//!   capacity eviction, duplicate-id rejection, an optional **gossip
//!   outbox** (locally submitted requests queued for forwarding to peers,
//!   bounded — see [`DEFAULT_OUTBOX_CAP`]) and **committed-id tracking**
//!   (the exactly-once dedup rule: a request observed committed is purged
//!   from the pending queue and every future push or forward of its id is
//!   rejected);
//! * [`SharedMempool`] — the `Arc<Mutex<_>>` handle the driver (producer
//!   side) and the engine's [`MempoolSource`] (consumer side) share;
//! * [`MempoolSource`] — a [`ProposalSource`] that drains the pool into
//!   one [`WorkloadBatch`] payload per proposal, bounded by a record cap
//!   and a nominal-byte cap, steered by a
//!   [`ProposalContext`] and an
//!   optional [`BatchPolicy`];
//! * [`WorkloadBatch`] — the self-identifying wire encoding of a batch
//!   (request records + zero padding to the nominal byte size, so the
//!   bandwidth model charges what a real deployment would ship).
//!
//! # Speculative drain & leases
//!
//! With gossip, every replica's pool holds a copy of (nearly) every
//! pending request, so a leader that drains its FIFO blind to the chain
//! re-batches everything its *uncommitted ancestors* already carry — the
//! commit-lag duplication the sweep's `dups` column measures (large for
//! HotStuff/Streamlet's multi-block commit lag).
//! [`Mempool::with_speculation`] turns the pool into a speculative one:
//!
//! * the driver layer calls [`Mempool::observe_proposal`] for every block
//!   that crosses the wire (own proposals on the way out, peers' on the
//!   way in); the pool decodes the block's [`WorkloadBatch`] and records a
//!   **lease** — `block id → the requests it carries` — so inclusion
//!   tracking never touches an engine;
//! * [`Mempool::drain_speculative`] (what [`MempoolSource`] calls) skips
//!   every request leased to a **live ancestor** of the block being
//!   proposed (the `ProposalContext::ancestors` chain), leaving those
//!   pending copies untouched for the fork they might still be needed on;
//! * [`Mempool::mark_committed_block`] retires the committed block's
//!   lease and **releases** every lease at or below the committed round
//!   whose block lost (fork abandonment / round skip): its requests
//!   re-enter the pending queue with their original id and submit
//!   timestamp via [`Mempool::release`], so nothing is stranded.
//!
//! [`BatchPolicy`] adds latency-targeted batching on top of the same
//! context: a leader may defer (return an empty payload) until the
//! eligible backlog reaches a byte target or its oldest request reaches an
//! age target — trading a bounded wait for fuller blocks.
//!
//! Everything defaults **off**: with speculation disabled and the
//! [`BatchPolicy::EAGER`] policy, drains are bit-identical to the
//! historical blind FIFO drain.
//!
//! The gossip traffic itself travels as
//! [`banyan_types::message::DisseminationMsg`] frames: drivers (the
//! simulator, the TCP runner) drain [`Mempool::take_outbox`] into
//! `Forward` broadcasts and apply received forwards via
//! [`Mempool::accept_forwarded`] — engines never see dissemination
//! traffic, preserving the purity contract (engines just pull
//! `next_payload`).
//!
//! # The exactly-once dedup rule
//!
//! A request id commits **exactly once** at the delivery layer even when
//! gossip, submit fan-out or client retries put copies of it in several
//! pools:
//!
//! 1. every driver, on observing a commit, calls
//!    [`Mempool::mark_committed`] for each batched id on *its own*
//!    replica's pool — purging still-pending copies cluster-wide within
//!    one commit round and rejecting any later push/forward/retry of the
//!    id;
//! 2. copies already drained into in-flight proposals can still land in a
//!    second committed block (the pool cannot recall them); the metrics
//!    and `App`-delivery layers therefore dedup by id — the first
//!    committed occurrence wins, later ones are counted as *suppressed
//!    duplicates*, never delivered or measured twice.
//!
//! # Sharding
//!
//! The pending queue is split into `S` independent **shards** by
//! request-id hash ([`Mempool::with_shards`]; default 1). Each shard owns
//! its FIFO, dedup set and byte accounting, so the lock-split
//! [`ConcurrentPool`] and the staged replica pipeline can grow ingest
//! parallelism without a single hot queue. Drains stay deterministic for
//! *any* shard count: every accepted request is stamped with a global
//! **arrival sequence number**, and the drain merges shard heads by
//! minimum sequence — exactly the order a single FIFO would serve. (For
//! the normal in-order client stream this equals `(timestamp, id)` order;
//! the sequence stamp additionally keeps released and retried requests —
//! which re-enter the queue *back* with their original older timestamps —
//! in their re-arrival position, which is what the single-queue pool
//! always did.) `shards(1)` is bit-identical to the historical pool, and
//! any `S` produces the same drain order as `S = 1`.
//!
//! Everything is a deterministic function of inputs: replays of a seeded
//! run reproduce the same pools, batches and forwards bit-for-bit.

#![warn(missing_docs)]

mod concurrent;
mod lease;

pub use concurrent::{
    ConcurrentMempoolSource, ConcurrentPool, PoolIngest, SharedConcurrentPool, DEFAULT_INGEST_CAP,
};
pub use lease::{LeaseProvenance, LeaseTable};

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use banyan_types::app::{ProposalContext, ProposalSource};
use banyan_types::block::Block;
use banyan_types::codec::{Reader, Wire, Writer};
use banyan_types::ids::{BlockHash, Round};
use banyan_types::payload::Payload;
use banyan_types::time::{Duration, Time};

pub use banyan_types::message::PendingRequest as Request;

/// Magic prefix identifying a [`WorkloadBatch`] payload.
const BATCH_MAGIC: &[u8; 8] = b"BanyanWB";

/// Default mempool capacity (pending requests per replica).
pub const DEFAULT_MEMPOOL_CAPACITY: usize = 65_536;

/// Default maximum requests drained into one block.
pub const DEFAULT_MAX_BATCH: usize = 4_096;

/// Default maximum *nominal bytes* drained into one block (2 MB — twice
/// the largest block size the paper evaluates), so large requests cannot
/// inflate a single batch to gigabytes regardless of the record cap.
pub const DEFAULT_MAX_BATCH_BYTES: u64 = 2_000_000;

/// Default bound on the gossip outbox (requests queued for forwarding).
/// A replica whose driver cannot flush (e.g. one side of a long
/// partition) drops the *oldest* queued forwards past this cap instead of
/// growing without limit; drops are counted in
/// [`Mempool::forward_dropped`]. Clients retry, so a dropped forward is a
/// delayed request, never a lost one.
pub const DEFAULT_OUTBOX_CAP: usize = 16_384;

/// Default bound on each **per-peer** relay queue (propagation-limited
/// gossip). Past it the oldest queued entry for that peer is shed and
/// counted in [`Mempool::peer_sheds`] — a slow or partitioned peer sheds
/// its own queue, never the pool's other queues.
pub const DEFAULT_PEER_QUEUE_CAP: usize = 4_096;

/// Default credit per peer queue: how many requests a driver may take for
/// one peer before it must [`grant_peer_credit`](Mempool::grant_peer_credit)
/// (i.e. confirm the previous flush was actually transmitted).
pub const DEFAULT_PEER_CREDIT: u32 = 512;

/// Latency-targeted batching policy: when may a leader return an *empty*
/// payload instead of draining the pool?
///
/// A leader holding only a trickle of requests wastes a block (and its
/// fixed consensus cost) on a near-empty batch. Under this policy the
/// [`MempoolSource`] defers — proposes an empty payload, leaving the
/// requests pending for a later leader — until the **eligible** backlog
/// (pending requests not leased to a live ancestor) reaches `min_bytes`
/// of nominal size, *or* its oldest eligible request has waited
/// `max_age` since first submission. The age escape hatch bounds the
/// extra latency a deferral can ever add.
///
/// [`BatchPolicy::EAGER`] (the default, `min_bytes = 0`) never defers and
/// reproduces the historical drain-every-proposal behavior bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Build a batch once the eligible backlog reaches this many nominal
    /// bytes (0 = always build).
    pub min_bytes: u64,
    /// …or once the oldest eligible request has waited this long since
    /// its first submission, whichever comes first.
    pub max_age: Duration,
}

impl BatchPolicy {
    /// Drain on every proposal (the historical behavior).
    pub const EAGER: BatchPolicy = BatchPolicy {
        min_bytes: 0,
        max_age: Duration::ZERO,
    };

    /// A policy targeting `min_bytes` per batch, deferring at most
    /// `max_age` past a request's first submission.
    pub fn target(min_bytes: u64, max_age: Duration) -> Self {
        BatchPolicy { min_bytes, max_age }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::EAGER
    }
}

/// Outcome of a [`Mempool::push`] (or [`Mempool::accept_forwarded`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted; nothing evicted.
    Accepted,
    /// Accepted, and the oldest pending request was evicted to make room.
    AcceptedEvicting(u64),
    /// Rejected: a request with the same id is already pending.
    Duplicate,
    /// Rejected: a request with this id was already observed committed
    /// (the exactly-once dedup rule; see the crate docs).
    Committed,
}

/// A deterministic FIFO mempool with bounded capacity, an optional gossip
/// outbox and committed-id tracking.
///
/// Requests are served strictly in submission order. A request whose id is
/// already pending is rejected ([`PushOutcome::Duplicate`]); one whose id
/// was already [marked committed](Self::mark_committed) is rejected
/// forever ([`PushOutcome::Committed`]). When the pool is full, pushing a
/// new request evicts the *oldest* pending one (clients keep the freshest
/// work).
///
/// Committed-id purging is lazy: [`mark_committed`](Self::mark_committed)
/// removes the id from the pending set in O(1) and leaves a tombstone in
/// the FIFO, which drains skip — so commit-time dedup stays cheap even
/// for large pools. [`len`](Self::len) counts live (non-tombstone)
/// requests only.
#[derive(Debug)]
pub struct Mempool {
    capacity: usize,
    /// The pending queue, split by request-id hash (see the crate-level
    /// *Sharding* section). One shard by default.
    shards: Vec<Shard>,
    /// Global arrival stamp: every accepted request gets the next value,
    /// and drains merge shard heads by minimum stamp — the single-FIFO
    /// service order, independent of the shard count.
    next_seq: u64,
    /// Ids observed committed; never accepted again.
    committed_ids: HashSet<u64>,
    /// When true, locally pushed requests are queued for gossip.
    gossip: bool,
    /// Locally submitted requests awaiting a driver's forward broadcast.
    outbox: VecDeque<Request>,
    /// Outbox bound: past it the oldest queued forward is dropped.
    outbox_cap: usize,
    /// Per-peer relay queues (propagation-limited gossip). Empty =
    /// broadcast mode (the shared outbox above). Non-empty diverts every
    /// gossiped request into one bounded, credit-gated queue per fanout
    /// peer.
    peer_queues: Vec<PeerQueue>,
    /// Bound on each per-peer queue (drop-oldest past it).
    peer_queue_cap: usize,
    /// Credit ceiling per peer queue; see [`take_peer_outbox`](Self::take_peer_outbox).
    peer_credit_max: u32,
    /// Entries shed by per-peer queue bounds so far (all peers).
    peer_sheds: u64,
    /// `Some(payload_chunk)` when the speculative lease machinery is on
    /// (the chunk size parameterizes block hashing in
    /// [`observe_proposal`](Self::observe_proposal)).
    speculation: Option<usize>,
    /// Live leases (see [`LeaseTable`]).
    leases: LeaseTable,
    accepted: u64,
    evicted: u64,
    duplicates: u64,
    forwarded_in: u64,
    rejected_committed: u64,
    forward_dropped: u64,
    released: u64,
    deferred: u64,
}

/// One pending-queue shard: its own FIFO, dedup/live set and byte
/// accounting. Queue entries carry the global arrival stamp the drain
/// merge orders by; `pending` maps each live id to its nominal size so
/// tombstoning ([`Mempool::mark_committed`]) can keep `pending_bytes`
/// exact in O(1).
#[derive(Debug, Default)]
struct Shard {
    queue: VecDeque<(u64, Request)>,
    pending: HashMap<u64, u64>,
    pending_bytes: u64,
}

/// One peer's bounded outbound relay queue (propagation-limited gossip).
/// Entries are `(request, relay)`: `relay = false` for locally pushed
/// requests (first hop, shipped as `Forward` with bodies), `true` for
/// requests accepted from a peer and relayed onward (shipped as the
/// compact `Announce`).
#[derive(Debug)]
struct PeerQueue {
    /// The peer's replica index.
    peer: usize,
    queue: VecDeque<(Request, bool)>,
    /// Remaining take credit; consumed by
    /// [`Mempool::take_peer_outbox`], restored by
    /// [`Mempool::grant_peer_credit`] once the driver confirms delivery.
    credit: u32,
    /// Entries shed by this queue's bound so far.
    sheds: u64,
}

impl PeerQueue {
    /// Appends an entry, shedding the oldest past `cap`. Returns `true`
    /// when an entry was shed.
    fn enqueue(&mut self, entry: (Request, bool), cap: usize) -> bool {
        self.queue.push_back(entry);
        if self.queue.len() > cap {
            self.queue.pop_front();
            self.sheds += 1;
            return true;
        }
        false
    }
}

/// The stable shard of `id` among `shards`: a Fibonacci-hash spread so
/// adjacent client ids don't pile into one shard. Every copy of an id
/// maps to the same shard, which is what keeps per-shard dedup
/// equivalent to global dedup.
fn shard_index(id: u64, shards: usize) -> usize {
    if shards == 1 {
        0
    } else {
        (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % shards
    }
}

impl Mempool {
    /// An empty mempool holding at most `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            capacity,
            shards: vec![Shard::default()],
            next_seq: 0,
            committed_ids: HashSet::new(),
            gossip: false,
            outbox: VecDeque::new(),
            outbox_cap: DEFAULT_OUTBOX_CAP,
            peer_queues: Vec::new(),
            peer_queue_cap: DEFAULT_PEER_QUEUE_CAP,
            peer_credit_max: DEFAULT_PEER_CREDIT,
            peer_sheds: 0,
            speculation: None,
            leases: LeaseTable::new(),
            accepted: 0,
            evicted: 0,
            duplicates: 0,
            forwarded_in: 0,
            rejected_committed: 0,
            forward_dropped: 0,
            released: 0,
            deferred: 0,
        }
    }

    /// Builder-style: splits the pending queue into `shards` independent
    /// shards (default 1). Existing entries are redistributed, keeping
    /// their arrival stamps, so the drain order is unchanged. Any shard
    /// count drains in the same order as one shard — see the crate-level
    /// *Sharding* section.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// Re-shards the pending queue in place — the shared-handle
    /// counterpart of [`with_shards`](Self::with_shards).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(shards > 0, "shard count must be positive");
        if shards == self.shards.len() {
            return;
        }
        let live: HashMap<u64, u64> = self
            .shards
            .iter()
            .flat_map(|s| s.pending.iter().map(|(id, size)| (*id, *size)))
            .collect();
        let mut all: Vec<(u64, Request)> = self
            .shards
            .iter_mut()
            .flat_map(|s| s.queue.drain(..))
            .collect();
        all.sort_unstable_by_key(|(seq, _)| *seq);
        self.shards = (0..shards).map(|_| Shard::default()).collect();
        for (seq, req) in all {
            // Tombstones of committed ids are dropped by the re-shard —
            // drains would have discarded them anyway.
            if !live.contains_key(&req.id) {
                continue;
            }
            let shard = &mut self.shards[shard_index(req.id, shards)];
            shard.pending.insert(req.id, req.size);
            shard.pending_bytes = shard.pending_bytes.saturating_add(req.size);
            shard.queue.push_back((seq, req));
        }
    }

    /// Number of pending-queue shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Builder-style: enables (or disables) the gossip outbox. When
    /// enabled, every locally [`push`](Self::push)ed request is also
    /// queued for the driver to forward to peers via
    /// [`take_outbox`](Self::take_outbox).
    pub fn with_gossip(mut self, on: bool) -> Self {
        self.set_gossip(on);
        self
    }

    /// Enables (or disables) the gossip outbox in place — the
    /// shared-handle counterpart of [`with_gossip`](Self::with_gossip).
    pub fn set_gossip(&mut self, on: bool) {
        self.gossip = on;
    }

    /// Builder-style: overrides the gossip outbox bound (default
    /// [`DEFAULT_OUTBOX_CAP`]).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_outbox_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "outbox cap must be positive");
        self.outbox_cap = cap;
        self
    }

    /// Switches gossip into **propagation-limited** mode: one bounded,
    /// credit-gated relay queue per fanout peer (`peers` are replica
    /// indices — typically `Topology::fanout_peers`). Locally pushed
    /// requests go to every peer queue instead of the shared outbox, and
    /// the driver relays first-time peer acceptances onward via
    /// [`queue_relay`](Self::queue_relay). Implies gossip. Any previously
    /// queued per-peer entries are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is empty, or if `cap`/`credit` is zero.
    pub fn set_peer_queues(&mut self, peers: &[usize], cap: usize, credit: u32) {
        assert!(!peers.is_empty(), "at least one fanout peer");
        assert!(cap > 0, "peer queue cap must be positive");
        assert!(credit > 0, "peer credit must be positive");
        self.gossip = true;
        self.peer_queue_cap = cap;
        self.peer_credit_max = credit;
        self.peer_queues = peers
            .iter()
            .map(|&peer| PeerQueue {
                peer,
                queue: VecDeque::new(),
                credit,
                sheds: 0,
            })
            .collect();
    }

    /// Builder-style [`set_peer_queues`](Self::set_peer_queues) with the
    /// default cap and credit.
    pub fn with_peer_queues(mut self, peers: &[usize]) -> Self {
        self.set_peer_queues(peers, DEFAULT_PEER_QUEUE_CAP, DEFAULT_PEER_CREDIT);
        self
    }

    /// True when per-peer relay queues are configured.
    pub fn peer_queues_enabled(&self) -> bool {
        !self.peer_queues.is_empty()
    }

    /// The configured fanout peers, in configuration order.
    pub fn peer_ids(&self) -> Vec<usize> {
        self.peer_queues.iter().map(|q| q.peer).collect()
    }

    /// Builder-style: enables the speculative lease machinery.
    /// `payload_chunk` must match the cluster's
    /// `ProtocolConfig::payload_chunk` so observed blocks hash to the same
    /// ids the engines use.
    pub fn with_speculation(mut self, payload_chunk: usize) -> Self {
        self.set_speculation(Some(payload_chunk));
        self
    }

    /// Enables (`Some(payload_chunk)`) or disables (`None`) the
    /// speculative lease machinery in place — the shared-handle
    /// counterpart of [`with_speculation`](Self::with_speculation).
    pub fn set_speculation(&mut self, payload_chunk: Option<usize>) {
        self.speculation = payload_chunk;
    }

    /// True when the speculative lease machinery is enabled.
    pub fn speculation_enabled(&self) -> bool {
        self.speculation.is_some()
    }

    /// The configured speculation payload-chunk size, when enabled.
    pub fn speculation_chunk(&self) -> Option<usize> {
        self.speculation
    }

    /// A new mempool behind the `Arc<Mutex<_>>` the driver and the
    /// engine's [`MempoolSource`] share.
    pub fn shared(capacity: usize) -> SharedMempool {
        Arc::new(Mutex::new(Mempool::new(capacity)))
    }

    /// Like [`shared`](Self::shared), with the gossip outbox enabled.
    pub fn shared_gossiping(capacity: usize) -> SharedMempool {
        Arc::new(Mutex::new(Mempool::new(capacity).with_gossip(true)))
    }

    /// True when the gossip outbox is enabled.
    pub fn gossip_enabled(&self) -> bool {
        self.gossip
    }

    /// Submits one locally received request. FIFO position is acquisition
    /// order; with gossip enabled, an accepted request is also queued for
    /// forwarding.
    pub fn push(&mut self, req: Request) -> PushOutcome {
        let outcome = self.insert(req);
        if self.gossip
            && matches!(
                outcome,
                PushOutcome::Accepted | PushOutcome::AcceptedEvicting(_)
            )
        {
            if self.peer_queues_enabled() {
                // Propagation-limited mode: first hop goes to each fanout
                // peer's own queue (bodies, shipped as `Forward`). A full
                // queue sheds only itself.
                let cap = self.peer_queue_cap;
                for pq in &mut self.peer_queues {
                    if pq.enqueue((req, false), cap) {
                        self.peer_sheds += 1;
                    }
                }
            } else {
                self.outbox.push_back(req);
                // Bounded outbox: a replica whose driver cannot flush
                // (e.g. one side of a partition) sheds the oldest queued
                // forwards rather than growing without limit.
                if self.outbox.len() > self.outbox_cap {
                    self.outbox.pop_front();
                    self.forward_dropped += 1;
                }
            }
        }
        outcome
    }

    /// Accepts a request forwarded by a peer's gossip. Identical to
    /// [`push`](Self::push) except the request is **not** re-queued for
    /// gossip (dissemination is one round — forwards never cascade).
    pub fn accept_forwarded(&mut self, req: Request) -> PushOutcome {
        let outcome = self.insert(req);
        if matches!(
            outcome,
            PushOutcome::Accepted | PushOutcome::AcceptedEvicting(_)
        ) {
            self.forwarded_in += 1;
        }
        outcome
    }

    fn insert(&mut self, req: Request) -> PushOutcome {
        if self.committed_ids.contains(&req.id) {
            self.rejected_committed += 1;
            return PushOutcome::Committed;
        }
        let s = shard_index(req.id, self.shards.len());
        let shard = &mut self.shards[s];
        if shard.pending.contains_key(&req.id) {
            self.duplicates += 1;
            return PushOutcome::Duplicate;
        }
        shard.pending.insert(req.id, req.size);
        shard.pending_bytes = shard.pending_bytes.saturating_add(req.size);
        let seq = self.next_seq;
        self.next_seq += 1;
        shard.queue.push_back((seq, req));
        self.accepted += 1;
        if self.len() > self.capacity {
            let oldest = self.pop_live().expect("over capacity implies a live entry");
            self.evicted += 1;
            return PushOutcome::AcceptedEvicting(oldest.id);
        }
        PushOutcome::Accepted
    }

    /// Pops the oldest *live* (non-tombstone) request across all shards —
    /// the one with the minimum arrival stamp — discarding any leading
    /// tombstones left by [`mark_committed`](Self::mark_committed).
    fn pop_live(&mut self) -> Option<Request> {
        let s = self.min_live_shard()?;
        let (_, req) = self.shards[s]
            .queue
            .pop_front()
            .expect("min_live_shard found a live head");
        let shard = &mut self.shards[s];
        let size = shard.pending.remove(&req.id).expect("head was live");
        shard.pending_bytes = shard.pending_bytes.saturating_sub(size);
        Some(req)
    }

    /// The shard whose live head has the minimum arrival stamp, after
    /// discarding each shard's leading tombstones. `None` when nothing is
    /// live anywhere.
    fn min_live_shard(&mut self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for s in 0..self.shards.len() {
            let shard = &mut self.shards[s];
            while let Some((_, front)) = shard.queue.front() {
                if shard.pending.contains_key(&front.id) {
                    break;
                }
                shard.queue.pop_front();
            }
            if let Some((seq, _)) = shard.queue.front() {
                if best.is_none_or(|(bseq, _)| *seq < bseq) {
                    best = Some((*seq, s));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Records that `id` was observed committed: any pending copy becomes
    /// a tombstone (skipped by future drains) and every later push,
    /// forward or retry of the id is rejected with
    /// [`PushOutcome::Committed`]. Returns `true` the first time the id is
    /// marked.
    pub fn mark_committed(&mut self, id: u64) -> bool {
        if !self.committed_ids.insert(id) {
            return false;
        }
        let s = shard_index(id, self.shards.len());
        let shard = &mut self.shards[s];
        if let Some(size) = shard.pending.remove(&id) {
            shard.pending_bytes = shard.pending_bytes.saturating_sub(size);
        }
        true
    }

    /// True if `id` was ever [marked committed](Self::mark_committed).
    pub fn is_committed(&self, id: u64) -> bool {
        self.committed_ids.contains(&id)
    }

    // ------------------------------------------------------------------
    // Speculative leases
    // ------------------------------------------------------------------

    /// Driver hook: observes one block crossing the wire (an own proposal
    /// on the way out, a peer's on the way in). If speculation is enabled
    /// and the block carries a [`WorkloadBatch`], its requests are
    /// recorded as a **lease** keyed by the block's id, feeding the
    /// exclusion set of [`drain_speculative`](Self::drain_speculative)
    /// and the release machinery of
    /// [`mark_committed_block`](Self::mark_committed_block). Idempotent
    /// per block; returns `true` when a new lease was recorded.
    ///
    /// This is the layer that decodes ancestor payloads — engines only
    /// ever hand block *ids* to the pool (via `ProposalContext`), so they
    /// stay pure.
    pub fn observe_proposal(&mut self, block: &Block) -> bool {
        let Some(payload_chunk) = self.speculation else {
            return false;
        };
        let Some(batch) = WorkloadBatch::decode(&block.payload) else {
            return false;
        };
        let hash = block.hash(payload_chunk);
        self.leases.observe_with_provenance(
            hash,
            block.round,
            batch.requests,
            LeaseProvenance::Optimistic {
                parent: block.parent,
            },
        )
    }

    /// Records a lease directly: `block` (of `round`) carries `requests`.
    /// The decoded form of [`observe_proposal`](Self::observe_proposal),
    /// exposed for drivers that already hold the batch and for tests.
    /// Recorded [unlinked](LeaseProvenance::Unlinked) — use
    /// [`observe_linked`](Self::observe_linked) when the parent is known.
    /// Idempotent per block id; returns `true` when newly recorded.
    pub fn observe_block(
        &mut self,
        block: BlockHash,
        round: Round,
        requests: Vec<Request>,
    ) -> bool {
        self.leases.observe(block, round, requests)
    }

    /// [`observe_block`](Self::observe_block) with
    /// [`Optimistic`](LeaseProvenance::Optimistic) parent provenance,
    /// enabling the eager certificate-conflict release of
    /// [`mark_committed_block`](Self::mark_committed_block).
    pub fn observe_linked(
        &mut self,
        block: BlockHash,
        round: Round,
        parent: BlockHash,
        requests: Vec<Request>,
    ) -> bool {
        self.leases.observe_with_provenance(
            block,
            round,
            requests,
            LeaseProvenance::Optimistic { parent },
        )
    }

    /// Commit-side lease retirement: marks every request of the committed
    /// `block` [committed](Self::mark_committed), drops its lease, and
    /// **releases** every remaining lease at or below `round` — those
    /// blocks lost the fork (or their round was skipped past), so their
    /// requests can never commit through them and re-enter the pending
    /// queue with their original id and submit timestamp.
    ///
    /// It also releases **eagerly on certificate-conflict**: a round-
    /// `round + 1` lease whose [`Optimistic`](LeaseProvenance::Optimistic)
    /// parent is a round-≤-`round` block other than `block` extends a
    /// fork this commit just killed, yet sits *above* the release
    /// horizon — without the eager sweep its requests would strand until
    /// the next commit (the fork-abandonment blind spot).
    ///
    /// With speculation off this reduces to per-id `mark_committed`
    /// calls, preserving the historical commit path bit-for-bit.
    pub fn mark_committed_block(&mut self, block: BlockHash, round: Round, requests: &[Request]) {
        for req in requests {
            self.mark_committed(req.id);
        }
        // The committed block's own lease is fulfilled, not released.
        self.leases.remove(&block);
        // Collect dead-fork children *before* the round sweep releases
        // the losing parents whose live leases pin their rounds, but
        // reinsert after it so requests re-pend in ascending round order.
        let conflicting = self.leases.take_conflicting(round, &block);
        self.release_below(round);
        for requests in conflicting {
            self.reinsert_all(requests);
        }
    }

    /// Fork abandonment / round skip: drops `block`'s lease and returns
    /// its not-yet-committed requests to the pending queue (original id
    /// and timestamp; duplicates of still-pending copies are skipped, and
    /// released requests are **not** re-gossiped — every peer that needed
    /// a copy got one when the request first entered). Returns how many
    /// requests re-entered the queue.
    pub fn release(&mut self, block: BlockHash) -> usize {
        match self.leases.remove(&block) {
            Some(requests) => self.reinsert_all(requests),
            None => 0,
        }
    }

    /// Releases every lease whose round is ≤ `round` (they can no longer
    /// commit once a round-`round` block has), in deterministic
    /// (round, block-id) order.
    fn release_below(&mut self, round: Round) {
        for requests in self.leases.take_at_or_below(round) {
            self.reinsert_all(requests);
        }
    }

    /// Re-pends released requests: committed ids and ids already pending
    /// are skipped; the rest append in their original batch order.
    pub(crate) fn reinsert_all(&mut self, requests: Vec<Request>) -> usize {
        let mut reinserted = 0;
        for req in requests {
            if matches!(
                self.insert(req),
                PushOutcome::Accepted | PushOutcome::AcceptedEvicting(_)
            ) {
                reinserted += 1;
                self.released += 1;
            }
        }
        reinserted
    }

    /// Number of live (unretired) leases.
    pub fn live_leases(&self) -> usize {
        self.leases.len()
    }

    /// The leased requests of `block`, if a live lease exists (tests,
    /// diagnostics).
    pub fn lease(&self, block: &BlockHash) -> Option<&[Request]> {
        self.leases.get(block)
    }

    /// Drains the gossip outbox: the locally pushed requests a driver
    /// should forward to peers, oldest first. Requests already observed
    /// committed in the meantime are dropped rather than forwarded.
    pub fn take_outbox(&mut self) -> Vec<Request> {
        self.outbox
            .drain(..)
            .filter(|r| !self.committed_ids.contains(&r.id))
            .collect()
    }

    /// Queues `req` for relay to every configured fanout peer except
    /// `exclude` (the peer it arrived from — relaying a forward straight
    /// back wastes an edge). Drivers call this when
    /// [`accept_forwarded`](Self::accept_forwarded) reports a *first*
    /// acceptance; duplicate arrivals are never relayed, which is what
    /// terminates the cascade. Entries ship as the compact `Announce`.
    /// No-op in broadcast mode.
    pub fn queue_relay(&mut self, req: Request, exclude: Option<usize>) {
        let cap = self.peer_queue_cap;
        let mut sheds = 0;
        for pq in &mut self.peer_queues {
            if Some(pq.peer) == exclude {
                continue;
            }
            if pq.enqueue((req, true), cap) {
                sheds += 1;
            }
        }
        self.peer_sheds += sheds;
    }

    /// Drains up to `credit` entries of `peer`'s relay queue, oldest
    /// first, consuming one credit per entry returned. Each entry is
    /// `(request, relay)` — `relay = false` first-hop bodies (`Forward`),
    /// `true` onward relays (`Announce`). Requests observed committed in
    /// the meantime are discarded without consuming credit. Returns empty
    /// for unknown peers, an empty queue, or exhausted credit — the
    /// backpressure rule: no credit, no take, and the queue keeps filling
    /// until it sheds its own oldest entries.
    pub fn take_peer_outbox(&mut self, peer: usize) -> Vec<(Request, bool)> {
        let Some(pq) = self.peer_queues.iter_mut().find(|q| q.peer == peer) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while pq.credit > 0 {
            let Some((req, relay)) = pq.queue.pop_front() else {
                break;
            };
            if self.committed_ids.contains(&req.id) {
                continue;
            }
            pq.credit -= 1;
            out.push((req, relay));
        }
        out
    }

    /// Restores `n` credits to `peer`'s queue (capped at the configured
    /// ceiling). Drivers call this once a previous take was actually
    /// handed to the transport — a peer whose writer is wedged never gets
    /// its credit back, so its queue fills and sheds alone.
    pub fn grant_peer_credit(&mut self, peer: usize, n: u32) {
        let max = self.peer_credit_max;
        if let Some(pq) = self.peer_queues.iter_mut().find(|q| q.peer == peer) {
            pq.credit = pq.credit.saturating_add(n).min(max);
        }
    }

    /// Queued entries currently waiting for `peer` (tests, diagnostics).
    pub fn peer_queue_len(&self, peer: usize) -> usize {
        self.peer_queues
            .iter()
            .find(|q| q.peer == peer)
            .map_or(0, |q| q.queue.len())
    }

    /// Removes and returns up to `max` requests, oldest first.
    pub fn drain(&mut self, max: usize) -> Vec<Request> {
        self.drain_bounded(max, u64::MAX)
    }

    /// Removes and returns requests, oldest first, stopping before
    /// `max_records` is exceeded and before the *nominal* byte total
    /// (the sum of [`Request::size`]) would exceed `max_bytes`. When
    /// `max_records > 0`, at least one request is taken when any is
    /// pending — a single oversized request still ships rather than
    /// wedging the pool ([`MempoolSource`] rejects a zero record cap at
    /// construction for the same reason). Tombstones of committed ids are
    /// discarded along the way, never returned.
    ///
    /// Equivalent to [`drain_speculative`](Self::drain_speculative) with
    /// a genesis-rooted context and the [`BatchPolicy::EAGER`] policy.
    pub fn drain_bounded(&mut self, max_records: usize, max_bytes: u64) -> Vec<Request> {
        self.drain_speculative(
            max_records,
            max_bytes,
            &ProposalContext::root(Round(0), Time::ZERO),
            &BatchPolicy::EAGER,
        )
    }

    /// The ancestor-aware drain: like
    /// [`drain_bounded`](Self::drain_bounded), but every pending request
    /// whose id is
    /// leased to a block of `ctx.ancestors` — the uncommitted chain the
    /// proposal extends, per [`observe_proposal`](Self::observe_proposal)
    /// — is *skipped, not consumed*: its pending copy keeps its FIFO
    /// position, available to a competing fork's leader and recoverable
    /// if the ancestor is abandoned. (Engines must report the ancestor
    /// chain down to the newest commit the *driver has routed*, i.e. as
    /// of the start of the current engine event — a block committed
    /// mid-event still holds a live lease here, and dropping it from the
    /// context would re-batch its requests.)
    ///
    /// `policy` may defer the whole batch: if the eligible backlog is
    /// below `policy.min_bytes` and its oldest request is younger than
    /// `policy.max_age` at `ctx.now`, nothing is drained and an empty vec
    /// is returned (counted in [`deferred`](Self::deferred)).
    pub fn drain_speculative(
        &mut self,
        max_records: usize,
        max_bytes: u64,
        ctx: &ProposalContext,
        policy: &BatchPolicy,
    ) -> Vec<Request> {
        let excluded = self.leases.exclusions(&ctx.ancestors);
        self.drain_core(max_records, max_bytes, &excluded, policy, ctx.now)
    }

    /// The single bounded-drain core every public drain routes through
    /// ([`drain`](Self::drain) → [`drain_bounded`](Self::drain_bounded) →
    /// [`drain_speculative`](Self::drain_speculative) → here), so the
    /// record-cap, byte-cap and policy logic cannot drift between them.
    /// The lock-split [`ConcurrentPool`] calls it directly with an
    /// exclusion set computed by its separately-guarded coordinator.
    ///
    /// The merge rule: repeatedly take the live, non-excluded shard head
    /// with the minimum arrival stamp — bit-identical to a single FIFO
    /// for any shard count. Tombstones are discarded as encountered;
    /// excluded (ancestor-leased) heads are set aside and restored to
    /// their shard fronts in original order, keeping their FIFO slots.
    pub(crate) fn drain_core(
        &mut self,
        max_records: usize,
        max_bytes: u64,
        excluded: &HashSet<u64>,
        policy: &BatchPolicy,
        now: Time,
    ) -> Vec<Request> {
        match self.batch_ready(excluded, policy, now) {
            BatchReady::Build => {}
            BatchReady::Idle => return Vec::new(),
            BatchReady::Defer => {
                self.deferred += 1;
                return Vec::new();
            }
        }
        let nshards = self.shards.len();
        let mut out = Vec::new();
        let mut skipped: Vec<Vec<(u64, Request)>> = (0..nshards).map(|_| Vec::new()).collect();
        let mut bytes = 0u64;
        while out.len() < max_records {
            // Advance every shard head past tombstones (discarded) and
            // excluded entries (set aside), then pick the minimum-stamp
            // live candidate.
            let mut best: Option<(u64, usize)> = None;
            for (s, (shard, skipped)) in self.shards.iter_mut().zip(skipped.iter_mut()).enumerate()
            {
                while let Some((seq, front)) = shard.queue.front() {
                    let seq = *seq;
                    if !shard.pending.contains_key(&front.id) {
                        shard.queue.pop_front(); // tombstone of a committed id
                        continue;
                    }
                    if excluded.contains(&front.id) {
                        let entry = shard.queue.pop_front().expect("front exists");
                        skipped.push(entry);
                        continue;
                    }
                    if best.is_none_or(|(bseq, _)| seq < bseq) {
                        best = Some((seq, s));
                    }
                    break;
                }
            }
            let Some((_, s)) = best else {
                break;
            };
            let (seq, req) = self.shards[s].queue.pop_front().expect("candidate head");
            let next = bytes.saturating_add(req.size);
            if !out.is_empty() && next > max_bytes {
                self.shards[s].queue.push_front((seq, req));
                break;
            }
            bytes = next;
            let shard = &mut self.shards[s];
            let size = shard.pending.remove(&req.id).expect("candidate was live");
            shard.pending_bytes = shard.pending_bytes.saturating_sub(size);
            out.push(req);
        }
        // Skipped (ancestor-leased) requests return to their shard fronts
        // in original relative order: FIFO fairness is preserved for them.
        for (s, shard_skipped) in skipped.into_iter().enumerate() {
            for entry in shard_skipped.into_iter().rev() {
                self.shards[s].queue.push_front(entry);
            }
        }
        out
    }

    /// The [`BatchPolicy`] gate: is the eligible backlog (live, not
    /// ancestor-leased) big or old enough to build a batch? The checks
    /// are order-independent — build iff any eligible request hit the age
    /// escape or the eligible bytes reach the target — so shards can be
    /// scanned without merging.
    fn batch_ready(&self, excluded: &HashSet<u64>, policy: &BatchPolicy, now: Time) -> BatchReady {
        if policy.min_bytes == 0 {
            return BatchReady::Build; // EAGER: never defer (the historical behavior)
        }
        let mut bytes = 0u64;
        let mut eligible = false;
        for shard in &self.shards {
            for (_, req) in &shard.queue {
                if !shard.pending.contains_key(&req.id) || excluded.contains(&req.id) {
                    continue;
                }
                eligible = true;
                if now.since(req.submitted_at) >= policy.max_age {
                    return BatchReady::Build; // an eligible request hit the age escape
                }
                bytes = bytes.saturating_add(req.size);
                if bytes >= policy.min_bytes {
                    return BatchReady::Build;
                }
            }
        }
        if eligible {
            BatchReady::Defer
        } else {
            // An empty (or fully ancestor-leased) backlog is *idle*, not
            // deferred: an eager drain would also ship nothing, so the
            // deferral diagnostic must not count it.
            BatchReady::Idle
        }
    }

    /// Pending (live) requests across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// Nominal bytes (sum of [`Request::size`]) pending across all
    /// shards — the per-shard byte accounting, aggregated.
    pub fn pending_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.pending_bytes).sum()
    }

    /// Ids of the pending (live) requests, in no particular order. Used
    /// by loss accounting to count *unique* uncommitted requests across
    /// pools — with gossip or fan-out, one request can have live copies
    /// in several pools, and summing [`len`](Self::len)s would hide real
    /// losses behind surviving copies of other requests.
    pub fn pending_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.shards.iter().flat_map(|s| s.pending.keys().copied())
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.pending.is_empty())
    }

    /// Requests accepted so far (including later-evicted ones; local
    /// pushes and peer forwards alike).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Requests evicted by capacity pressure so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Requests rejected as pending duplicates so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Peer-forwarded requests accepted so far.
    pub fn forwarded_in(&self) -> u64 {
        self.forwarded_in
    }

    /// Pushes/forwards rejected because the id had already committed.
    pub fn rejected_committed(&self) -> u64 {
        self.rejected_committed
    }

    /// Queued forwards dropped by the outbox bound so far.
    pub fn forward_dropped(&self) -> u64 {
        self.forward_dropped
    }

    /// Entries shed by per-peer relay-queue bounds so far (all peers).
    pub fn peer_sheds(&self) -> u64 {
        self.peer_sheds
    }

    /// Requests returned to the pending queue by lease releases so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Drains deferred by the [`BatchPolicy`] so far.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }
}

/// Verdict of the [`BatchPolicy`] gate for one drain attempt.
enum BatchReady {
    /// Build the batch now (target reached, or the EAGER policy).
    Build,
    /// Eligible work exists but neither target is reached yet: hold the
    /// block (counted in [`Mempool::deferred`]).
    Defer,
    /// Nothing eligible at all — an eager drain would also be empty.
    Idle,
}

/// A mempool shared between a driver (producer side) and an engine's
/// [`MempoolSource`] (consumer side).
pub type SharedMempool = Arc<Mutex<Mempool>>;

/// The requests carried by one block payload, recoverable from the
/// committed payload bytes.
///
/// # Wire encoding
///
/// ```text
/// "BanyanWB"             8-byte magic prefix (self-identification)
/// count: u32 LE          number of request records
/// count × 26-byte record, each little-endian:
///   id: u64  client: u16  size: u64  submitted_at: u64 (ns)
/// zero padding           up to the batch's nominal size
/// ```
///
/// The record layout is [`banyan_types::message::PendingRequest`]'s —
/// the same 26 bytes a `DisseminationMsg::Forward` ships per request.
/// The nominal size is the sum of request sizes, so the simulator's
/// bandwidth model charges what shipping the real request bytes would
/// cost. Payloads without the magic prefix (synthetic payloads, empty
/// blocks, foreign inline content) [`decode`](Self::decode) to `None`;
/// a truncated or corrupt batch is rejected, never a panic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadBatch {
    /// The batched requests, in mempool (FIFO) order.
    pub requests: Vec<Request>,
}

impl WorkloadBatch {
    /// Bytes of one encoded request record (the [`Request`] `Wire`
    /// encoding — the same 26 bytes a `DisseminationMsg::Forward`
    /// ships).
    const RECORD: usize = 8 + 2 + 8 + 8;

    /// Nominal batch size: the sum of request sizes.
    pub fn nominal_size(&self) -> u64 {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Encodes the batch as an inline payload (see the type docs).
    /// Records are written through [`Request`]'s `Wire` impl, so the
    /// batch layout can never drift from the dissemination layer's.
    pub fn into_payload(self) -> Payload {
        let header = BATCH_MAGIC.len() + 4 + self.requests.len() * Self::RECORD;
        let total = (self.nominal_size() as usize).max(header);
        let mut w = Writer::with_capacity(total);
        w.raw(BATCH_MAGIC);
        w.u32(self.requests.len() as u32);
        for req in &self.requests {
            req.encode(&mut w);
        }
        let mut bytes = w.into_bytes();
        bytes.resize(total, 0);
        Payload::Inline(bytes)
    }

    /// Decodes a batch from a committed payload. Returns `None` for
    /// payloads that are not workload batches (synthetic payloads, empty
    /// blocks, foreign inline content); a truncated or corrupt batch is
    /// rejected, never a panic.
    pub fn decode(payload: &Payload) -> Option<WorkloadBatch> {
        let Payload::Inline(bytes) = payload else {
            return None;
        };
        let rest = bytes.strip_prefix(BATCH_MAGIC.as_slice())?;
        let mut reader = Reader::new(rest);
        let count = reader.u32().ok()? as usize;
        // A corrupt count must fail the length check here, not reserve
        // gigabytes below: never trust it beyond what the bytes can hold.
        if count > reader.remaining() / Self::RECORD {
            return None;
        }
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            requests.push(Request::decode(&mut reader).ok()?);
        }
        Some(WorkloadBatch { requests })
    }
}

/// A [`ProposalSource`] that drains a [`SharedMempool`] into one
/// [`WorkloadBatch`] payload per proposal. An empty mempool yields an
/// empty payload (the chain keeps moving; blocks just carry no work).
///
/// Each batch is bounded two ways: at most `max_batch` request records
/// *and* at most [`max_bytes`](Self::with_max_bytes) nominal bytes (the
/// sum of request sizes — what the bandwidth model will charge for the
/// block). Without the byte bound, large requests would let the record
/// cap admit multi-gigabyte blocks.
///
/// Draining is destructive: a request batched into a proposal that never
/// finalizes (a backup proposal that loses to the leader's, or an
/// equivocator's second block) is gone *from this pool* — the engine
/// cannot know at drain time whether its block will win. With the
/// dissemination layer off that means the request is lost outright
/// (visible as `requests_lost` in the metrics); with gossip, fan-out or
/// client retry enabled another copy survives elsewhere and commits
/// exactly once (see the crate docs). With **speculation** enabled on the
/// pool, the driver-fed lease table additionally (a) excludes requests
/// already carried by a live ancestor of the proposal (no duplicate
/// inclusions) and (b) releases requests of abandoned blocks back into
/// the queue (no local loss either).
#[derive(Debug)]
pub struct MempoolSource {
    mempool: SharedMempool,
    max_batch: usize,
    max_bytes: u64,
    policy: BatchPolicy,
}

impl MempoolSource {
    /// A source draining `mempool`, at most `max_batch` requests and
    /// [`DEFAULT_MAX_BATCH_BYTES`] nominal bytes per block.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (every block would be empty forever
    /// while requests pile up in the pool).
    pub fn new(mempool: SharedMempool, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch record cap must be positive");
        MempoolSource {
            mempool,
            max_batch,
            max_bytes: DEFAULT_MAX_BATCH_BYTES,
            policy: BatchPolicy::EAGER,
        }
    }

    /// Overrides the nominal byte bound per batch.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Installs a latency-targeted [`BatchPolicy`] (default
    /// [`BatchPolicy::EAGER`], which never defers).
    pub fn with_batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl ProposalSource for MempoolSource {
    fn next_payload(&mut self, ctx: &ProposalContext) -> Payload {
        let requests = self
            .mempool
            .lock()
            .expect("mempool lock")
            .drain_speculative(self.max_batch, self.max_bytes, ctx, &self.policy);
        if requests.is_empty() {
            Payload::empty()
        } else {
            WorkloadBatch { requests }.into_payload()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, at: u64) -> Request {
        Request {
            id,
            client: (id % 7) as u16,
            size: 100,
            submitted_at: Time(at),
        }
    }

    #[test]
    fn mempool_serves_fifo_order() {
        let mut mp = Mempool::new(10);
        for id in 1..=5 {
            assert_eq!(mp.push(req(id, id)), PushOutcome::Accepted);
        }
        let drained = mp.drain(3);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        let rest = mp.drain(usize::MAX);
        assert_eq!(rest.iter().map(|r| r.id).collect::<Vec<_>>(), [4, 5]);
        assert!(mp.is_empty());
    }

    #[test]
    fn mempool_rejects_pending_duplicates_only() {
        let mut mp = Mempool::new(10);
        assert_eq!(mp.push(req(1, 0)), PushOutcome::Accepted);
        assert_eq!(mp.push(req(1, 1)), PushOutcome::Duplicate);
        assert_eq!(mp.len(), 1);
        assert_eq!(mp.duplicates(), 1);
        // Once drained, the id may be resubmitted (e.g. a client retry).
        mp.drain(1);
        assert_eq!(mp.push(req(1, 2)), PushOutcome::Accepted);
    }

    #[test]
    fn mempool_capacity_evicts_oldest() {
        let mut mp = Mempool::new(3);
        for id in 1..=3 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.push(req(4, 4)), PushOutcome::AcceptedEvicting(1));
        assert_eq!(mp.len(), 3);
        assert_eq!(mp.evicted(), 1);
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [2, 3, 4]);
        // The evicted id is free again.
        assert_eq!(mp.push(req(1, 9)), PushOutcome::Accepted);
    }

    #[test]
    fn committed_ids_are_rejected_forever() {
        let mut mp = Mempool::new(10);
        mp.push(req(1, 0));
        mp.drain(1);
        assert!(mp.mark_committed(1), "first mark reports newly committed");
        assert!(!mp.mark_committed(1), "second mark is a no-op");
        assert!(mp.is_committed(1));
        // A retry (or re-gossip) of the committed id is rejected.
        assert_eq!(mp.push(req(1, 5)), PushOutcome::Committed);
        assert_eq!(mp.accept_forwarded(req(1, 6)), PushOutcome::Committed);
        assert_eq!(mp.rejected_committed(), 2);
    }

    #[test]
    fn mark_committed_tombstones_pending_copies() {
        let mut mp = Mempool::new(10);
        for id in 1..=4 {
            mp.push(req(id, id));
        }
        // Another replica's block carrying 2 commits before we drain.
        mp.mark_committed(2);
        assert_eq!(mp.len(), 3, "tombstones do not count as pending");
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [1, 3, 4], "the committed copy is never drained");
    }

    #[test]
    fn eviction_skips_tombstones() {
        let mut mp = Mempool::new(2);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        mp.mark_committed(1); // tombstone at the queue front
        mp.push(req(3, 3));
        // Live set {2, 3} is within capacity: nothing to evict.
        assert_eq!(mp.len(), 2);
        assert_eq!(mp.push(req(4, 4)), PushOutcome::AcceptedEvicting(2));
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [3, 4]);
    }

    #[test]
    fn gossip_outbox_tracks_local_pushes_only() {
        let mut mp = Mempool::new(10).with_gossip(true);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        // A forwarded request never re-enters the outbox (one round).
        assert_eq!(mp.accept_forwarded(req(3, 3)), PushOutcome::Accepted);
        // A rejected push is not queued for forwarding either.
        assert_eq!(mp.push(req(1, 4)), PushOutcome::Duplicate);
        let out: Vec<u64> = mp.take_outbox().iter().map(|r| r.id).collect();
        assert_eq!(out, [1, 2]);
        assert!(mp.take_outbox().is_empty(), "outbox drains");
        assert_eq!(mp.forwarded_in(), 1);
        assert_eq!(mp.len(), 3, "all three requests are pending");
    }

    #[test]
    fn outbox_drops_requests_committed_before_the_flush() {
        let mut mp = Mempool::new(10).with_gossip(true);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        mp.mark_committed(1);
        let out: Vec<u64> = mp.take_outbox().iter().map(|r| r.id).collect();
        assert_eq!(out, [2], "no bandwidth spent forwarding committed work");
    }

    #[test]
    fn outbox_disabled_by_default() {
        let mut mp = Mempool::new(10);
        assert!(!mp.gossip_enabled());
        mp.push(req(1, 1));
        assert!(mp.take_outbox().is_empty());
    }

    #[test]
    fn batch_roundtrips_and_pads_to_nominal_size() {
        let batch = WorkloadBatch {
            requests: vec![req(7, 100), req(8, 250)],
        };
        assert_eq!(batch.nominal_size(), 200);
        let payload = batch.clone().into_payload();
        // Padded to the nominal byte size: bandwidth is charged as if the
        // real request bytes were on the wire.
        assert_eq!(payload.len(), 200);
        assert_eq!(WorkloadBatch::decode(&payload), Some(batch));
    }

    #[test]
    fn tiny_batches_keep_their_header() {
        // 2 one-byte requests: the header exceeds the nominal size, so the
        // payload grows to fit the records.
        let batch = WorkloadBatch {
            requests: vec![
                Request {
                    id: 1,
                    client: 0,
                    size: 1,
                    submitted_at: Time(5),
                },
                Request {
                    id: 2,
                    client: 1,
                    size: 1,
                    submitted_at: Time(6),
                },
            ],
        };
        let payload = batch.clone().into_payload();
        assert!(payload.len() > 2);
        assert_eq!(WorkloadBatch::decode(&payload), Some(batch));
    }

    #[test]
    fn non_batch_payloads_decode_to_none() {
        assert_eq!(WorkloadBatch::decode(&Payload::empty()), None);
        assert_eq!(WorkloadBatch::decode(&Payload::synthetic(1_000, 3)), None);
        assert_eq!(
            WorkloadBatch::decode(&Payload::Inline(b"not a batch".to_vec())),
            None
        );
        // Truncated batch (magic but no count) is rejected, not a panic.
        assert_eq!(
            WorkloadBatch::decode(&Payload::Inline(BATCH_MAGIC.to_vec())),
            None
        );
    }

    #[test]
    fn mempool_source_drains_in_batches() {
        let shared = Mempool::shared(100);
        {
            let mut mp = shared.lock().unwrap();
            for id in 1..=5 {
                mp.push(req(id, id));
            }
        }
        let mut src = MempoolSource::new(shared.clone(), 3);
        let first = src.next_payload(&ProposalContext::root(Round(1), Time(10)));
        let batch = WorkloadBatch::decode(&first).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let second = src.next_payload(&ProposalContext::root(Round(2), Time(20)));
        let batch = WorkloadBatch::decode(&second).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [4, 5]
        );
        // Empty mempool → empty payload, not a stall.
        assert!(src
            .next_payload(&ProposalContext::root(Round(3), Time(30)))
            .is_empty());
    }

    #[test]
    fn drain_bounded_enforces_nominal_byte_cap() {
        // Regression: with large requests, the record cap alone admitted
        // arbitrarily many bytes per batch.
        let mut mp = Mempool::new(100);
        for id in 1..=10 {
            mp.push(Request {
                id,
                client: 0,
                size: 1_000_000,
                submitted_at: Time(id),
            });
        }
        let batch = mp.drain_bounded(4_096, DEFAULT_MAX_BATCH_BYTES);
        assert_eq!(
            batch.len(),
            2,
            "2 MB cap must stop a 1 MB-request drain at two records"
        );
        // An oversized single request still ships (no wedge).
        let mut mp = Mempool::new(10);
        mp.push(Request {
            id: 1,
            client: 0,
            size: 10_000_000,
            submitted_at: Time(1),
        });
        assert_eq!(mp.drain_bounded(4_096, DEFAULT_MAX_BATCH_BYTES).len(), 1);
        // The record cap still applies to small requests.
        let mut mp = Mempool::new(10);
        for id in 1..=5 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.drain_bounded(3, u64::MAX).len(), 3);
    }

    fn hash(tag: u8) -> BlockHash {
        BlockHash([tag; 32])
    }

    /// A proposal context for round `round` extending `ancestors` (newest
    /// first; parent = first entry or genesis).
    fn ctx(round: u64, ancestors: &[BlockHash]) -> ProposalContext {
        ProposalContext {
            round: Round(round),
            now: Time(round),
            parent: ancestors.first().copied().unwrap_or(BlockHash::ZERO),
            ancestors: ancestors.to_vec(),
        }
    }

    /// A genesis-rooted context at virtual time `now` (policy tests).
    fn ctx_at(now: u64) -> ProposalContext {
        ProposalContext::root(Round(0), Time(now))
    }

    #[test]
    fn speculative_drain_skips_ancestor_leases_without_consuming_them() {
        let mut mp = Mempool::new(100).with_speculation(64 * 1024);
        for id in 1..=6 {
            mp.push(req(id, id));
        }
        // Two competing round-5 blocks: ancestor A carries 1..=3, fork
        // parent B carries 6.
        mp.observe_block(hash(0xA), Round(5), vec![req(1, 1), req(2, 2), req(3, 3)]);
        mp.observe_block(hash(0xB), Round(5), vec![req(6, 6)]);
        assert_eq!(mp.live_leases(), 2);

        // Proposing on top of A: A's requests are skipped, B's are fair
        // game (only one fork commits, so that is no duplicate).
        let out = mp.drain_speculative(10, u64::MAX, &ctx(6, &[hash(0xA)]), &BatchPolicy::EAGER);
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), [4, 5, 6]);
        // The leased copies kept their FIFO slots: a leader extending the
        // B fork instead can still drain them, oldest first.
        let fork = mp.drain_speculative(10, u64::MAX, &ctx(6, &[hash(0xB)]), &BatchPolicy::EAGER);
        assert_eq!(fork.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn speculative_drain_excludes_mid_event_committed_ancestors() {
        // The commit-lag race: an engine can commit block E and propose
        // in the SAME event — the drain runs before the commit is routed
        // to the pool. The engine contract therefore keeps E in the
        // context's ancestor chain (ancestors reach down to the newest
        // *routed* commit), and E's still-live lease must exclude its
        // requests from the drain.
        let mut mp = Mempool::new(100).with_speculation(64 * 1024);
        for id in 1..=3 {
            mp.push(req(id, id));
        }
        mp.observe_block(hash(0xE), Round(2), vec![req(1, 1), req(2, 2)]);
        mp.observe_block(hash(0xC), Round(4), vec![req(3, 3)]);
        let chain = [hash(0xC), hash(0xE)];
        let out = mp.drain_speculative(10, u64::MAX, &ctx(5, &chain), &BatchPolicy::EAGER);
        assert!(
            out.is_empty(),
            "every pending copy is ancestor-leased: {out:?}"
        );
        // Once E's commit routes, its ids tombstone and its lease
        // retires; request 3 stays excluded through C's live lease.
        mp.mark_committed_block(hash(0xE), Round(2), &[req(1, 1), req(2, 2)]);
        let out = mp.drain_speculative(10, u64::MAX, &ctx(5, &[hash(0xC)]), &BatchPolicy::EAGER);
        assert!(out.is_empty(), "1,2 committed; 3 still leased to C");
        mp.mark_committed_block(hash(0xC), Round(4), &[req(3, 3)]);
        assert!(mp.is_empty());
    }

    #[test]
    fn mark_committed_block_retires_the_winner_and_releases_the_losers() {
        let mut mp = Mempool::new(100).with_speculation(64 * 1024);
        for id in 1..=4 {
            mp.push(req(id, id));
        }
        // Two competing round-7 forks: A carries {1,2} (drained locally),
        // B carries {3} (observed from a peer; its copy 3 stays pending).
        let drained = mp.drain_speculative(2, u64::MAX, &ctx(7, &[]), &BatchPolicy::EAGER);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
        mp.observe_block(hash(0xA), Round(7), drained.clone());
        mp.observe_block(hash(0xB), Round(7), vec![req(3, 3)]);

        // B commits: its ids are retired, and A's lease — same round,
        // losing fork — releases {1,2} back into the queue with their
        // original identity.
        mp.mark_committed_block(hash(0xB), Round(7), &[req(3, 3)]);
        assert!(mp.is_committed(3));
        assert_eq!(mp.live_leases(), 0);
        assert_eq!(mp.released(), 2);
        let back = mp.drain_speculative(10, u64::MAX, &ctx(8, &[]), &BatchPolicy::EAGER);
        assert_eq!(
            back.iter()
                .map(|r| (r.id, r.submitted_at))
                .collect::<Vec<_>>(),
            [(4, Time(4)), (1, Time(1)), (2, Time(2))],
            "released requests re-enter with original id+timestamp"
        );
    }

    #[test]
    fn certificate_conflict_releases_the_stranded_optimistic_lease() {
        // The fork-abandonment blind spot: an optimistic round-8 block D
        // extends the round-7 loser A. When B commits at round 7, the
        // round sweep only reaches ≤ 7, so D's lease used to strand until
        // the *next* commit — its requests invisible to both forks.
        let mut mp = Mempool::new(100).with_speculation(64 * 1024);
        // All four blocks were observed from peers; none of their
        // requests is pending locally, so a release visibly re-enters.
        mp.observe_block(hash(0xA), Round(7), vec![req(11, 11)]);
        mp.observe_block(hash(0xB), Round(7), vec![req(12, 12)]);
        mp.observe_linked(hash(0xD), Round(8), hash(0xA), vec![req(13, 13)]);
        // A round-8 child of the *winner* must survive the sweep.
        mp.observe_linked(hash(0xE), Round(8), hash(0xB), vec![req(14, 14)]);
        assert_eq!(mp.live_leases(), 4);

        mp.mark_committed_block(hash(0xB), Round(7), &[req(12, 12)]);
        assert_eq!(mp.live_leases(), 1, "only E (winner's child) survives");
        assert!(mp.lease(&hash(0xE)).is_some());
        assert_eq!(mp.released(), 2, "A's {{11}} and D's {{13}} re-enter now");
        let back = mp.drain_speculative(10, u64::MAX, &ctx(9, &[]), &BatchPolicy::EAGER);
        assert_eq!(
            back.iter()
                .map(|r| (r.id, r.submitted_at))
                .collect::<Vec<_>>(),
            [(11, Time(11)), (13, Time(13))],
            "eagerly released with original id+timestamp, round-major order"
        );
    }

    #[test]
    fn release_skips_committed_and_still_pending_copies() {
        let mut mp = Mempool::new(100).with_speculation(64 * 1024);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        // Lease carries 1 (still pending here), 2 (pending) and 9 (never
        // seen locally). 2 commits through another block first.
        mp.observe_block(hash(0xC), Round(3), vec![req(1, 1), req(2, 2), req(9, 9)]);
        mp.mark_committed(2);
        assert_eq!(mp.release(hash(0xC)), 1, "only 9 actually re-enters");
        assert_eq!(mp.len(), 2, "pending 1 + released 9");
        assert_eq!(mp.release(hash(0xC)), 0, "release is idempotent");
    }

    #[test]
    fn observe_proposal_decodes_batches_and_respects_the_gate() {
        use banyan_crypto::Signature;
        use banyan_types::ids::{Rank, ReplicaId};
        let chunk = 64 * 1024;
        let block = Block {
            round: Round(2),
            proposer: ReplicaId(0),
            rank: Rank(0),
            parent: BlockHash::ZERO,
            proposed_at: Time(1),
            payload: WorkloadBatch {
                requests: vec![req(7, 7)],
            }
            .into_payload(),
            signature: Signature::zero(),
        };
        // Speculation off: observation is a no-op.
        let mut off = Mempool::new(10);
        assert!(!off.observe_proposal(&block));
        assert_eq!(off.live_leases(), 0);
        // Speculation on: the batch is decoded and leased under the
        // block's real hash; re-observation is idempotent.
        let mut on = Mempool::new(10).with_speculation(chunk);
        assert!(on.observe_proposal(&block));
        assert!(!on.observe_proposal(&block));
        let leased = on.lease(&block.hash(chunk)).expect("lease recorded");
        assert_eq!(leased.iter().map(|r| r.id).collect::<Vec<_>>(), [7]);
        // Non-batch payloads never lease.
        let mut synth = block.clone();
        synth.payload = Payload::synthetic(100, 1);
        assert!(!on.observe_proposal(&synth));
    }

    #[test]
    fn batch_policy_defers_until_size_or_age() {
        let policy = BatchPolicy::target(1_000, Duration::from_millis(5));
        let mut mp = Mempool::new(100);
        // 300 nominal bytes pending, all younger than 5 ms: defer.
        for id in 1..=3 {
            mp.push(req(id, 1_000_000 * id)); // 100 B each, submitted ~id ms
        }
        assert!(mp
            .drain_speculative(10, u64::MAX, &ctx_at(4_000_000), &policy)
            .is_empty());
        assert_eq!(mp.deferred(), 1);
        assert_eq!(mp.len(), 3, "a deferral consumes nothing");
        // Size trigger: backlog reaches the byte target.
        for id in 4..=10 {
            mp.push(req(id, 4_000_000));
        }
        let out = mp.drain_speculative(100, u64::MAX, &ctx_at(4_100_000), &policy);
        assert_eq!(out.len(), 10, "size target reached: drain everything");
        // Age trigger: a lone old request ships despite the byte target.
        mp.push(req(50, 1_000_000));
        assert!(mp
            .drain_speculative(10, u64::MAX, &ctx_at(2_000_000), &policy)
            .is_empty());
        let out = mp.drain_speculative(10, u64::MAX, &ctx_at(7_000_000), &policy);
        assert_eq!(out.len(), 1, "oldest eligible request hit max_age");
        // Leased (excluded) requests count toward neither trigger.
        let mut mp = Mempool::new(100).with_speculation(1024);
        for id in 1..=20 {
            mp.push(req(id, 1));
        }
        mp.observe_block(hash(0xD), Round(1), (1..=20).map(|id| req(id, 1)).collect());
        assert!(
            mp.drain_speculative(
                100,
                u64::MAX,
                &ProposalContext {
                    round: Round(2),
                    now: Time(2),
                    parent: hash(0xD),
                    ancestors: vec![hash(0xD)],
                },
                &policy
            )
            .is_empty(),
            "everything is leased to the ancestor: nothing eligible"
        );
    }

    #[test]
    fn outbox_cap_drops_oldest_forwards() {
        let mut mp = Mempool::new(100).with_gossip(true).with_outbox_cap(3);
        for id in 1..=5 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.forward_dropped(), 2);
        let out: Vec<u64> = mp.take_outbox().iter().map(|r| r.id).collect();
        assert_eq!(out, [3, 4, 5], "oldest queued forwards were shed");
        assert_eq!(mp.len(), 5, "dropping a forward never drops the request");
    }

    #[test]
    fn peer_queues_divert_pushes_from_shared_outbox() {
        let mut mp = Mempool::new(100).with_peer_queues(&[1, 2]);
        assert!(mp.gossip_enabled(), "peer queues imply gossip");
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        assert!(mp.take_outbox().is_empty(), "shared outbox is bypassed");
        assert_eq!(mp.peer_queue_len(1), 2);
        assert_eq!(mp.peer_queue_len(2), 2);
        let took: Vec<(u64, bool)> = mp
            .take_peer_outbox(1)
            .into_iter()
            .map(|(r, relay)| (r.id, relay))
            .collect();
        assert_eq!(took, [(1, false), (2, false)], "first hop ships bodies");
        assert_eq!(mp.peer_queue_len(1), 0);
        assert_eq!(mp.peer_queue_len(2), 2, "peer 2's queue is untouched");
    }

    #[test]
    fn queue_relay_skips_the_sender_and_marks_announce() {
        let mut mp = Mempool::new(100).with_peer_queues(&[1, 2]);
        assert_eq!(mp.accept_forwarded(req(9, 1)), PushOutcome::Accepted);
        mp.queue_relay(req(9, 1), Some(1));
        assert_eq!(mp.peer_queue_len(1), 0, "never relayed back to sender");
        let took = mp.take_peer_outbox(2);
        assert_eq!(took.len(), 1);
        assert!(took[0].1, "relays ship as Announce");
    }

    #[test]
    fn peer_credit_gates_takes_until_granted() {
        let mut mp = Mempool::new(100);
        mp.set_peer_queues(&[7], 100, 2);
        for id in 1..=5 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.take_peer_outbox(7).len(), 2, "credit-bounded take");
        assert_eq!(mp.take_peer_outbox(7).len(), 0, "no credit, no take");
        assert_eq!(mp.peer_queue_len(7), 3);
        mp.grant_peer_credit(7, 1);
        assert_eq!(mp.take_peer_outbox(7).len(), 1);
        mp.grant_peer_credit(7, 100);
        assert_eq!(mp.take_peer_outbox(7).len(), 2, "grant caps at the ceiling");
    }

    #[test]
    fn slow_peer_sheds_its_own_queue_only() {
        let mut mp = Mempool::new(100);
        mp.set_peer_queues(&[1, 2], 3, 64);
        for id in 1..=5 {
            mp.push(req(id, id));
        }
        // Both queues got 5 entries against a cap of 3: each shed 2.
        assert_eq!(mp.peer_sheds(), 4);
        // Peer 1 drains; peer 2 stays wedged at its cap.
        let ids: Vec<u64> = mp
            .take_peer_outbox(1)
            .into_iter()
            .map(|(r, _)| r.id)
            .collect();
        assert_eq!(ids, [3, 4, 5], "oldest entries were shed first");
        mp.push(req(6, 6));
        assert_eq!(mp.peer_queue_len(1), 1, "drained queue accepts freely");
        assert_eq!(mp.peer_queue_len(2), 3, "wedged queue sheds alone");
        assert_eq!(mp.peer_sheds(), 5);
        assert_eq!(mp.forward_dropped(), 0, "shared-outbox counter untouched");
    }

    #[test]
    fn committed_requests_are_not_taken_and_cost_no_credit() {
        let mut mp = Mempool::new(100);
        mp.set_peer_queues(&[1], 100, 2);
        mp.push(req(1, 1));
        mp.push(req(2, 2));
        mp.push(req(3, 3));
        mp.mark_committed(1);
        mp.mark_committed(2);
        let ids: Vec<u64> = mp
            .take_peer_outbox(1)
            .into_iter()
            .map(|(r, _)| r.id)
            .collect();
        assert_eq!(ids, [3], "committed entries are discarded, not shipped");
        assert_eq!(mp.take_peer_outbox(1).len(), 0, "queue is empty");
        mp.push(req(4, 4));
        assert_eq!(
            mp.take_peer_outbox(1).len(),
            1,
            "discarding committed entries consumed no credit"
        );
    }

    #[test]
    fn mempool_source_honors_byte_cap() {
        let shared = Mempool::shared(100);
        {
            let mut mp = shared.lock().unwrap();
            for id in 1..=6 {
                mp.push(Request {
                    id,
                    client: 0,
                    size: 400,
                    submitted_at: Time(id),
                });
            }
        }
        let mut src = MempoolSource::new(shared, 4_096).with_max_bytes(1_000);
        let batch =
            WorkloadBatch::decode(&src.next_payload(&ProposalContext::root(Round(1), Time(1))))
                .unwrap();
        assert_eq!(batch.requests.len(), 2, "400+400 fits, +400 would not");
        assert!(batch.nominal_size() <= 1_000);
    }
}
