//! Action routing, timer management and the single-engine driver core.
//!
//! The contract between an [`Engine`] and any deployment is narrow: feed
//! it events, and route the [`Actions`] it returns — commits to a
//! [`CommitSink`], timers to [`ActionDispatch::arm`], transmissions to
//! [`ActionDispatch::transmit`]. Before this crate existed, the simulator,
//! the TCP runner and the bench harness each re-implemented that routing
//! (and its subtle ordering rules) independently; this module is now the
//! only copy.

use banyan_types::app::App;
use banyan_types::engine::{Actions, CommitEntry, Engine, Outbound, TimerKind, TimerRequest};
use banyan_types::ids::{ReplicaId, Round};
use banyan_types::message::Message;
use banyan_types::time::Time;

use crate::queue::EventQueue;

/// Where finalized blocks land. Implemented by the simulator's metrics
/// pipeline, the TCP run report, and plain vectors for tests.
pub trait CommitSink {
    /// Called once per commit, in the order the engine emitted them.
    fn on_commit(&mut self, replica: ReplicaId, entry: CommitEntry);
}

impl CommitSink for Vec<CommitEntry> {
    fn on_commit(&mut self, _replica: ReplicaId, entry: CommitEntry) {
        self.push(entry);
    }
}

impl<S: CommitSink + ?Sized> CommitSink for &mut S {
    fn on_commit(&mut self, replica: ReplicaId, entry: CommitEntry) {
        (**self).on_commit(replica, entry);
    }
}

/// [`CommitSink`] combinator that delivers every commit to an [`App`]
/// before forwarding it to the inner sink — how a deployment (TCP runner,
/// tests) bolts application delivery onto an existing metrics sink.
pub struct AppSink<S: CommitSink, A: App> {
    /// The sink commits are forwarded to after delivery.
    pub inner: S,
    /// The application receiving each finalized block.
    pub app: A,
}

impl<S: CommitSink, A: App> CommitSink for AppSink<S, A> {
    fn on_commit(&mut self, replica: ReplicaId, entry: CommitEntry) {
        self.app.deliver(&entry);
        self.inner.on_commit(replica, entry);
    }
}

/// The driver side of action routing: where armed timers and outbound
/// messages go. One implementor per deployment (the simulator's network
/// model, the TCP runner's channels), so both consequences of an engine
/// event can share mutable scheduling state (e.g. one global event queue).
pub trait ActionDispatch {
    /// Schedules a timer for `replica`.
    fn arm(&mut self, replica: ReplicaId, request: TimerRequest);

    /// Hands an outbound transmission from `from` to the network.
    fn transmit(&mut self, from: ReplicaId, out: Outbound);
}

/// Closure-based [`ActionDispatch`] for tests and simple drivers.
pub struct FnDispatch<A, T>
where
    A: FnMut(ReplicaId, TimerRequest),
    T: FnMut(ReplicaId, Outbound),
{
    /// Receives armed timers.
    pub arm: A,
    /// Receives outbound transmissions.
    pub transmit: T,
}

impl<A, T> ActionDispatch for FnDispatch<A, T>
where
    A: FnMut(ReplicaId, TimerRequest),
    T: FnMut(ReplicaId, Outbound),
{
    fn arm(&mut self, replica: ReplicaId, request: TimerRequest) {
        (self.arm)(replica, request)
    }
    fn transmit(&mut self, from: ReplicaId, out: Outbound) {
        (self.transmit)(from, out)
    }
}

/// True if `kind` belongs to a round the engine has already left.
///
/// Every engine in the workspace treats such timers as no-ops (`propose`
/// and `heartbeat` bail when `round != current`, HotStuff ignores old
/// views, Streamlet old epochs), so drivers drop them without delivery.
/// Timers for the current or a future round are always delivered.
pub fn is_stale(kind: &TimerKind, current_round: Round) -> bool {
    kind.scope_round() < current_round.0
}

/// Routes one [`Actions`] bundle: commits → `sink`, then timers →
/// `dispatch.arm`, then transmissions → `dispatch.transmit`, preserving
/// the engine's emission order within each category. Every driver routes
/// through here, so traces line up across deployments.
pub fn route_actions<S: CommitSink + ?Sized, D: ActionDispatch + ?Sized>(
    replica: ReplicaId,
    actions: Actions,
    sink: &mut S,
    dispatch: &mut D,
) {
    for entry in actions.commits {
        sink.on_commit(replica, entry);
    }
    for timer in actions.timers {
        dispatch.arm(replica, timer);
    }
    for out in actions.outbound {
        dispatch.transmit(replica, out);
    }
}

/// One replica's pending timers: an [`EventQueue`] of [`TimerKind`]s with
/// arm-time clamping and stale-timer filtering on pop.
#[derive(Default)]
pub struct TimerSet {
    queue: EventQueue<TimerKind>,
    stale_dropped: u64,
}

impl TimerSet {
    /// An empty timer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `request`, clamping its deadline to `now` so timers always
    /// fire at or after the moment they were requested.
    pub fn arm(&mut self, request: TimerRequest, now: Time) {
        self.queue.push(request.at.max(now), request.kind);
    }

    /// Earliest pending deadline, if any. (May belong to a stale timer;
    /// use only as a wake-up bound, never as a liveness signal.)
    pub fn next_deadline(&self) -> Option<Time> {
        self.queue.next_at()
    }

    /// Pops the next timer due at `now`, silently discarding timers whose
    /// round the engine (at `current_round`) has already abandoned. Equal
    /// deadlines pop in arming order.
    pub fn pop_due(&mut self, now: Time, current_round: Round) -> Option<(Time, TimerKind)> {
        while let Some((at, kind)) = self.queue.pop_due(now) {
            if is_stale(&kind, current_round) {
                self.stale_dropped += 1;
                continue;
            }
            return Some((at, kind));
        }
        None
    }

    /// Number of pending (possibly stale) timers.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Timers dropped as stale so far (diagnostic).
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }
}

/// Adapts a [`TimerSet`] plus a transmit callback into [`ActionDispatch`]
/// for single-engine drivers (the timer heap and the network never share
/// state there, unlike in the simulator).
struct TimerSetDispatch<'a, F: FnMut(Outbound)> {
    timers: &'a mut TimerSet,
    now: Time,
    transmit: F,
}

impl<F: FnMut(Outbound)> ActionDispatch for TimerSetDispatch<'_, F> {
    fn arm(&mut self, _replica: ReplicaId, request: TimerRequest) {
        self.timers.arm(request, self.now);
    }
    fn transmit(&mut self, _from: ReplicaId, out: Outbound) {
        (self.transmit)(out)
    }
}

/// The single-engine event-loop core: an [`Engine`], its [`TimerSet`] and
/// a [`CommitSink`], with the three dispatch paths every deployment needs.
/// The caller supplies time (virtual or wall-clock) and a `transmit`
/// callback; this type owns everything else, so deployments cannot drift
/// apart in how they feed an engine.
pub struct EngineDriver<S: CommitSink> {
    engine: Box<dyn Engine>,
    timers: TimerSet,
    sink: S,
}

impl<S: CommitSink> EngineDriver<S> {
    /// Wraps `engine`, committing into `sink`.
    pub fn new(engine: Box<dyn Engine>, sink: S) -> Self {
        EngineDriver {
            engine,
            timers: TimerSet::new(),
            sink,
        }
    }

    /// The wrapped engine's replica id.
    pub fn id(&self) -> ReplicaId {
        self.engine.id()
    }

    /// Read access to the engine (for assertions and probes).
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// Read access to the commit sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the driver, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Timers dropped as stale so far (diagnostic).
    pub fn stale_timers_dropped(&self) -> u64 {
        self.timers.stale_dropped()
    }

    /// Deadline of the earliest pending timer.
    pub fn next_deadline(&self) -> Option<Time> {
        self.timers.next_deadline()
    }

    /// Delivers the one-time init event.
    pub fn init(&mut self, now: Time, transmit: impl FnMut(Outbound)) {
        let EngineDriver {
            engine,
            timers,
            sink,
        } = self;
        let actions = engine.on_init(now);
        let mut dispatch = TimerSetDispatch {
            timers,
            now,
            transmit,
        };
        route_actions(engine.id(), actions, sink, &mut dispatch);
    }

    /// Delivers one network message.
    pub fn handle_message(
        &mut self,
        from: ReplicaId,
        msg: Message,
        now: Time,
        transmit: impl FnMut(Outbound),
    ) {
        let EngineDriver {
            engine,
            timers,
            sink,
        } = self;
        let actions = engine.on_message(from, msg, now);
        let mut dispatch = TimerSetDispatch {
            timers,
            now,
            transmit,
        };
        route_actions(engine.id(), actions, sink, &mut dispatch);
    }

    /// Fires every timer due at `now`, including timers armed by earlier
    /// firings in the same call. Stale timers are dropped, not delivered.
    pub fn fire_due(&mut self, now: Time, mut transmit: impl FnMut(Outbound)) {
        let EngineDriver {
            engine,
            timers,
            sink,
        } = self;
        while let Some((_, kind)) = timers.pop_due(now, engine.current_round()) {
            let actions = engine.on_timer(kind, now);
            let mut dispatch = TimerSetDispatch {
                timers: &mut *timers,
                now,
                transmit: &mut transmit,
            };
            route_actions(engine.id(), actions, sink, &mut dispatch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_types::engine::TimerKind;
    use banyan_types::ids::Round;

    fn sink_only_dispatch(
    ) -> FnDispatch<impl FnMut(ReplicaId, TimerRequest), impl FnMut(ReplicaId, Outbound)> {
        FnDispatch {
            arm: |_, _| {},
            transmit: |_, _| {},
        }
    }

    #[test]
    fn timer_set_clamps_past_deadlines_to_now() {
        let mut t = TimerSet::new();
        t.arm(
            TimerRequest {
                at: Time(5),
                kind: TimerKind::Propose { round: 1 },
            },
            Time(100),
        );
        assert_eq!(t.next_deadline(), Some(Time(100)));
    }

    #[test]
    fn equal_deadline_timers_pop_in_arming_order() {
        let mut t = TimerSet::new();
        let kinds = [
            TimerKind::Propose { round: 3 },
            TimerKind::NotarizeRank { round: 3, rank: 0 },
            TimerKind::RoundTimeout { round: 3 },
        ];
        for kind in kinds {
            t.arm(TimerRequest { at: Time(50), kind }, Time(0));
        }
        for expected in kinds {
            let (at, kind) = t.pop_due(Time(50), Round(3)).expect("due");
            assert_eq!((at, kind), (Time(50), expected));
        }
        assert!(t.pop_due(Time(50), Round(3)).is_none());
    }

    #[test]
    fn stale_timers_for_abandoned_rounds_are_dropped() {
        let mut t = TimerSet::new();
        t.arm(
            TimerRequest {
                at: Time(10),
                kind: TimerKind::Propose { round: 1 },
            },
            Time(0),
        );
        t.arm(
            TimerRequest {
                at: Time(11),
                kind: TimerKind::RoundTimeout { round: 2 },
            },
            Time(0),
        );
        t.arm(
            TimerRequest {
                at: Time(12),
                kind: TimerKind::Propose { round: 5 },
            },
            Time(0),
        );
        // The engine has advanced to round 5: rounds 1 and 2 are abandoned.
        let (_, kind) = t.pop_due(Time(20), Round(5)).expect("live timer");
        assert_eq!(kind, TimerKind::Propose { round: 5 });
        assert_eq!(t.stale_dropped(), 2);
        assert!(t.pop_due(Time(20), Round(5)).is_none());
    }

    #[test]
    fn current_and_future_round_timers_are_delivered() {
        let mut t = TimerSet::new();
        t.arm(
            TimerRequest {
                at: Time(1),
                kind: TimerKind::EpochTick { epoch: 4 },
            },
            Time(0),
        );
        // Streamlet arms the tick for epoch current+1; it must survive.
        let popped = t.pop_due(Time(2), Round(3));
        assert_eq!(
            popped.map(|(_, k)| k),
            Some(TimerKind::EpochTick { epoch: 4 })
        );
        assert_eq!(t.stale_dropped(), 0);
    }

    /// The optimistic-pipelining fallback contract: the round-r+1 leader
    /// arms its fallback `Propose` timer while the engine is still in
    /// round r. Drivers must hold that future-round timer (never drop it
    /// as stale) and deliver it once the engine reaches round r+1 — if
    /// the driver swallowed it, an uncertified optimistic parent would
    /// leave the round leaderless instead of falling back.
    #[test]
    fn future_round_propose_timer_survives_until_its_round() {
        let fallback = TimerKind::Propose { round: 8 };
        // Still in round 7 when armed: not stale.
        assert!(!is_stale(&fallback, Round(7)));
        // Still in its own round when due: not stale.
        assert!(!is_stale(&fallback, Round(8)));
        // Only once the engine moves past round 8 is it abandoned.
        assert!(is_stale(&fallback, Round(9)));

        let mut t = TimerSet::new();
        t.arm(
            TimerRequest {
                at: Time(30),
                kind: fallback,
            },
            Time(0),
        );
        // Due while the engine is still in round 7 (the optimistic parent
        // has not certified yet): the fallback must fire, not vanish.
        let popped = t.pop_due(Time(30), Round(7)).expect("fallback delivered");
        assert_eq!(popped, (Time(30), fallback));
        assert_eq!(t.stale_dropped(), 0, "future-round timer counted stale");
    }

    #[test]
    fn vec_commit_sink_collects_in_order() {
        use banyan_types::ids::BlockHash;
        let mut sink: Vec<CommitEntry> = Vec::new();
        let mut actions = Actions::none();
        for round in 1..=3u64 {
            actions.commit(CommitEntry {
                round: Round(round),
                block: BlockHash([round as u8; 32]),
                proposer: ReplicaId(0),
                payload: banyan_types::Payload::empty(),
                proposed_at: Time::ZERO,
                committed_at: Time(round),
                fast: false,
                explicit: true,
            });
        }
        route_actions(ReplicaId(0), actions, &mut sink, &mut sink_only_dispatch());
        let rounds: Vec<u64> = sink.iter().map(|c| c.round.0).collect();
        assert_eq!(rounds, vec![1, 2, 3]);
    }

    #[test]
    fn app_sink_delivers_then_forwards() {
        use banyan_types::ids::BlockHash;

        #[derive(Default)]
        struct Tally(u64);
        impl App for Tally {
            fn deliver(&mut self, entry: &CommitEntry) {
                self.0 += entry.payload_len();
            }
        }

        let mut sink = AppSink {
            inner: Vec::<CommitEntry>::new(),
            app: Tally::default(),
        };
        let mut actions = Actions::none();
        actions.commit(CommitEntry {
            round: Round(1),
            block: BlockHash([1; 32]),
            proposer: ReplicaId(0),
            payload: banyan_types::Payload::Inline(vec![7; 42]),
            proposed_at: Time::ZERO,
            committed_at: Time(9),
            fast: false,
            explicit: true,
        });
        route_actions(ReplicaId(0), actions, &mut sink, &mut sink_only_dispatch());
        assert_eq!(sink.app.0, 42, "app saw the payload bytes");
        assert_eq!(sink.inner.len(), 1, "inner sink still gets the commit");
    }

    #[test]
    fn routing_preserves_category_order() {
        let mut actions = Actions::none();
        use banyan_types::message::{Message, SyncMsg};
        actions.arm(Time(2), TimerKind::Propose { round: 2 });
        actions.arm(Time(1), TimerKind::Propose { round: 1 });
        actions.send(
            ReplicaId(1),
            Message::Sync(SyncMsg::Request {
                hash: banyan_types::ids::BlockHash::ZERO,
            }),
        );
        let mut armed = Vec::new();
        let mut sent = 0u32;
        let mut sink: Vec<CommitEntry> = Vec::new();
        let mut dispatch = FnDispatch {
            arm: |_, t: TimerRequest| armed.push(t.at),
            transmit: |_, _| sent += 1,
        };
        route_actions(ReplicaId(0), actions, &mut sink, &mut dispatch);
        // Timers arrive in emission order, not deadline order.
        assert_eq!(armed, vec![Time(2), Time(1)]);
        assert_eq!(sent, 1);
    }
}
